//! Regenerates the DRS paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [fig6|fig7|fig8|fig9|fig10|table2|ablation|surge|perf|all] [--quick] [--seed N]
//! repro drive [--backend sim|runtime|both] [--quick]
//! repro fleet [--smoke] [--seed N] [--faults smoke|lossy|laggy|partition|churn|crash-storm]
//! repro fleet --scale 1k|10k|100k|1m [--smoke] [--seed N]
//! repro fleet --scale 1k|10k|100k --place [--smoke] [--seed N]
//! repro place [--smoke] [--seed N]
//! repro soak [--smoke] [--seed N]
//! repro perfdiff <baseline.json> <current.json> [--tolerance 0.15]
//! ```
//!
//! `--quick` shortens simulated durations (useful in CI); default runs use
//! the paper's horizons (10-minute measurements, 27-minute timelines).

use drs_bench::sweep::{run_sweep, App};
use drs_bench::{
    ablation, drive, faults, fig10, fig8, fig9, fleet, fleet_scale, perf, perfdiff, place,
    place_scale, soak, surge, table2,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::env;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

/// System-allocator wrapper counting every allocation and reallocation, so
/// the fleet-scale bench can report steady-state allocations per window
/// (the `drs-bench` library is `forbid(unsafe_code)`, so the allocator
/// lives here and is handed to the library as a probe).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[derive(Debug, Clone)]
struct Options {
    quick: bool,
    smoke: bool,
    seed: u64,
    backend: String,
    tolerance: f64,
    faults: Option<String>,
    scale: Option<String>,
    place: bool,
    paths: Vec<String>,
}

fn main() -> ExitCode {
    fleet_scale::set_alloc_probe(alloc_count);
    place_scale::set_alloc_probe(alloc_count);
    let mut target = String::from("all");
    let mut target_set = false;
    let mut options = Options {
        quick: false,
        smoke: false,
        seed: 2015, // the paper's year, for determinism
        backend: String::from("both"),
        tolerance: 0.15,
        faults: None,
        scale: None,
        place: false,
        paths: Vec::new(),
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--smoke" => options.smoke = true,
            "--seed" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                };
                options.seed = v;
            }
            "--backend" => {
                let Some(v) = args.next() else {
                    eprintln!("--backend requires sim|runtime|both");
                    return ExitCode::FAILURE;
                };
                options.backend = v;
            }
            "--faults" => {
                let Some(v) = args.next() else {
                    eprintln!(
                        "--faults requires a scenario: smoke|lossy|laggy|partition|churn|crash-storm"
                    );
                    return ExitCode::FAILURE;
                };
                options.faults = Some(v);
            }
            "--place" => options.place = true,
            "--scale" => {
                let Some(v) = args.next() else {
                    eprintln!("--scale requires a fleet size: 1k|10k|100k|1m");
                    return ExitCode::FAILURE;
                };
                options.scale = Some(v);
            }
            "--tolerance" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--tolerance requires a fraction, e.g. 0.15");
                    return ExitCode::FAILURE;
                };
                options.tolerance = v;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [fig6|fig7|fig8|fig9|fig10|table2|ablation|surge|perf|all] [--quick] [--seed N]"
                );
                println!("       repro drive [--backend sim|runtime|both] [--quick]");
                println!(
                    "       repro fleet [--smoke] [--seed N] [--faults smoke|lossy|laggy|partition|churn|crash-storm]"
                );
                println!("       repro fleet --scale 1k|10k|100k|1m [--smoke] [--seed N]");
                println!("       repro fleet --scale 1k|10k|100k --place [--smoke] [--seed N]");
                println!("       repro place [--smoke] [--seed N]");
                println!("       repro soak [--smoke] [--seed N]");
                println!("       repro perfdiff <baseline.json> <current.json> [--tolerance 0.15]");
                println!(
                    "  perf also writes machine-readable BENCH_PERF.json to the current directory"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => {
                if target_set {
                    options.paths.push(other.to_owned());
                } else {
                    target = other.to_owned();
                    target_set = true;
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    match target.as_str() {
        "fig6" => fig6_and_7(&options, true, false),
        "fig7" => fig6_and_7(&options, false, true),
        "fig8" => run_fig8(&options),
        "fig9" => run_fig9(&options),
        "fig10" => run_fig10(&options),
        "table2" => run_table2(&options),
        "ablation" => run_ablation(&options),
        "surge" => run_surge(&options),
        "perf" => run_perf(&options),
        "drive" => return run_drive(&options),
        "fleet" => return run_fleet(&options),
        "place" => run_place(&options),
        "soak" => run_soak(&options),
        "perfdiff" => return run_perfdiff(&options),
        "all" => {
            fig6_and_7(&options, true, true);
            run_fig8(&options);
            run_fig9(&options);
            run_fig10(&options);
            run_table2(&options);
            run_ablation(&options);
            run_surge(&options);
            run_place(&options);
            run_soak(&options);
            run_perf(&options);
        }
        other => {
            eprintln!("unknown target {other}; try --help");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_drive(options: &Options) -> ExitCode {
    let backend = match options.backend.as_str() {
        "sim" => drive::DriveBackend::Sim,
        "runtime" => drive::DriveBackend::Runtime,
        "both" => drive::DriveBackend::Both,
        other => {
            eprintln!("unknown backend {other}; use sim|runtime|both");
            return ExitCode::FAILURE;
        }
    };
    let mut config = drive::DriveConfig {
        seed: options.seed,
        ..Default::default()
    };
    if options.quick {
        config.windows = 6;
        config.window_secs = 0.5;
    }
    let runs = drive::run_drive(backend, config);
    print!("{}", drive::render_drive(&config, &runs));
    ExitCode::SUCCESS
}

fn run_fleet(options: &Options) -> ExitCode {
    if options.place && options.scale.is_none() {
        eprintln!("--place requires --scale 1k|10k|100k");
        return ExitCode::FAILURE;
    }
    if let Some(scale) = options.scale.as_deref() {
        if options.faults.is_some() {
            eprintln!("--scale and --faults are mutually exclusive");
            return ExitCode::FAILURE;
        }
        let smoke = options.smoke || options.quick;
        if options.place {
            let Some(config) = place_scale::PlaceScaleConfig::named(scale, smoke, options.seed)
            else {
                eprintln!("unknown placement scale {scale}; use 1k|10k|100k");
                return ExitCode::FAILURE;
            };
            let run = place_scale::run_place_scale(&config);
            print!("{}", place_scale::render_place_scale(&config, &run));
            return ExitCode::SUCCESS;
        }
        let Some(config) = fleet_scale::FleetScaleConfig::named(scale, smoke, options.seed) else {
            eprintln!("unknown scale {scale}; use 1k|10k|100k|1m");
            return ExitCode::FAILURE;
        };
        let run = fleet_scale::run_fleet_scale(&config);
        print!("{}", fleet_scale::render_fleet_scale(&config, &run));
        return ExitCode::SUCCESS;
    }
    let scenario = match options.faults.as_deref() {
        None => None,
        Some(name) => match faults::FaultScenario::parse(name) {
            Some(s) => Some(s),
            None => {
                eprintln!(
                    "unknown fault scenario {name}; use smoke|lossy|laggy|partition|churn|crash-storm"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    // The smoke scenario *is* the CI variant: it always runs the short
    // smoke shape regardless of flags.
    let smoke = options.smoke || options.quick || scenario == Some(faults::FaultScenario::Smoke);
    let config = if smoke {
        fleet::FleetBenchConfig::smoke(options.seed)
    } else {
        fleet::FleetBenchConfig {
            seed: options.seed,
            ..Default::default()
        }
    };
    match scenario {
        Some(scenario) => {
            let run = faults::run_faulty_fleet(&config, scenario);
            print!("{}", faults::render_faulty_fleet(&config, &run));
        }
        None => {
            let run = fleet::run_fleet(&config);
            print!("{}", fleet::render_fleet(&config, &run));
        }
    }
    ExitCode::SUCCESS
}

fn run_perfdiff(options: &Options) -> ExitCode {
    let [baseline_path, current_path] = options.paths.as_slice() else {
        eprintln!("usage: repro perfdiff <baseline.json> <current.json> [--tolerance 0.15]");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };
    let deltas = match perfdiff::diff(&baseline, &current) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (rendered, offenders) = perfdiff::report(&deltas, options.tolerance);
    print!("{rendered}");
    if offenders.is_empty() {
        println!(
            "perfdiff: all {} metrics within {:.0}% of baseline",
            deltas.len(),
            options.tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perfdiff: {} metric(s) regressed more than {:.0}%",
            offenders.len(),
            options.tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}

fn fig6_and_7(options: &Options, fig6: bool, fig7: bool) {
    let secs = if options.quick { 120 } else { 600 };
    for app in [App::Vld, App::Fpd] {
        let sweep = run_sweep(app, secs, options.seed);
        if fig6 {
            print!("{}", sweep.render_fig6());
        }
        if fig7 {
            print!("{}", sweep.render_fig7());
        }
    }
}

fn run_fig8(options: &Options) {
    let secs = if options.quick { 120 } else { 600 };
    let rows = fig8::run_fig8(secs, options.seed);
    print!("{}", fig8::render_fig8(&rows));
}

fn run_fig9(options: &Options) {
    let window = if options.quick { 20 } else { 60 };
    for app in [App::Vld, App::Fpd] {
        let runs = fig9::run_fig9(app, options.seed, window);
        print!("{}", fig9::render_fig9(app, &runs));
    }
}

fn run_fig10(options: &Options) {
    let window = if options.quick { 20 } else { 60 };
    for experiment in [fig10::Experiment::ExpA, fig10::Experiment::ExpB] {
        let run = fig10::run_fig10(experiment, options.seed, window);
        print!("{}", run.render());
    }
}

fn run_table2(options: &Options) {
    let iterations = if options.quick { 5_000 } else { 100_000 };
    let columns = table2::run_table2(iterations);
    print!("{}", table2::render_table2(&columns));
}

fn run_ablation(options: &Options) {
    let rows = ablation::run_greedy_vs_exhaustive();
    print!("{}", ablation::render_greedy_vs_exhaustive(&rows));
    let secs = if options.quick { 120 } else { 600 };
    let rows = ablation::run_distribution_robustness(secs, options.seed);
    print!("{}", ablation::render_distribution_robustness(&rows));
    let (windows, window_secs) = if options.quick { (8, 30) } else { (15, 60) };
    let rows = ablation::run_gate_value(windows, window_secs, options.seed);
    print!("{}", ablation::render_gate_value(&rows));
}

fn run_place(options: &Options) {
    let config = if options.smoke || options.quick {
        place::PlaceBenchConfig::smoke(options.seed)
    } else {
        place::PlaceBenchConfig {
            seed: options.seed,
            ..Default::default()
        }
    };
    let run = place::run_place(&config);
    print!("{}", place::render_place(&config, &run));
}

fn run_soak(options: &Options) {
    let config = if options.smoke || options.quick {
        soak::SoakConfig::smoke(options.seed)
    } else {
        soak::SoakConfig {
            seed: options.seed,
            ..Default::default()
        }
    };
    let run = soak::run_soak(&config);
    print!("{}", soak::render_soak(&config, &run));
}

fn run_perf(options: &Options) {
    let iterations = if options.quick { 2_000 } else { 20_000 };
    let report = perf::run_perf(iterations, options.seed);
    print!("{}", perf::render_perf(&report));
    let json = perf::perf_json(&report);
    match std::fs::write("BENCH_PERF.json", &json) {
        Ok(()) => println!("wrote BENCH_PERF.json"),
        Err(e) => eprintln!("could not write BENCH_PERF.json: {e}"),
    }
}

fn run_surge(options: &Options) {
    let mut config = surge::SurgeConfig::default();
    if options.quick {
        config.windows = 26;
        config.surge_at = 7;
        config.relax_at = 15;
        config.window_secs = 30;
    }
    let points = surge::run_surge(config, options.seed);
    print!("{}", surge::render_surge(&config, &points));
}
