//! Fig. 8: degree of model underestimation vs computation intensity.
//!
//! The synthetic 3-bolt chain is swept over total CPU times from 0.567 ms
//! to 309.1 ms per tuple, with a fixed per-hop network delay the model
//! cannot see. The ratio of measured to estimated sojourn time starts far
//! above 1 (network-dominated) and decays toward 1 (compute-dominated) —
//! the paper's justification for trusting the model on
//! computation-intensive applications.

use crate::report::{fmt, render_table};
use drs_apps::SyntheticChain;
use drs_sim::SimDuration;

/// One workload's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Total CPU time of the three bolts per tuple (milliseconds).
    pub total_cpu_ms: f64,
    /// Measured mean sojourn (milliseconds).
    pub measured_ms: f64,
    /// Model estimate (milliseconds).
    pub estimated_ms: f64,
    /// `measured / estimated` — the degree of underestimation.
    pub ratio: f64,
}

/// Runs the Fig. 8 sweep; `measure_secs` of simulated time per workload.
pub fn run_fig8(measure_secs: u64, seed: u64) -> Vec<Fig8Row> {
    SyntheticChain::paper_workloads()
        .into_iter()
        .enumerate()
        .map(|(i, total_cpu)| {
            let chain = SyntheticChain::new(total_cpu);
            let allocation = chain.ample_allocation();
            let mut sim = chain.build_simulation(allocation, seed + i as u64);
            sim.run_for(SimDuration::from_secs(measure_secs / 5));
            let _ = sim.take_window();
            sim.run_for(SimDuration::from_secs(measure_secs));
            let w = sim.take_window();
            let measured_ms = w.sojourn.mean().expect("tuples completed") * 1e3;
            let estimated_ms = chain
                .reference_model()
                .expected_sojourn(&allocation)
                .expect("ample allocation is stable")
                * 1e3;
            Fig8Row {
                total_cpu_ms: total_cpu * 1e3,
                measured_ms,
                estimated_ms,
                ratio: measured_ms / estimated_ms,
            }
        })
        .collect()
}

/// Renders the Fig. 8 table.
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.total_cpu_ms, 3),
                fmt(r.measured_ms, 2),
                fmt(r.estimated_ms, 2),
                fmt(r.ratio, 2),
            ]
        })
        .collect();
    render_table(
        "Fig. 8 — measured/estimated ratio vs total bolt CPU time (synthetic chain)",
        &["total CPU (ms)", "measured (ms)", "estimated (ms)", "ratio"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_decays_monotonically_in_the_large() {
        let rows = run_fig8(120, 23);
        assert_eq!(rows.len(), 6);
        // End-to-end decay: first workload's ratio dwarfs the last's.
        assert!(
            rows[0].ratio > 10.0 * rows[5].ratio,
            "first {} vs last {}",
            rows[0].ratio,
            rows[5].ratio
        );
        // The compute-heavy end approaches 1.
        assert!(rows[5].ratio < 1.5, "heavy ratio {}", rows[5].ratio);
        // Broad decay: each workload's ratio is below its
        // two-steps-lighter predecessor (adjacent pairs can wobble within
        // simulation noise).
        for pair in rows.windows(3) {
            assert!(
                pair[2].ratio < pair[0].ratio,
                "{} -> {} does not decay",
                pair[0].ratio,
                pair[2].ratio
            );
        }
    }

    #[test]
    fn render_mentions_every_workload() {
        let rows = run_fig8(60, 29);
        let s = render_fig8(&rows);
        assert!(s.contains("0.567"));
        assert!(s.contains("309.1"));
    }
}
