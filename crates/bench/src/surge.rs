//! Workload-surge elasticity experiment (beyond the paper's fixed-rate
//! runs).
//!
//! The paper's §I motivation is streams whose "volume, arrival rates, value
//! distribution can fluctuate in an unpredictable manner". This experiment
//! exercises exactly that: the VLD frame rate doubles mid-run and later
//! falls back. Under the resource-minimisation goal, DRS must ride the
//! surge — grow the allocation (adding machines) when the target is
//! threatened and release resources once the surge passes.

use crate::report::render_table;
use drs_apps::VldProfile;
use drs_core::config::DrsConfig;
use drs_core::controller::DrsController;
use drs_core::driver::DrsDriver;
use drs_core::measurer::Smoothing;
use drs_core::negotiator::{MachinePool, MachinePoolConfig};
use drs_queueing::distribution::Distribution;

/// One window of the surge timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SurgePoint {
    /// Window index (0-based).
    pub window: u64,
    /// Measured mean sojourn (ms, `NaN` when idle).
    pub sojourn_ms: f64,
    /// Bolt executors in force.
    pub executors: u32,
    /// Machines active.
    pub machines: u32,
    /// External frame rate in force (frames/second).
    pub frame_rate: f64,
    /// Whether DRS re-balanced this window.
    pub rebalanced: bool,
}

/// Timeline phases: windows [0, surge_at) at the base rate,
/// [surge_at, relax_at) at the surged rate, [relax_at, windows) back at
/// base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeConfig {
    /// Total windows.
    pub windows: u64,
    /// Window at which the rate surges.
    pub surge_at: u64,
    /// Window at which the rate returns to base.
    pub relax_at: u64,
    /// Surge multiplier on the frame rate.
    pub surge_factor: f64,
    /// Window length (seconds).
    pub window_secs: u64,
    /// The latency target (seconds).
    pub t_max: f64,
}

impl Default for SurgeConfig {
    fn default() -> Self {
        SurgeConfig {
            windows: 34,
            surge_at: 10,
            relax_at: 20,
            surge_factor: 1.35,
            window_secs: 60,
            // Base-rate answer: 19 executors (margin on both sides); surge
            // answer: ~24 executors on a 5th machine.
            t_max: 2.0,
        }
    }
}

/// Runs the surge experiment.
pub fn run_surge(config: SurgeConfig, seed: u64) -> Vec<SurgePoint> {
    let profile = VldProfile::paper();
    let topo = profile.topology();
    let spout = topo
        .operator_by_name("video-spout")
        .expect("vld topology")
        .id();
    let initial = [9u32, 10, 1];
    let sim = profile.build_simulation(initial, seed);
    let pool = MachinePool::new(MachinePoolConfig::default(), 4).expect("valid pool");
    let mut drs_config = DrsConfig::min_resources(config.t_max);
    drs_config.cooldown_windows = 2;
    drs_config.smoothing = Smoothing::Alpha { alpha: 0.7 };
    // Rate estimates from one or two windows are too noisy to scale on;
    // wait until the smoothing has real history.
    drs_config.warmup_windows = 4;
    let drs = DrsController::new(drs_config, initial.to_vec(), pool).expect("valid controller");
    let mut driver = DrsDriver::new(sim, drs, config.window_secs as f64).expect("wiring matches");

    let base_rate = profile.frame_rate;
    let surged = base_rate * config.surge_factor;
    let mut points = Vec::with_capacity(config.windows as usize);
    for w in 0..config.windows {
        if w == config.surge_at {
            driver
                .backend_mut()
                .set_spout_interarrival(
                    spout,
                    Distribution::uniform(0.0, 2.0 / surged).expect("valid uniform"),
                )
                .expect("spout exists");
        }
        if w == config.relax_at {
            driver
                .backend_mut()
                .set_spout_interarrival(
                    spout,
                    Distribution::uniform(0.0, 2.0 / base_rate).expect("valid uniform"),
                )
                .expect("spout exists");
        }
        driver.run_windows(1);
        let p = driver.timeline().last().expect("ran a window");
        points.push(SurgePoint {
            window: w,
            sojourn_ms: p.mean_sojourn_ms.unwrap_or(f64::NAN),
            executors: p.allocation.iter().sum(),
            machines: driver.controller().pool().active_machines(),
            frame_rate: if (config.surge_at..config.relax_at).contains(&w) {
                surged
            } else {
                base_rate
            },
            rebalanced: p.rebalanced,
        });
    }
    points
}

/// Renders the surge timeline.
pub fn render_surge(config: &SurgeConfig, points: &[SurgePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.window + 1),
                format!("{:.1}", p.frame_rate),
                if p.sojourn_ms.is_nan() {
                    "-".to_owned()
                } else {
                    format!("{:.0}", p.sojourn_ms)
                },
                p.executors.to_string(),
                p.machines.to_string(),
                if p.rebalanced {
                    "R".to_owned()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    render_table(
        &format!(
            "Surge — VLD under MinResources(Tmax = {:.0} ms): rate x{} during minutes {}-{}",
            config.t_max * 1e3,
            config.surge_factor,
            config.surge_at + 1,
            config.relax_at
        ),
        &[
            "minute",
            "frames/s",
            "sojourn (ms)",
            "executors",
            "machines",
            "",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drs_rides_the_surge_up_and_down() {
        // Ample post-relax room: the α = 0.7 smoothing takes several
        // windows to reflect the restored base rate before DRS scales in.
        let config = SurgeConfig {
            windows: 30,
            surge_at: 7,
            relax_at: 15,
            surge_factor: 1.35,
            window_secs: 45,
            t_max: 2.0,
        };
        let points = run_surge(config, 61);
        let executors_at = |w: u64| points[w as usize].executors;
        let max_during_surge = (config.surge_at..config.relax_at)
            .map(executors_at)
            .max()
            .unwrap();
        let before = executors_at(config.surge_at - 1);
        assert!(
            max_during_surge > before,
            "surge must grow the allocation: {max_during_surge} <= {before}"
        );
        // After relaxation DRS releases resources again.
        let end = points.last().unwrap().executors;
        assert!(
            end < max_during_surge,
            "relaxation must release executors: end {end} vs peak {max_during_surge}"
        );
        // At least two scaling actions happened (up and down).
        let actions = points.iter().filter(|p| p.rebalanced).count();
        assert!(actions >= 2, "expected >= 2 rebalances, got {actions}");
    }

    #[test]
    fn render_is_complete() {
        let config = SurgeConfig {
            windows: 8,
            surge_at: 5,
            relax_at: 6,
            surge_factor: 1.3,
            window_secs: 20,
            t_max: 2.0,
        };
        let points = run_surge(config, 3);
        let s = render_surge(&config, &points);
        assert!(s.contains("Surge"));
        assert!(s.contains("frames/s"));
    }
}
