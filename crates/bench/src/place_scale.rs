//! `repro fleet --scale --place`: the warm-start placement benchmark.
//!
//! Synthetic shard fleets at 1k/10k/100k shards share one machine pool;
//! every window a configurable fraction of shards drifts (edge rates
//! re-scale, and some shards gain or lose an executor). Two arms place
//! the identical drift sequence:
//!
//! * **incremental** — one warm [`FleetPlacementState`] carried across
//!   windows via the epoch-band protocol: only shards whose request
//!   actually changed are re-solved against the pool's residual
//!   capacity, with the drift-bounded batch re-solve as the anchor;
//! * **from-scratch** — a fresh [`placement::plan`] per window, the
//!   O(fleet) reference the warm path must beat.
//!
//! Reported per arm: mean place-µs per drifting window, plus the heap
//! allocations (and solver calls — must both be **0**) one zero-drift
//! steady-state window performs. Assignments are cross-checked at the
//! end of the run: a forced batch re-solve of the warm state must match
//! `plan` bit-for-bit over the same cached requests. The 100k/5%-churn
//! point feeds the `placement_scale` section of `BENCH_PERF.json`,
//! gated by `repro perfdiff`.

use drs_core::placement::{
    self, EdgeTraffic, FleetPlacementState, MachinePool, OperatorLoad, PlacementRequest,
};
use drs_topology::ResourceProfile;
use std::sync::OnceLock;
use std::time::Instant;

/// Counts heap allocations performed by the process so far. Installed by
/// the `repro` binary (whose `#[global_allocator]` counts); the library
/// itself is `forbid(unsafe_code)` and cannot host the allocator.
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers the allocation probe. Later registrations are ignored.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Configuration of one placement-scale run.
#[derive(Debug, Clone)]
pub struct PlaceScaleConfig {
    /// Shards in the synthetic fleet (each: 2 operators, 1 chain edge).
    pub shards: usize,
    /// Machines in the shared pool.
    pub machines: usize,
    /// Fraction of shards whose request drifts each window.
    pub churn_fraction: f64,
    /// Relative dead-band on edge rates (mirrors
    /// `FleetDriverConfig::placement_rate_band`).
    pub rate_band: f64,
    /// Drifting windows driven through the incremental arm.
    pub windows: u64,
    /// Drifting windows driven through the from-scratch arm (smaller at
    /// the largest scales — the reference arm is the slow one).
    pub scratch_windows: u64,
    /// RNG seed; both arms replay the identical drift sequence from it.
    pub seed: u64,
}

impl PlaceScaleConfig {
    /// The named scale points of `repro fleet --scale ... --place`.
    ///
    /// Returns `None` for an unknown scale name.
    pub fn named(scale: &str, smoke: bool, seed: u64) -> Option<Self> {
        let (shards, machines) = match scale {
            "1k" => (1_000, 16),
            "10k" => (10_000, 32),
            "100k" => (100_000, 64),
            _ => return None,
        };
        let (windows, scratch_windows) = if smoke { (3, 2) } else { (10, 3) };
        Some(PlaceScaleConfig {
            shards,
            machines,
            churn_fraction: 0.05,
            rate_band: 0.05,
            windows,
            scratch_windows,
            seed,
        })
    }
}

/// The outcome of one placement-scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceScaleRun {
    /// Microseconds the initial full build (window 0) took — identical
    /// work in both arms, reported once.
    pub build_us: f64,
    /// Mean microseconds per drifting window, warm incremental arm
    /// (epoch-band comparison + residual-capacity repair).
    pub incremental_us: f64,
    /// Mean microseconds per drifting window, from-scratch `plan` arm.
    pub scratch_us: f64,
    /// Heap allocations across one zero-drift steady-state window of the
    /// incremental arm; `None` when no probe is installed (library
    /// tests). Must be 0 under the `repro` binary.
    pub steady_allocs: Option<u64>,
    /// Solver calls the zero-drift steady-state window performed (must
    /// be 0 — the warm state sees every request unchanged).
    pub steady_solver_calls: u64,
    /// Per-shard solver calls across the whole incremental run.
    pub solver_calls: u64,
    /// Batch re-solves across the whole incremental run (the first
    /// window, plus drift-triggered anchors).
    pub full_solves: u64,
}

impl PlaceScaleRun {
    /// `scratch / incremental` — how many times faster the warm path is
    /// per drifting window.
    pub fn speedup(&self) -> f64 {
        self.scratch_us / self.incremental_us
    }
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() % (1 << 24)) as f64 / (1 << 24) as f64
    }
}

/// One shard's generator: fixed per-operator base demand; the drifting
/// parts (edge-rate factor, executor delta) are stored outside and
/// re-derived per drift draw, so both arms replay bit-identical request
/// sequences.
struct ShardGen {
    /// Per-operator (base executors, per-executor resource units).
    ops: Vec<(u32, f64)>,
    /// Base tuple rate on the chain edge `0 → 1`.
    base_rate: f64,
}

/// A shard's current drift: edge-rate factor and executor delta on
/// operator 0.
type Drift = (f64, u32);

fn write_request(gen: &ShardGen, drift: Drift, out: &mut PlacementRequest) {
    let (rate_factor, k_delta) = drift;
    out.operators.clear();
    out.operators.extend(
        gen.ops
            .iter()
            .enumerate()
            .map(|(i, &(k, units))| OperatorLoad {
                executors: k + if i == 0 { k_delta } else { 0 },
                profile: ResourceProfile::uniform(units),
            }),
    );
    out.edges.clear();
    out.edges.push(EdgeTraffic {
        from: 0,
        to: 1,
        rate: gen.base_rate * rate_factor,
    });
}

/// Builds the synthetic fleet: 2 operators per shard with 3–6 executors
/// each (large enough that the solver always dispatches to the greedy
/// heuristic, never the exponential oracle), per-executor demand in
/// [0.5, 1.5) units, and a homogeneous pool sized at 130% of total base
/// demand — tight enough that placement is non-trivial, loose enough
/// that executor churn stays feasible.
fn build_fleet(config: &PlaceScaleConfig) -> (Vec<ShardGen>, MachinePool) {
    let mut rng = XorShift::new(config.seed);
    let mut gens = Vec::with_capacity(config.shards);
    let mut total_units = 0.0;
    for _ in 0..config.shards {
        let ops: Vec<(u32, f64)> = (0..2)
            .map(|_| {
                let k = 3 + (rng.next() % 4) as u32;
                let units = 0.5 + rng.unit();
                total_units += f64::from(k) * units;
                (k, units)
            })
            .collect();
        let base_rate = 5.0 + rng.unit() * 45.0;
        gens.push(ShardGen { ops, base_rate });
    }
    let cap = total_units / config.machines as f64 * 1.3;
    let pool =
        MachinePool::uniform(config.machines, ResourceProfile::uniform(cap)).expect("valid pool");
    (gens, pool)
}

/// Applies window `w`'s drift and rewrites the touched requests in
/// place. The schedule depends only on `(seed, w)`, so both arms replay
/// it identically.
fn drift_window(
    config: &PlaceScaleConfig,
    w: u64,
    gens: &[ShardGen],
    drifts: &mut [Drift],
    requests: &mut [PlacementRequest],
) {
    let mut rng = XorShift::new(config.seed ^ (w.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    let churn = ((config.shards as f64) * config.churn_fraction).round() as usize;
    for _ in 0..churn {
        let i = (rng.next() % config.shards as u64) as usize;
        // Edge-rate drift wide enough to land outside the band almost
        // always; every 4th draw also moves an executor (0–1 extra on
        // operator 0), exercising the usage-refund path.
        let rate_factor = 0.6 + rng.unit() * 0.8;
        let k_delta = if rng.next().is_multiple_of(4) {
            (rng.next() % 2) as u32
        } else {
            drifts[i].1
        };
        drifts[i] = (rate_factor, k_delta);
        write_request(&gens[i], drifts[i], &mut requests[i]);
    }
}

/// The fleet-layer epoch band: executors/profiles and edge endpoints
/// exact, edge rates within `rate_band` relative to the cached rate.
fn band_matches(cached: &PlacementRequest, measured: &PlacementRequest, band: f64) -> bool {
    cached.operators == measured.operators
        && cached.edges.len() == measured.edges.len()
        && cached.edges.iter().zip(&measured.edges).all(|(c, m)| {
            c.from == m.from && c.to == m.to && (m.rate - c.rate).abs() <= band * c.rate.abs()
        })
}

/// One incremental window over the warm state: band-compare every
/// measured request against the cache, touch only real changes, replan.
fn warm_window(
    state: &mut FleetPlacementState,
    pool: &MachinePool,
    slots: &[usize],
    requests: &[PlacementRequest],
    band: f64,
) {
    state.begin_window();
    state.sync_pool(pool);
    for (&slot, measured) in slots.iter().zip(requests) {
        if !band_matches(state.request(slot), measured, band) {
            state.touch(slot).clone_from(measured);
        }
        state.mark_seen(slot);
    }
    state.replan().expect("feasible pool");
}

fn shard_name(i: usize) -> String {
    // Zero-padded so sorted-name order equals index order.
    format!("s{i:07}")
}

/// Runs both arms over the same drift sequence and cross-checks the warm
/// state's assignments against the from-scratch reference.
pub fn run_place_scale(config: &PlaceScaleConfig) -> PlaceScaleRun {
    let probe = ALLOC_PROBE.get().copied();
    let (gens, pool) = build_fleet(config);
    let mut drifts: Vec<Drift> = vec![(1.0, 0); config.shards];
    let mut requests: Vec<PlacementRequest> = gens
        .iter()
        .map(|g| {
            let mut r = PlacementRequest::default();
            write_request(g, (1.0, 0), &mut r);
            r
        })
        .collect();

    // Incremental arm: one warm state across every window.
    let mut state = FleetPlacementState::new();
    let start = Instant::now();
    let slots: Vec<usize> = (0..config.shards)
        .map(|i| state.insert(&shard_name(i)))
        .collect();
    warm_window(&mut state, &pool, &slots, &requests, config.rate_band);
    let build_us = start.elapsed().as_secs_f64() * 1e6;

    let mut inc_secs = 0.0;
    for w in 1..=config.windows {
        drift_window(config, w, &gens, &mut drifts, &mut requests);
        let start = Instant::now();
        warm_window(&mut state, &pool, &slots, &requests, config.rate_band);
        inc_secs += start.elapsed().as_secs_f64();
        // Capacity safety after every repair window.
        for r in state.remaining() {
            assert!(
                r.cpu >= -1e-9 && r.mem >= -1e-9 && r.net >= -1e-9,
                "residual capacity went negative: {r:?}"
            );
        }
    }
    // Zero-drift steady-state window: request bits unchanged, so the
    // warm path must neither allocate nor call the solver.
    let calls_before = state.solver_calls();
    let steady_allocs = probe.map(|p| {
        let before = p();
        warm_window(&mut state, &pool, &slots, &requests, config.rate_band);
        p() - before
    });
    if steady_allocs.is_none() {
        warm_window(&mut state, &pool, &slots, &requests, config.rate_band);
    }
    let steady_solver_calls = state.solver_calls() - calls_before;
    let solver_calls = state.solver_calls();
    let full_solves = state.full_solves();
    let incremental_us = inc_secs * 1e6 / config.windows as f64;

    // From-scratch arm: identical drift replay, fresh `plan` per window
    // (fewer windows — this is the slow arm). Requests are copied into
    // the named buffer outside the timer.
    let mut drifts: Vec<Drift> = vec![(1.0, 0); config.shards];
    let mut requests: Vec<PlacementRequest> = gens
        .iter()
        .map(|g| {
            let mut r = PlacementRequest::default();
            write_request(g, (1.0, 0), &mut r);
            r
        })
        .collect();
    let mut named: Vec<(String, PlacementRequest)> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| (shard_name(i), r.clone()))
        .collect();
    let mut scratch_secs = 0.0;
    for w in 1..=config.scratch_windows {
        drift_window(config, w, &gens, &mut drifts, &mut requests);
        for (slot, r) in named.iter_mut().zip(&requests) {
            slot.1.clone_from(r);
        }
        let start = Instant::now();
        std::hint::black_box(placement::plan(&pool, &named).expect("feasible pool"));
        scratch_secs += start.elapsed().as_secs_f64();
    }
    let scratch_us = scratch_secs * 1e6 / config.scratch_windows as f64;

    // Cross-check: a forced batch re-solve of the warm state must equal
    // `plan` bit-for-bit over the same cached requests.
    for (slot, n) in slots.iter().zip(named.iter_mut()) {
        n.1.clone_from(state.request(*slot));
    }
    state.begin_window();
    state.sync_pool(&pool);
    for &slot in &slots {
        state.mark_seen(slot);
    }
    state.invalidate();
    state.replan().expect("feasible pool");
    let reference = placement::plan(&pool, &named).expect("feasible pool");
    for (i, (&slot, want)) in slots.iter().zip(&reference).enumerate() {
        assert_eq!(
            state.placement(slot),
            want,
            "warm placement diverged from plan() for shard {i}"
        );
    }

    PlaceScaleRun {
        build_us,
        incremental_us,
        scratch_us,
        steady_allocs,
        steady_solver_calls,
        solver_calls,
        full_solves,
    }
}

/// Renders one run as a table plus the headline ratio.
pub fn render_place_scale(config: &PlaceScaleConfig, run: &PlaceScaleRun) -> String {
    let rows = vec![
        vec![
            "incremental".to_owned(),
            format!("{:.1}", run.incremental_us),
            run.steady_allocs
                .map_or_else(|| "n/a".to_owned(), |n| n.to_string()),
            run.steady_solver_calls.to_string(),
        ],
        vec![
            "from-scratch".to_owned(),
            format!("{:.1}", run.scratch_us),
            "-".to_owned(),
            "-".to_owned(),
        ],
    ];
    let mut out = crate::report::render_table(
        &format!(
            "Fleet placement at {} shards on {} machines, {:.0}% churn/window",
            config.shards,
            config.machines,
            config.churn_fraction * 100.0,
        ),
        &["arm", "place (µs/window)", "steady allocs", "steady solves"],
        &rows,
    );
    out.push_str(&format!(
        "initial build: {:.1} µs; {} solver calls, {} batch re-solves; \
         incremental speedup per drifting window: {:.1}x\n",
        run.build_us,
        run.solver_calls,
        run.full_solves,
        run.speedup(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_run_is_consistent() {
        let config = PlaceScaleConfig {
            shards: 200,
            machines: 8,
            churn_fraction: 0.1,
            rate_band: 0.05,
            windows: 4,
            scratch_windows: 4,
            seed: 2015,
        };
        // run_place_scale itself cross-checks the warm state against the
        // from-scratch reference bit-for-bit at the forced final solve.
        let run = run_place_scale(&config);
        assert!(run.incremental_us > 0.0);
        assert!(run.scratch_us > 0.0);
        assert_eq!(
            run.steady_solver_calls, 0,
            "a zero-drift window must not touch the solver"
        );
        assert!(run.full_solves >= 1, "the first window batch-solves");
        assert!(
            run.solver_calls > 0,
            "drifting windows must repair some shards"
        );
        // No probe in lib tests.
        assert_eq!(run.steady_allocs, None);
        let rendered = render_place_scale(&config, &run);
        assert!(rendered.contains("incremental"), "{rendered}");
        assert!(rendered.contains("from-scratch"), "{rendered}");
    }

    #[test]
    fn named_scales_parse() {
        for (name, shards) in [("1k", 1_000), ("10k", 10_000), ("100k", 100_000)] {
            let c = PlaceScaleConfig::named(name, true, 1).unwrap();
            assert_eq!(c.shards, shards);
            assert!(c.scratch_windows <= c.windows);
        }
        assert!(PlaceScaleConfig::named("1m", true, 1).is_none());
    }
}
