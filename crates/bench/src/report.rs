//! Plain-text table rendering and small statistics helpers for the
//! experiment reports.

/// Renders an ASCII table: `header` defines the column titles, `rows` the
/// cells. Column widths adapt to content.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let line = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    line(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    line(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    line(&mut out);
    out
}

/// Spearman rank correlation between two equally long samples.
///
/// Returns `None` for fewer than two points or mismatched lengths. Ties get
/// the average of their tied ranks.
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - mean) * (y - mean);
        var_a += (x - mean) * (x - mean);
        var_b += (y - mean) * (y - mean);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return None;
    }
    Some(cov / (var_a.sqrt() * var_b.sqrt()))
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("finite values"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average rank for ties; ranks are 1-based.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Formats a float in fixed notation with the given precision.
pub fn fmt(v: f64, precision: usize) -> String {
    format!("{v:.precision$}")
}

/// Formats an allocation as the paper's `(x1:x2:x3)` notation.
pub fn fmt_allocation(alloc: &[u32]) -> String {
    let inner: Vec<String> = alloc.iter().map(u32::to_string).collect();
    format!("({})", inner.join(":"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let s = render_table(
            "demo",
            &["a", "bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(s.contains("demo"));
        assert!(s.contains("333"));
        assert!(s.contains("bee"));
    }

    #[test]
    fn spearman_perfect_monotone() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_and_degenerate_inputs() {
        let a = [1.0, 1.0, 2.0];
        let b = [5.0, 5.0, 9.0];
        let r = spearman(&a, &b).unwrap();
        assert!(r > 0.9);
        assert!(spearman(&[1.0], &[2.0]).is_none());
        assert!(spearman(&[1.0, 2.0], &[1.0]).is_none());
        assert!(spearman(&[1.0, 1.0], &[2.0, 3.0]).is_none()); // zero variance
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn allocation_formatting() {
        assert_eq!(fmt_allocation(&[10, 11, 1]), "(10:11:1)");
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
