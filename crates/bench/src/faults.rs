//! `repro fleet --faults <scenario>`: the four-topology fleet under a
//! degraded control plane.
//!
//! Each named scenario wraps the [`crate::fleet`] fleet's shards in
//! [`drs_sim::FaultyShard`]s — seeded, deterministic control channels
//! injecting loss, delay, duplication, partitions, churn or crashes —
//! and runs the hardened `drs_core::fleet` loop against them. The
//! rendered timeline shows, window by window, every injected fault next
//! to the control-plane reaction it provoked (timeouts, backoff
//! deferrals, stale-epoch rejections, dead-shard budget reclaim).

use crate::fleet::{FleetBenchConfig, FPD_T_MAX, VLD_T_MAX};
use crate::report::{fmt_allocation, render_table};
use drs_apps::{FpdProfile, VldProfile};
use drs_core::fleet::{FleetDriverConfig, FleetShardSpec, FleetWindow, ShardPoint};
use drs_sim::{
    ControlChannel, FaultEvent, FaultyFleetCoordinator, FaultyShard, LinkFaults, Partition,
    Simulator, WindowJitter,
};

/// A named control-plane fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// The CI variant: moderate loss both ways over the short smoke run.
    Smoke,
    /// Heavy message loss: ≥25% of reports and actuations dropped, plus
    /// lost acks and duplicated commands.
    Lossy,
    /// High latency: reports trail by 1–2 windows, commands by 0–1, with
    /// duplicates — reordering without loss.
    Laggy,
    /// One shard fully partitioned for the middle third of the run, then
    /// healed.
    Partition,
    /// Shard churn: a new shard joins a third of the way in; another
    /// leaves gracefully at two thirds.
    Churn,
    /// Machine failures: two shards crash silently mid-run and never
    /// come back — the lease must reclaim their budget.
    CrashStorm,
}

impl FaultScenario {
    /// Every scenario, in display order.
    pub const ALL: [FaultScenario; 6] = [
        FaultScenario::Smoke,
        FaultScenario::Lossy,
        FaultScenario::Laggy,
        FaultScenario::Partition,
        FaultScenario::Churn,
        FaultScenario::CrashStorm,
    ];

    /// Parses a CLI scenario name.
    pub fn parse(name: &str) -> Option<Self> {
        FaultScenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::Smoke => "smoke",
            FaultScenario::Lossy => "lossy",
            FaultScenario::Laggy => "laggy",
            FaultScenario::Partition => "partition",
            FaultScenario::Churn => "churn",
            FaultScenario::CrashStorm => "crash-storm",
        }
    }

    /// One-line description for the rendered header.
    pub fn describe(self) -> &'static str {
        match self {
            FaultScenario::Smoke => "20% loss both directions (CI smoke)",
            FaultScenario::Lossy => "25% report+command loss, 10% ack loss, duplicates",
            FaultScenario::Laggy => "reports 1-2 windows late, commands 0-1, duplicates",
            FaultScenario::Partition => "vld-b partitioned for the middle third",
            FaultScenario::Churn => "fpd-c joins at 1/3, vld-b leaves at 2/3",
            FaultScenario::CrashStorm => "vld-b and fpd-b crash mid-run",
        }
    }

    /// The link fault model every shard's channel runs under.
    fn link_faults(self) -> LinkFaults {
        match self {
            FaultScenario::Smoke => LinkFaults {
                report_loss: 0.2,
                command_loss: 0.2,
                ..LinkFaults::none()
            },
            FaultScenario::Lossy => LinkFaults {
                report_loss: 0.25,
                command_loss: 0.25,
                ack_loss: 0.1,
                command_duplicate: 0.1,
                ..LinkFaults::none()
            },
            FaultScenario::Laggy => LinkFaults {
                report_delay: WindowJitter { base: 1, jitter: 1 },
                command_delay: WindowJitter { base: 0, jitter: 1 },
                command_duplicate: 0.1,
                ..LinkFaults::none()
            },
            // Partition / churn / crash scenarios keep the links clean so
            // the rendered reaction is attributable to the one fault.
            FaultScenario::Partition | FaultScenario::Churn => LinkFaults::none(),
            FaultScenario::CrashStorm => LinkFaults {
                report_loss: 0.1,
                command_loss: 0.1,
                ..LinkFaults::none()
            },
        }
    }
}

/// A finished fault-injected fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyFleetRun {
    /// The scenario that ran.
    pub scenario: FaultScenario,
    /// Every shard name that ever appeared, in first-seen order (churn
    /// adds and removes shards mid-run).
    pub names: Vec<String>,
    /// The recorded fleet timeline.
    pub timeline: Vec<FleetWindow>,
    /// Per-shard fault logs, keyed by shard name (removed shards keep
    /// the log collected up to their departure).
    pub faults: Vec<(String, Vec<FaultEvent>)>,
}

fn wrap(sim: Simulator, seed: u64, scenario: FaultScenario) -> FaultyShard<Simulator> {
    FaultyShard::new(sim, ControlChannel::new(seed, scenario.link_faults()))
}

/// Builds the four-topology fleet behind fault-injected channels.
pub fn build_faulty_fleet(
    config: &FleetBenchConfig,
    scenario: FaultScenario,
) -> FaultyFleetCoordinator {
    let vld = VldProfile::paper();
    let fpd = FpdProfile::paper();
    let mut driver_config = FleetDriverConfig::new(config.k_max);
    driver_config.window_secs = config.window_secs;
    // Channel seeds are offset from the workload seeds so changing the
    // fault dice never perturbs the traffic.
    let ch = |i: u64| config.seed.wrapping_mul(31).wrapping_add(i);
    let mut shards = vec![
        wrap(
            vld.build_simulation([8, 8, 1], config.seed),
            ch(0),
            scenario,
        ),
        wrap(
            vld.build_simulation([8, 8, 1], config.seed + 1),
            ch(1),
            scenario,
        ),
        wrap(
            fpd.build_simulation([5, 12, 2], config.seed + 2),
            ch(2),
            scenario,
        ),
        wrap(
            fpd.build_simulation([5, 12, 2], config.seed + 3),
            ch(3),
            scenario,
        ),
    ];
    if scenario == FaultScenario::Partition {
        let shard = &mut shards[1];
        let channel = shard.channel().clone().with_partition(Partition {
            from_window: config.windows / 3,
            heal_window: config.windows * 2 / 3,
        });
        *shard = FaultyShard::new(shard.inner().clone(), channel);
    }
    if scenario == FaultScenario::CrashStorm {
        shards[1].crash_at(config.windows / 2);
        shards[3].crash_at(config.windows / 2 + 1);
    }
    let mut it = shards.into_iter();
    FaultyFleetCoordinator::new(
        driver_config,
        vec![
            FleetShardSpec::new("vld-a", VLD_T_MAX, it.next().expect("four shards")),
            FleetShardSpec::new("vld-b", VLD_T_MAX, it.next().expect("four shards")),
            FleetShardSpec::new("fpd-a", FPD_T_MAX, it.next().expect("four shards")),
            FleetShardSpec::new("fpd-b", FPD_T_MAX, it.next().expect("four shards")),
        ],
    )
    .expect("valid fleet")
}

/// Runs a scenario to completion.
pub fn run_faulty_fleet(config: &FleetBenchConfig, scenario: FaultScenario) -> FaultyFleetRun {
    let mut fleet = build_faulty_fleet(config, scenario);
    let mut names: Vec<String> = fleet.shard_names().into_iter().map(str::to_owned).collect();
    let mut departed: Vec<(String, Vec<FaultEvent>)> = Vec::new();
    let join_at = config.windows / 3;
    let leave_at = config.windows * 2 / 3;
    for window in 0..config.windows {
        if scenario == FaultScenario::Churn {
            if window == join_at {
                let fpd = FpdProfile::paper();
                let shard = wrap(
                    fpd.build_simulation([5, 12, 2], config.seed + 4),
                    config.seed.wrapping_mul(31).wrapping_add(4),
                    scenario,
                );
                fleet
                    .driver_mut()
                    .add_shard(FleetShardSpec::new("fpd-c", FPD_T_MAX, shard))
                    .expect("valid joining shard");
                names.push("fpd-c".to_owned());
            }
            if window == leave_at {
                let name = fleet.shard_names()[1].to_owned();
                let removed = fleet.driver_mut().remove_shard(1);
                departed.push((name, removed.fault_log().to_vec()));
            }
        }
        fleet.step();
    }
    let mut faults: Vec<(String, Vec<FaultEvent>)> = fleet
        .shard_names()
        .iter()
        .enumerate()
        .map(|(i, name)| ((*name).to_owned(), fleet.fault_log(i).to_vec()))
        .collect();
    faults.extend(departed);
    faults.sort_by_key(|(name, _)| names.iter().position(|n| n == name));
    FaultyFleetRun {
        scenario,
        names,
        timeline: fleet.timeline().to_vec(),
        faults,
    }
}

/// One shard's cell: `granted/demand` plus flags — `C` capped, `R`
/// rebalanced, `D` dead (lease expired), `E` actuation error this
/// window — or `·` when the shard is not in the fleet that window.
fn cell(point: Option<&ShardPoint>) -> String {
    let Some(p) = point else {
        return "·".to_owned();
    };
    let demand = p.demand.map_or_else(
        || format!("{}/-", p.granted()),
        |d| format!("{}/{d}", p.granted()),
    );
    let mut flags = String::new();
    if p.capped {
        flags.push('C');
    }
    if p.rebalanced {
        flags.push('R');
    }
    if p.dead {
        flags.push('D');
    }
    if p.error.is_some() {
        flags.push('E');
    }
    format!("{demand}{flags}")
}

/// Renders the scenario timeline: the per-window grant table, then the
/// merged fault/reaction log (every injected fault and every deferred,
/// rejected or timed-out actuation, in window order).
pub fn render_faulty_fleet(config: &FleetBenchConfig, run: &FaultyFleetRun) -> String {
    let mut header: Vec<String> = vec!["window".to_owned()];
    header.extend(run.names.iter().map(|n| format!("{n} k/demand")));
    header.push("Σk".to_owned());
    header.push(String::new());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = run
        .timeline
        .iter()
        .map(|w| {
            let mut row = vec![format!("{}", w.window + 1)];
            for name in &run.names {
                row.push(cell(w.shards.iter().find(|p| &p.name == name)));
            }
            row.push(format!("{}", w.total_granted));
            row.push(if w.contended {
                "contended".to_owned()
            } else {
                String::new()
            });
            row
        })
        .collect();
    let mut out = render_table(
        &format!(
            "fleet --faults {} — {} ({} windows of {:.0} s, Kmax={}, seed {})",
            run.scenario.name(),
            run.scenario.describe(),
            config.windows,
            config.window_secs,
            config.k_max,
            config.seed,
        ),
        &header_refs,
        &rows,
    );

    // The merged fault/reaction log: injected faults from the channels,
    // control-plane reactions from the timeline's per-shard errors.
    let mut events: Vec<(u64, String)> = Vec::new();
    for (name, log) in &run.faults {
        for e in log {
            events.push((e.window, format!("{name}: {}", e.kind)));
        }
    }
    for w in &run.timeline {
        for p in &w.shards {
            if let Some(e) = &p.error {
                events.push((w.window, format!("{}: {e}", p.name)));
            }
        }
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out.push_str("fault log (injected faults and control-plane reactions):\n");
    if events.is_empty() {
        out.push_str("  (none)\n");
    }
    for (window, line) in &events {
        out.push_str(&format!("  w{:>3}  {line}\n", window + 1));
    }

    let last = run.timeline.last().expect("non-empty timeline");
    for p in &last.shards {
        out.push_str(&format!(
            "{:>8}: final {} ({} executors{}{})\n",
            p.name,
            fmt_allocation(&p.allocation),
            p.granted(),
            if p.capped { ", capped" } else { "" },
            if p.dead { ", presumed dead" } else { "" },
        ));
    }
    out.push_str(&format!(
        "   fleet: {} of {} executors placed; {} contended window(s); {} fault event(s)\n",
        last.total_granted,
        config.k_max,
        run.timeline.iter().filter(|w| w.contended).count(),
        events.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> FleetBenchConfig {
        FleetBenchConfig::smoke(2015)
    }

    #[test]
    fn scenario_names_round_trip() {
        for s in FaultScenario::ALL {
            assert_eq!(FaultScenario::parse(s.name()), Some(s));
        }
        assert_eq!(FaultScenario::parse("nope"), None);
    }

    #[test]
    fn lossy_scenario_respects_budget_and_replays_deterministically() {
        let config = smoke_config();
        let run = run_faulty_fleet(&config, FaultScenario::Lossy);
        assert_eq!(run.timeline.len(), config.windows as usize);
        for w in &run.timeline {
            assert!(
                w.total_granted <= u64::from(config.k_max),
                "window {} over budget: {w:?}",
                w.window
            );
        }
        assert!(
            run.faults.iter().any(|(_, log)| !log.is_empty()),
            "a lossy channel must log faults"
        );
        let again = run_faulty_fleet(&config, FaultScenario::Lossy);
        assert_eq!(run, again, "same seed and scenario must replay exactly");
        let rendered = render_faulty_fleet(&config, &run);
        assert!(rendered.contains("fault log"));
    }

    #[test]
    fn crash_storm_reclaims_the_dead_shards_budget() {
        let config = smoke_config();
        let run = run_faulty_fleet(&config, FaultScenario::CrashStorm);
        let crash_window = config.windows / 2;
        let last = run.timeline.last().unwrap();
        let dead: Vec<&str> = last
            .shards
            .iter()
            .filter(|p| p.dead)
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(
            dead,
            vec!["vld-b", "fpd-b"],
            "both crashed shards must be lease-expired by the end: {last:?}"
        );
        // The lease fires within lease_windows of the crash.
        let lease = FleetDriverConfig::new(config.k_max).lease_windows;
        let first_dead = run
            .timeline
            .iter()
            .find(|w| w.shards.iter().any(|p| p.dead))
            .expect("a shard must die");
        assert!(
            first_dead.window <= crash_window + lease + 1,
            "lease must expire within {lease} windows of the crash at {crash_window}: \
             first dead at {}",
            first_dead.window
        );
        // Live shards keep the fleet under budget without the ghosts.
        assert!(last.total_granted <= u64::from(config.k_max));
        let live_granted: u64 = last
            .shards
            .iter()
            .filter(|p| !p.dead)
            .map(ShardPoint::granted)
            .sum();
        assert_eq!(live_granted, last.total_granted);
    }

    #[test]
    fn churn_adds_then_removes_shards_mid_run() {
        let config = smoke_config();
        let run = run_faulty_fleet(&config, FaultScenario::Churn);
        assert_eq!(
            run.names,
            vec!["vld-a", "vld-b", "fpd-a", "fpd-b", "fpd-c"],
            "the joining shard must be recorded"
        );
        let first = &run.timeline[0];
        assert_eq!(first.shards.len(), 4);
        let mid = &run.timeline[config.windows as usize / 3];
        assert_eq!(mid.shards.len(), 5, "fpd-c must have joined: {mid:?}");
        let last = run.timeline.last().unwrap();
        assert_eq!(last.shards.len(), 4, "vld-b must have left: {last:?}");
        assert!(last.shards.iter().all(|p| p.name != "vld-b"));
        // A joining shard brings its own executors, so the fleet may run
        // over budget for the windows it takes the negotiator to shrink
        // the incumbents (grows are deferred the whole time); it must be
        // back at or under Kmax shortly after.
        let join_at = config.windows / 3;
        for w in &run.timeline {
            if !(join_at..join_at + 3).contains(&w.window) {
                assert!(
                    w.total_granted <= u64::from(config.k_max),
                    "window {} over budget: {w:?}",
                    w.window
                );
            }
        }
        // The removed shard's fault log survives in the run record.
        assert!(run.faults.iter().any(|(n, _)| n == "vld-b"));
        let rendered = render_faulty_fleet(&config, &run);
        assert!(rendered.contains("fpd-c"));
    }

    #[test]
    fn partition_darkens_then_heals_one_shard() {
        let config = smoke_config();
        let run = run_faulty_fleet(&config, FaultScenario::Partition);
        let (_, vld_b_log) = run
            .faults
            .iter()
            .find(|(n, _)| n == "vld-b")
            .expect("vld-b log");
        use drs_sim::FaultKind;
        assert!(vld_b_log
            .iter()
            .any(|e| e.kind == FaultKind::PartitionStarted));
        assert!(vld_b_log
            .iter()
            .any(|e| e.kind == FaultKind::PartitionHealed));
        for w in &run.timeline {
            assert!(w.total_granted <= u64::from(config.k_max));
        }
    }
}
