//! Perf trajectory: heap+incremental scheduling vs the retained reference
//! implementation, the calendar event queue vs a binary-heap reference,
//! end-to-end simulator throughput, live-runtime throughput, the
//! machine-placement comparison (solver vs round-robin on the contended
//! fleet), and the saturation soak's latency percentiles under
//! continuous rebalances — rendered as tables and exported as machine-readable
//! `BENCH_PERF.json` so successive PRs can compare like for like
//! (`repro perfdiff` gates the trajectory in CI).

use crate::report::render_table;
use crate::timing::time_per_call_us;
use drs_apps::vld::live::{AggregateBolt, ExtractBolt, FrameSpout, MatchBolt};
use drs_apps::{FpdProfile, VldProfile};
use drs_core::scheduler::{assign_processors, assign_processors_reference};
use drs_runtime::operator::{Spout, SpoutEmission};
use drs_runtime::RuntimeBuilder;
use drs_sim::calendar::CalendarQueue;
use drs_sim::SimDuration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Scheduling comparison at one `Kmax`.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedPoint {
    /// The processor budget.
    pub k_max: u32,
    /// Mean microseconds per heap+incremental `assign_processors` call.
    pub heap_us: f64,
    /// Mean microseconds per from-scratch reference call.
    pub reference_us: f64,
}

impl SchedPoint {
    /// `reference / heap` — how many times faster the production path is.
    pub fn speedup(&self) -> f64 {
        self.reference_us / self.heap_us
    }
}

/// Event-queue comparison at one pending-population size: mean cost of one
/// hold cycle (pop + re-insert) with `pending` events resident.
#[derive(Debug, Clone, PartialEq)]
pub struct EventQueuePoint {
    /// Events resident in the queue during the hold loop.
    pub pending: u64,
    /// Mean nanoseconds per hold cycle on the calendar queue.
    pub calendar_ns: f64,
    /// Mean nanoseconds per hold cycle on the binary-heap reference.
    pub heap_ns: f64,
}

impl EventQueuePoint {
    /// `heap / calendar` — how many times faster the calendar queue is.
    pub fn speedup(&self) -> f64 {
        self.heap_ns / self.calendar_ns
    }
}

/// The calendar-ladder scale guard: one hold-model point whose reinserts
/// are far-future-heavy (most pops teleport deep past the calendar's
/// current year), at a 10⁶ pending population — the access pattern that
/// stresses ladder wraparound and empty-bucket scans rather than the
/// steady near-term churn of [`EventQueuePoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventQueueFarPoint {
    /// Events resident in the queue during the hold loop.
    pub pending: u64,
    /// Mean nanoseconds per hold cycle on the calendar queue.
    pub calendar_ns: f64,
    /// Mean nanoseconds per hold cycle on the binary-heap reference.
    pub heap_ns: f64,
}

impl EventQueueFarPoint {
    /// `heap / calendar` — how many times faster the calendar queue is.
    pub fn speedup(&self) -> f64 {
        self.heap_ns / self.calendar_ns
    }
}

/// The fleet-scale negotiation comparison embedded in the snapshot: the
/// smoke shape of `repro fleet --scale 100k` (100k shards, 5% demand
/// churn per window), reduced to the gated numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScalePoint {
    /// Shards in the synthetic fleet.
    pub shards: u64,
    /// Percent of shards whose demand drifts per window.
    pub churn_pct: f64,
    /// Mean microseconds per contended window, warm-start incremental.
    pub incremental_us: f64,
    /// Mean microseconds per contended window, from-scratch reference.
    pub scratch_us: f64,
    /// Heap allocations across one zero-churn steady-state incremental
    /// window — must be 0; `None` when no allocation probe is installed.
    pub steady_allocs: Option<u64>,
}

impl FleetScalePoint {
    /// `scratch / incremental` — how many times faster the warm path is.
    pub fn speedup(&self) -> f64 {
        self.scratch_us / self.incremental_us
    }
}

/// The placement-scale comparison embedded in the snapshot: the smoke
/// shape of `repro fleet --scale 100k --place` (100k shards on a shared
/// 64-machine pool, 5% request churn per window), reduced to the gated
/// numbers — the warm epoch-band
/// [`drs_core::placement::FleetPlacementState`] against a from-scratch
/// `placement::plan` per window.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementScalePoint {
    /// Shards in the synthetic fleet.
    pub shards: u64,
    /// Percent of shards whose placement request drifts per window.
    pub churn_pct: f64,
    /// Mean microseconds per drifting window, warm incremental arm.
    pub incremental_us: f64,
    /// Mean microseconds per drifting window, from-scratch `plan` arm.
    pub scratch_us: f64,
    /// Heap allocations across one zero-drift steady-state incremental
    /// window — must be 0; `None` when no allocation probe is installed.
    pub steady_allocs: Option<u64>,
}

impl PlacementScalePoint {
    /// `scratch / incremental` — how many times faster the warm path is.
    pub fn speedup(&self) -> f64 {
        self.scratch_us / self.incremental_us
    }
}

/// Simulator throughput for one workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoint {
    /// Workload name (`vld` / `fpd`).
    pub name: &'static str,
    /// Simulated seconds driven per run.
    pub simulated_secs: u64,
    /// Best (minimum) wall-clock milliseconds across the measurement runs.
    pub wall_ms: f64,
    /// Fully processed tuple trees per wall-clock second (at the best run).
    pub trees_per_wall_sec: f64,
}

/// Live-runtime throughput on one pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimePoint {
    /// Pipeline name (`vld_live`).
    pub pipeline: &'static str,
    /// Root tuples (frames) pushed through per run.
    pub frames: u64,
    /// Best (minimum) wall-clock milliseconds across the measurement runs.
    pub wall_ms: f64,
    /// Tuples executed per wall-clock second across all bolts (at the best
    /// run).
    pub tuples_per_wall_sec: f64,
}

/// Live-runtime throughput at one worker-pool size, with far more logical
/// executors than workers (`Σk_i ≫ workers` — the decoupling claim).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerPoolPoint {
    /// Pool worker threads.
    pub workers: usize,
    /// Best (minimum) wall-clock milliseconds across the measurement runs.
    pub wall_ms: f64,
    /// Tuples executed per wall-clock second across all bolts (at the best
    /// run).
    pub tuples_per_wall_sec: f64,
}

/// Measured rebalance pause of the pool engine against the
/// thread-per-executor reference.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalancePoint {
    /// Best (minimum) microseconds for a live shrink rebalance on the
    /// pool engine (weight write + quiesce of the shrinking operators).
    pub pool_pause_us: f64,
    /// Best (minimum) microseconds for the thread-per-executor reference:
    /// stop-flag + join of the old executor generation + spawn of the new
    /// one, threads parked in the same 5 ms recv loop the old engine ran.
    pub thread_join_pause_us: f64,
}

impl RebalancePoint {
    /// `thread_join / pool` — how many times cheaper the pool rebalance is.
    pub fn speedup(&self) -> f64 {
        self.thread_join_pause_us / self.pool_pause_us
    }
}

/// One placement policy's outcome on the `repro place` smoke scenario
/// (the contended 8-machine VLD+FPD fleet). Virtual-clock simulation with
/// fixed seeds: the numbers are deterministic, so the perfdiff gate can
/// hold them to tight tolerances across machines.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPoint {
    /// `solver` (the resource-aware placement) or `round_robin` (the
    /// capacity-oblivious baseline, kept as the reference oracle).
    pub policy: &'static str,
    /// Fleet-wide fraction of edge tuples that crossed machines.
    pub cross_fraction: f64,
    /// Completion-weighted mean end-to-end sojourn across the fleet (ms).
    pub mean_sojourn_ms: f64,
    /// Relative cut vs the round-robin baseline (`1 − solver/baseline`);
    /// zero on the baseline's own row.
    pub cross_cut: f64,
}

/// The saturation-soak outcome embedded in the snapshot: the smoke shape
/// of `repro soak` (flood + continuous rebalances through deliberately
/// small bounded channels), reduced to the gated numbers. Latency
/// percentiles are the headline — throughput under churn is table stakes,
/// the tail is what production feels.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakPoint {
    /// Scenario name (`vld_churn`).
    pub scenario: &'static str,
    /// Median ingress→ack latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile ingress→ack latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile ingress→ack latency, milliseconds.
    pub p99_ms: f64,
    /// Peak input-queue depth on any slot (≤ the channel capacity — the
    /// hard bound).
    pub max_queue_depth: u64,
    /// Executor-task suspensions taken on full downstream channels.
    pub suspensions: u64,
    /// Tuples executed per wall-clock second over the soak.
    pub tuples_per_sec: f64,
}

/// The whole perf snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Scheduling sweep over the Table II `Kmax` values.
    pub scheduling: Vec<SchedPoint>,
    /// Event-queue hold-model sweep over pending-population sizes.
    pub event_queue: Vec<EventQueuePoint>,
    /// The far-future-heavy calendar-ladder guard at 10⁶ pending events.
    pub event_queue_far: EventQueueFarPoint,
    /// Fleet-scale warm-start negotiation vs from-scratch (smoke shape of
    /// `repro fleet --scale 100k`).
    pub fleet_scale: FleetScalePoint,
    /// Placement-scale warm-start machine assignment vs from-scratch
    /// (smoke shape of `repro fleet --scale 100k --place`).
    pub placement_scale: PlacementScalePoint,
    /// Simulator end-to-end runs.
    pub simulator: Vec<SimPoint>,
    /// Live-runtime end-to-end runs.
    pub runtime: Vec<RuntimePoint>,
    /// Worker-pool sweep (same pipeline, varying pool size, k ≫ workers).
    pub worker_pool: Vec<WorkerPoolPoint>,
    /// Rebalance pause: pool vs thread-per-executor reference.
    pub rebalance: RebalancePoint,
    /// Machine placement on the contended fleet: solver vs round-robin.
    pub placement: Vec<PlacementPoint>,
    /// Saturation soak under continuous rebalances (smoke shape).
    pub soak: SoakPoint,
}

/// Pending-population sizes of the event-queue sweep.
pub const EVENT_QUEUE_SWEEP: [u64; 3] = [10_000, 100_000, 1_000_000];

/// Pool sizes of the worker-pool sweep; the pipeline runs Σk = 7 logical
/// executors at every point, so each point has k ≫ workers.
pub const WORKER_POOL_SWEEP: [usize; 3] = [1, 2, 4];

/// Hold cycles per event-queue point. Deliberately independent of
/// `--quick`: the measured cost amortizes re-seed spills over the op
/// count, so changing it would systematically shift the metric and flake
/// the perfdiff gate between the committed baseline and CI's smoke run.
const EVENT_QUEUE_HOLD_OPS: u64 = 400_000;

/// Measurement repetitions for the wall-clock rows; the minimum wall time
/// is reported so the perfdiff gate sees scheduler/allocator noise, not the
/// workload.
const WALL_RUNS: u32 = 3;

/// Frames pushed through the live VLD pipeline per run. Deliberately
/// independent of `--quick` so the committed baseline and the CI smoke run
/// measure the same steady-state mix.
const RUNTIME_FRAMES: u64 = 4_000;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The minimal scheduler interface the hold model drives.
trait HoldQueue {
    fn push(&mut self, time: u64);
    fn pop(&mut self) -> u64;
}

impl HoldQueue for CalendarQueue<u32> {
    fn push(&mut self, time: u64) {
        CalendarQueue::push(self, time, 0);
    }

    fn pop(&mut self) -> u64 {
        CalendarQueue::pop(self)
            .expect("hold model never empties")
            .0
    }
}

/// The binary-heap reference: the exact `(time, FIFO sequence)` ordering
/// the simulator used before the calendar swap.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    next_seq: u64,
}

impl HoldQueue for HeapQueue {
    fn push(&mut self, time: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq)));
    }

    fn pop(&mut self) -> u64 {
        self.heap.pop().expect("hold model never empties").0 .0
    }
}

/// Hold-model benchmark of one queue implementation: pre-fill `pending`
/// events, then time `ops` pop-and-reinsert cycles (the simulator's
/// steady-state pattern). Returns mean nanoseconds per cycle.
fn hold_model_ns<Q: HoldQueue>(queue: &mut Q, pending: u64, ops: u64, seed: u64) -> f64 {
    let mut rng = XorShift(seed | 1);
    for _ in 0..pending {
        queue.push(rng.next() % (pending * 1_000));
    }
    let start = Instant::now();
    for _ in 0..ops {
        let t = queue.pop();
        // Bounded forward increments keep the population's time density
        // stationary, as simulator service/arrival sampling does.
        queue.push(t + 500 + rng.next() % 2_000_000);
    }
    start.elapsed().as_secs_f64() * 1e9 / ops as f64
}

/// Times the calendar queue against the binary-heap reference at one
/// pending-population size, `ops` hold cycles each (best of
/// [`WALL_RUNS`] − 1 attempts, so one scheduler hiccup cannot poison a
/// committed number).
pub fn event_queue_point(pending: u64, ops: u64, seed: u64) -> EventQueuePoint {
    let mut calendar_ns = f64::INFINITY;
    let mut heap_ns = f64::INFINITY;
    for _ in 0..WALL_RUNS.saturating_sub(1).max(1) {
        let mut calendar: CalendarQueue<u32> = CalendarQueue::new();
        calendar_ns = calendar_ns.min(hold_model_ns(&mut calendar, pending, ops, seed));
        let mut heap = HeapQueue::default();
        heap_ns = heap_ns.min(hold_model_ns(&mut heap, pending, ops, seed));
    }
    EventQueuePoint {
        pending,
        calendar_ns,
        heap_ns,
    }
}

/// [`event_queue_point`] across the whole [`EVENT_QUEUE_SWEEP`].
pub fn run_event_queue(ops: u64, seed: u64) -> Vec<EventQueuePoint> {
    EVENT_QUEUE_SWEEP
        .iter()
        .map(|&pending| event_queue_point(pending, ops, seed))
        .collect()
}

/// Far-future-heavy hold model: 7 of 8 reinserts jump ~10³–10⁶× further
/// ahead than the near-term churn of [`hold_model_ns`], so the pending
/// population collapses into a distant cloud the scheduler must wade
/// through — the pattern that punishes a mis-sized calendar ladder with
/// long empty-bucket scans. Returns mean nanoseconds per cycle.
fn hold_model_far_ns<Q: HoldQueue>(queue: &mut Q, pending: u64, ops: u64, seed: u64) -> f64 {
    let mut rng = XorShift(seed | 1);
    for _ in 0..pending {
        queue.push(rng.next() % (pending * 1_000));
    }
    let start = Instant::now();
    for _ in 0..ops {
        let t = queue.pop();
        let jump = if rng.next().is_multiple_of(8) {
            500 + rng.next() % 2_000_000
        } else {
            1_000_000_000 + rng.next() % 4_000_000_000
        };
        queue.push(t + jump);
    }
    start.elapsed().as_secs_f64() * 1e9 / ops as f64
}

/// Times the calendar queue against the binary-heap reference on the
/// far-future-heavy hold model (best of [`WALL_RUNS`] − 1 attempts).
pub fn event_queue_far_point(pending: u64, ops: u64, seed: u64) -> EventQueueFarPoint {
    let mut calendar_ns = f64::INFINITY;
    let mut heap_ns = f64::INFINITY;
    for _ in 0..WALL_RUNS.saturating_sub(1).max(1) {
        let mut calendar: CalendarQueue<u32> = CalendarQueue::new();
        calendar_ns = calendar_ns.min(hold_model_far_ns(&mut calendar, pending, ops, seed));
        let mut heap = HeapQueue::default();
        heap_ns = heap_ns.min(hold_model_far_ns(&mut heap, pending, ops, seed));
    }
    EventQueueFarPoint {
        pending,
        calendar_ns,
        heap_ns,
    }
}

/// A spout adapter stripping inter-emission waits, so the pipeline runs
/// throughput-bound rather than arrival-paced; overrides the batch hook so
/// the engine ships full spout batches through one channel send per edge.
/// Shared with the saturation soak (`crate::soak`).
pub(crate) struct Unthrottled<S>(pub(crate) S);

impl<S: Spout> Spout for Unthrottled<S> {
    fn next(&mut self) -> Option<SpoutEmission> {
        self.0.next().map(|e| SpoutEmission {
            wait: Duration::ZERO,
            ..e
        })
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<drs_runtime::Tuple>) -> Option<Duration> {
        for _ in 0..max {
            let Some(emission) = self.0.next() else {
                return (!out.is_empty()).then_some(Duration::ZERO);
            };
            out.push(emission.tuple);
        }
        Some(Duration::ZERO)
    }
}

/// One throughput run of the live VLD pipeline (synthetic frames → feature
/// extraction → logo matching → aggregation) on the pool runtime, at
/// `workers` pool threads (`None` = the engine default). Returns
/// `(wall_secs, tuples_executed)`.
fn run_vld_live_once(frames: u64, seed: u64, workers: Option<usize>) -> (f64, u64) {
    let topo = VldProfile::paper().topology();
    let ids: Vec<_> = topo.operators().iter().map(|o| o.id()).collect();
    let start = Instant::now();
    let mut builder = RuntimeBuilder::new(topo)
        .spout(
            ids[0],
            Box::new(Unthrottled(FrameSpout::new(1.0e6, seed, Some(frames)))),
        )
        .bolt(ids[1], ExtractBolt::new)
        .bolt(ids[2], move || MatchBolt::new(24, 0.35, seed))
        .bolt(ids[3], || AggregateBolt::new(3))
        .allocation(vec![1, 4, 2, 1]);
    if let Some(workers) = workers {
        builder = builder.workers(workers);
    }
    let engine = builder.start().expect("valid runtime");
    let drained = engine.wait_until_drained(Duration::from_secs(120));
    assert!(
        drained,
        "VLD pipeline failed to drain {frames} frames within 120 s — \
         the runner is too loaded for a valid throughput measurement"
    );
    let wall = start.elapsed().as_secs_f64();
    let snap = engine.shutdown(Duration::from_secs(1));
    let tuples: u64 = snap.operators.iter().map(|o| o.completions).sum();
    (wall, tuples)
}

/// Measures the pool engine's live rebalance pause: a hot two-stage
/// pipeline is repeatedly shrunk and re-grown; each *shrink* pause (the
/// expensive direction — it quiesces the shrinking operator) is measured
/// and the minimum returned, in microseconds.
pub fn pool_rebalance_pause_us(rounds: u32) -> f64 {
    use drs_runtime::operator::{Bolt, Collector};
    use drs_runtime::tuple::Tuple;
    use drs_topology::TopologyBuilder;

    struct Flood;
    impl Spout for Flood {
        fn next(&mut self) -> Option<SpoutEmission> {
            Some(SpoutEmission {
                tuple: Tuple::of(0i64),
                wait: Duration::ZERO,
            })
        }
    }
    struct Busy;
    impl Bolt for Busy {
        fn execute(&mut self, _t: &Tuple, _c: &mut dyn Collector) {
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    let mut b = TopologyBuilder::new();
    let src = b.spout("src");
    let work = b.bolt("work");
    b.edge(src, work).unwrap();
    let mut engine = RuntimeBuilder::new(b.build().unwrap())
        .spout(src, Box::new(Flood))
        .bolt(work, || Busy)
        .allocation(vec![1, 8])
        .workers(4)
        .channel_capacity(1_024)
        .start()
        .expect("valid runtime");
    std::thread::sleep(Duration::from_millis(20));
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let pause = engine.rebalance(vec![1, 3]).expect("valid allocation");
        best = best.min(pause.as_secs_f64() * 1e6);
        engine.rebalance(vec![1, 8]).expect("valid allocation");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = engine.shutdown(Duration::ZERO);
    best
}

/// The thread-per-executor rebalance reference: the old engine's pause was
/// a stop-flag broadcast, a join of every bolt executor thread of the old
/// generation (each parked in a 5 ms `recv_batch_timeout` loop, exactly as
/// the old executor loop was), and a spawn of the new generation. Returns
/// the minimum measured pause across `rounds`, in microseconds, for an
/// `old_threads` → `new_threads` transition.
pub fn thread_join_rebalance_pause_us(old_threads: usize, new_threads: usize, rounds: u32) -> f64 {
    use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn spawn_generation(
        rx: &Receiver<u32>,
        n: usize,
    ) -> (Arc<AtomicBool>, Vec<std::thread::JoinHandle<()>>) {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..n)
            .map(|j| {
                let rx = rx.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // Stagger the park phases uniformly across the 5 ms
                    // quantum: a real engine's executors park at arbitrary
                    // phases, so the join waits for the worst residual
                    // (~one quantum). Without the stagger every thread
                    // parks in lockstep and the measured join collapses to
                    // a phase boundary, flattering the old path.
                    std::thread::sleep(Duration::from_micros(5_000 * j as u64 / n.max(1) as u64));
                    let mut inbox = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        match rx.recv_batch_timeout(&mut inbox, 128, Duration::from_millis(5)) {
                            Ok(_) => inbox.clear(),
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                })
            })
            .collect();
        (stop, handles)
    }

    let (_tx, rx) = bounded::<u32>(16);
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        // Every round measures the same old -> new transition: time the
        // join of a fresh `old_threads` generation plus the spawn of the
        // `new_threads` one, then tear the new generation down untimed.
        let (stop_old, old_handles) = spawn_generation(&rx, old_threads);
        // Let the generation park in its recv loop, as a steady-state
        // engine's executors would be.
        std::thread::sleep(Duration::from_millis(10));
        let start = Instant::now();
        stop_old.store(true, Ordering::Release);
        for h in old_handles {
            let _ = h.join();
        }
        let (stop_new, new_handles) = spawn_generation(&rx, new_threads);
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
        stop_new.store(true, Ordering::Release);
        for h in new_handles {
            let _ = h.join();
        }
    }
    best
}

/// Times both scheduling implementations across the `Kmax` sweep
/// (`iterations` calls each), the event-queue sweep, the two simulator
/// profiles and the live VLD pipeline.
///
/// The network is [`crate::table2::overhead_network`], so the JSON
/// trajectory is comparable like for like with the Table II rows.
pub fn run_perf(iterations: u32, seed: u64) -> PerfReport {
    let net = crate::table2::overhead_network();
    let scheduling = crate::table2::K_MAX_SWEEP
        .iter()
        .map(|&k_max| {
            let heap_us = time_per_call_us(iterations, || {
                std::hint::black_box(assign_processors(&net, k_max).expect("feasible"));
            });
            // Same iteration cap as table2: the reference is ~25x slower
            // per call, so full iterations would add seconds for no
            // precision.
            let reference_us = time_per_call_us(iterations.div_ceil(10), || {
                std::hint::black_box(assign_processors_reference(&net, k_max).expect("feasible"));
            });
            SchedPoint {
                k_max,
                heap_us,
                reference_us,
            }
        })
        .collect();

    let event_queue = run_event_queue(EVENT_QUEUE_HOLD_OPS, seed);
    let event_queue_far = event_queue_far_point(1_000_000, EVENT_QUEUE_HOLD_OPS, seed);

    // The fleet-scale comparison always runs the 100k-shard smoke shape
    // (deliberately independent of `iterations`/`--quick`): baseline and
    // CI must negotiate the same fleet. The absolute µs carry runner bias,
    // but the incremental-vs-scratch ratio — the tentpole claim — is
    // hardware-immune, like the scheduling speedup.
    let scale_config =
        crate::fleet_scale::FleetScaleConfig::named("100k", true, seed).expect("known scale name");
    let scale_run = crate::fleet_scale::run_fleet_scale(&scale_config);
    let fleet_scale = FleetScalePoint {
        shards: scale_config.shards as u64,
        churn_pct: scale_config.churn_fraction * 100.0,
        incremental_us: scale_run.incremental.negotiate_us,
        scratch_us: scale_run.scratch.negotiate_us,
        steady_allocs: scale_run.incremental.steady_allocs,
    };

    // The placement twin: same 100k smoke shape, warm epoch-band
    // placement state vs a from-scratch `placement::plan` per drifting
    // window. Like fleet_scale, the absolute µs carry runner bias but the
    // incremental-vs-scratch ratio is hardware-immune.
    let place_scale_config =
        crate::place_scale::PlaceScaleConfig::named("100k", true, seed).expect("known scale name");
    let place_scale_run = crate::place_scale::run_place_scale(&place_scale_config);
    let placement_scale = PlacementScalePoint {
        shards: place_scale_config.shards as u64,
        churn_pct: place_scale_config.churn_fraction * 100.0,
        incremental_us: place_scale_run.incremental_us,
        scratch_us: place_scale_run.scratch_us,
        steady_allocs: place_scale_run.steady_allocs,
    };

    let mut simulator = Vec::new();
    for (name, secs) in [("vld", 60u64), ("fpd", 10u64)] {
        // Minimum wall time over the runs: identical seeds make every run
        // the same simulation, so the spread is pure scheduler/allocator
        // noise and the minimum is the honest cost.
        let mut best_wall = f64::INFINITY;
        let mut trees = 0;
        for _ in 0..WALL_RUNS {
            let start = Instant::now();
            trees = match name {
                "vld" => {
                    let mut sim = VldProfile::paper().build_simulation([10, 11, 1], seed);
                    sim.run_for(SimDuration::from_secs(secs));
                    sim.total_sojourn_stats().count()
                }
                _ => {
                    let mut sim = FpdProfile::paper().build_simulation([6, 13, 3], seed);
                    sim.run_for(SimDuration::from_secs(secs));
                    sim.total_sojourn_stats().count()
                }
            };
            best_wall = best_wall.min(start.elapsed().as_secs_f64());
        }
        simulator.push(SimPoint {
            name,
            simulated_secs: secs,
            wall_ms: best_wall * 1e3,
            trees_per_wall_sec: trees as f64 / best_wall,
        });
    }

    let mut best_wall = f64::INFINITY;
    let mut tuples = 0;
    for _ in 0..WALL_RUNS {
        let (wall, t) = run_vld_live_once(RUNTIME_FRAMES, seed, None);
        if wall < best_wall {
            best_wall = wall;
            tuples = t;
        }
    }
    let runtime = vec![RuntimePoint {
        pipeline: "vld_live",
        frames: RUNTIME_FRAMES,
        wall_ms: best_wall * 1e3,
        tuples_per_wall_sec: tuples as f64 / best_wall,
    }];

    // The decoupling sweep: same pipeline and logical allocation (Σk = 7),
    // pool sizes far below it.
    let worker_pool = WORKER_POOL_SWEEP
        .iter()
        .map(|&workers| {
            let mut best_wall = f64::INFINITY;
            let mut tuples = 0;
            for _ in 0..WALL_RUNS.saturating_sub(1).max(1) {
                let (wall, t) = run_vld_live_once(RUNTIME_FRAMES, seed, Some(workers));
                if wall < best_wall {
                    best_wall = wall;
                    tuples = t;
                }
            }
            WorkerPoolPoint {
                workers,
                wall_ms: best_wall * 1e3,
                tuples_per_wall_sec: tuples as f64 / best_wall,
            }
        })
        .collect();

    let rebalance = RebalancePoint {
        pool_pause_us: pool_rebalance_pause_us(5),
        thread_join_pause_us: thread_join_rebalance_pause_us(8, 3, 5),
    };

    // The placement comparison always runs the smoke shape (deliberately
    // independent of `iterations`/`--quick`): it is a deterministic
    // virtual-clock scenario, so baseline and CI must measure the same
    // thing.
    let place_run = crate::place::run_place(&crate::place::PlaceBenchConfig::smoke(seed));
    let placement = vec![
        PlacementPoint {
            policy: "solver",
            cross_fraction: place_run.solver.cross_fraction(),
            mean_sojourn_ms: place_run.solver.mean_sojourn_ms,
            cross_cut: place_run.cross_cut(),
        },
        PlacementPoint {
            policy: "round_robin",
            cross_fraction: place_run.round_robin.cross_fraction(),
            mean_sojourn_ms: place_run.round_robin.mean_sojourn_ms,
            cross_cut: 0.0,
        },
    ];

    // The soak, like placement, always runs its smoke shape: same flood,
    // same churn cadence, same channel capacity as CI, so the committed
    // latency percentiles compare like for like.
    let soak_run = crate::soak::run_soak(&crate::soak::SoakConfig::smoke(seed));
    let soak = SoakPoint {
        scenario: crate::soak::SOAK_SCENARIO,
        p50_ms: soak_run.p50_ms,
        p95_ms: soak_run.p95_ms,
        p99_ms: soak_run.p99_ms,
        max_queue_depth: soak_run.max_queue_depth,
        suspensions: soak_run.suspensions,
        tuples_per_sec: soak_run.tuples_per_sec(),
    };

    PerfReport {
        scheduling,
        event_queue,
        event_queue_far,
        fleet_scale,
        placement_scale,
        simulator,
        runtime,
        worker_pool,
        rebalance,
        placement,
        soak,
    }
}

/// Renders the report as ASCII tables.
pub fn render_perf(report: &PerfReport) -> String {
    let sched_rows: Vec<Vec<String>> = report
        .scheduling
        .iter()
        .map(|p| {
            vec![
                p.k_max.to_string(),
                format!("{:.2}", p.heap_us),
                format!("{:.2}", p.reference_us),
                format!("{:.1}x", p.speedup()),
            ]
        })
        .collect();
    let mut out = render_table(
        "Scheduling: heap+incremental vs from-scratch reference (µs per call)",
        &["Kmax", "heap (µs)", "reference (µs)", "speedup"],
        &sched_rows,
    );
    let eq_rows: Vec<Vec<String>> = report
        .event_queue
        .iter()
        .map(|p| {
            vec![
                p.pending.to_string(),
                format!("{:.1}", p.calendar_ns),
                format!("{:.1}", p.heap_ns),
                format!("{:.1}x", p.speedup()),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Event queue: calendar vs binary heap (ns per hold cycle)",
        &["pending", "calendar (ns)", "heap (ns)", "speedup"],
        &eq_rows,
    ));
    out.push_str(&render_table(
        "Event queue, far-future-heavy (ladder scale guard)",
        &["pending", "calendar (ns)", "heap (ns)", "speedup"],
        &[vec![
            report.event_queue_far.pending.to_string(),
            format!("{:.1}", report.event_queue_far.calendar_ns),
            format!("{:.1}", report.event_queue_far.heap_ns),
            format!("{:.1}x", report.event_queue_far.speedup()),
        ]],
    ));
    out.push_str(&render_table(
        "Fleet scale: incremental vs from-scratch negotiation (µs per contended window)",
        &[
            "shards",
            "churn %",
            "incremental (µs)",
            "from-scratch (µs)",
            "speedup",
            "steady allocs",
        ],
        &[vec![
            report.fleet_scale.shards.to_string(),
            format!("{:.0}", report.fleet_scale.churn_pct),
            format!("{:.1}", report.fleet_scale.incremental_us),
            format!("{:.1}", report.fleet_scale.scratch_us),
            format!("{:.1}x", report.fleet_scale.speedup()),
            report
                .fleet_scale
                .steady_allocs
                .map_or_else(|| "n/a".to_owned(), |n| n.to_string()),
        ]],
    ));
    out.push_str(&render_table(
        "Placement scale: incremental vs from-scratch machine assignment (µs per drifting window)",
        &[
            "shards",
            "churn %",
            "incremental (µs)",
            "from-scratch (µs)",
            "speedup",
            "steady allocs",
        ],
        &[vec![
            report.placement_scale.shards.to_string(),
            format!("{:.0}", report.placement_scale.churn_pct),
            format!("{:.1}", report.placement_scale.incremental_us),
            format!("{:.1}", report.placement_scale.scratch_us),
            format!("{:.1}x", report.placement_scale.speedup()),
            report
                .placement_scale
                .steady_allocs
                .map_or_else(|| "n/a".to_owned(), |n| n.to_string()),
        ]],
    ));
    let sim_rows: Vec<Vec<String>> = report
        .simulator
        .iter()
        .map(|p| {
            vec![
                p.name.to_owned(),
                p.simulated_secs.to_string(),
                format!("{:.1}", p.wall_ms),
                format!("{:.0}", p.trees_per_wall_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Simulator throughput (best of runs)",
        &["app", "sim secs", "wall (ms)", "trees/wall-sec"],
        &sim_rows,
    ));
    let rt_rows: Vec<Vec<String>> = report
        .runtime
        .iter()
        .map(|p| {
            vec![
                p.pipeline.to_owned(),
                p.frames.to_string(),
                format!("{:.1}", p.wall_ms),
                format!("{:.0}", p.tuples_per_wall_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Runtime throughput (best of runs)",
        &["pipeline", "frames", "wall (ms)", "tuples/wall-sec"],
        &rt_rows,
    ));
    let wp_rows: Vec<Vec<String>> = report
        .worker_pool
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                format!("{:.1}", p.wall_ms),
                format!("{:.0}", p.tuples_per_wall_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Worker-pool sweep: vld_live at Σk = 7 logical executors",
        &["workers", "wall (ms)", "tuples/wall-sec"],
        &wp_rows,
    ));
    out.push_str(&render_table(
        "Rebalance pause: pool vs thread-per-executor (µs, best of rounds)",
        &["pool (µs)", "thread-join (µs)", "speedup"],
        &[vec![
            format!("{:.1}", report.rebalance.pool_pause_us),
            format!("{:.1}", report.rebalance.thread_join_pause_us),
            format!("{:.1}x", report.rebalance.speedup()),
        ]],
    ));
    let place_rows: Vec<Vec<String>> = report
        .placement
        .iter()
        .map(|p| {
            vec![
                p.policy.to_owned(),
                format!("{:.3}", p.cross_fraction),
                format!("{:.1}", p.mean_sojourn_ms),
                format!("{:.0}%", p.cross_cut * 100.0),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Placement: solver vs round-robin on the contended 8-machine fleet",
        &["policy", "cross fraction", "sojourn (ms)", "cut"],
        &place_rows,
    ));
    out.push_str(&render_table(
        "Soak: saturation latency under continuous rebalances",
        &[
            "scenario",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "max depth",
            "suspensions",
            "tuples/sec",
        ],
        &[vec![
            report.soak.scenario.to_owned(),
            format!("{:.3}", report.soak.p50_ms),
            format!("{:.3}", report.soak.p95_ms),
            format!("{:.3}", report.soak.p99_ms),
            report.soak.max_queue_depth.to_string(),
            report.soak.suspensions.to_string(),
            format!("{:.0}", report.soak.tuples_per_sec),
        ]],
    ));
    out
}

/// Serialises the report as JSON (hand-rolled: the offline build has no
/// serde_json; the schema is flat enough that escaping never arises).
pub fn perf_json(report: &PerfReport) -> String {
    let mut s = String::from("{\n  \"scheduling\": [\n");
    for (i, p) in report.scheduling.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"k_max\": {}, \"heap_us\": {:.4}, \"reference_us\": {:.4}, \"speedup\": {:.2}}}{}\n",
            p.k_max,
            p.heap_us,
            p.reference_us,
            p.speedup(),
            if i + 1 < report.scheduling.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"event_queue\": [\n");
    for (i, p) in report.event_queue.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pending\": {}, \"calendar_ns\": {:.2}, \"heap_ns\": {:.2}, \"eq_speedup\": {:.2}}}{}\n",
            p.pending,
            p.calendar_ns,
            p.heap_ns,
            p.speedup(),
            if i + 1 < report.event_queue.len() { "," } else { "" },
        ));
    }
    // `far_pending` (not `pending`) keeps the line-keyed perfdiff parser
    // from reading this row as a regular event_queue point.
    s.push_str("  ],\n  \"event_queue_far\": [\n");
    s.push_str(&format!(
        "    {{\"far_pending\": {}, \"calendar_ns\": {:.2}, \"heap_ns\": {:.2}, \"far_speedup\": {:.2}}}\n",
        report.event_queue_far.pending,
        report.event_queue_far.calendar_ns,
        report.event_queue_far.heap_ns,
        report.event_queue_far.speedup(),
    ));
    // Emitted only when the allocation probe ran (it always does under
    // the repro binary); `shards` is this section's disjoint line key.
    let steady = report
        .fleet_scale
        .steady_allocs
        .map_or_else(String::new, |n| format!(", \"steady_allocs\": {n}"));
    s.push_str("  ],\n  \"fleet_scale\": [\n");
    s.push_str(&format!(
        "    {{\"shards\": {}, \"churn_pct\": {:.1}, \"incremental_us\": {:.2}, \"scratch_us\": {:.2}, \"fleet_speedup\": {:.2}{}}}\n",
        report.fleet_scale.shards,
        report.fleet_scale.churn_pct,
        report.fleet_scale.incremental_us,
        report.fleet_scale.scratch_us,
        report.fleet_scale.speedup(),
        steady,
    ));
    // `place_shards`/`place_incremental_us` (not `shards`/`incremental_us`)
    // keep the line-keyed perfdiff parser from reading this row as a
    // fleet_scale point.
    let place_steady = report
        .placement_scale
        .steady_allocs
        .map_or_else(String::new, |n| format!(", \"place_steady_allocs\": {n}"));
    s.push_str("  ],\n  \"placement_scale\": [\n");
    s.push_str(&format!(
        "    {{\"place_shards\": {}, \"churn_pct\": {:.1}, \"place_incremental_us\": {:.2}, \"place_scratch_us\": {:.2}, \"place_speedup\": {:.2}{}}}\n",
        report.placement_scale.shards,
        report.placement_scale.churn_pct,
        report.placement_scale.incremental_us,
        report.placement_scale.scratch_us,
        report.placement_scale.speedup(),
        place_steady,
    ));
    s.push_str("  ],\n  \"simulator\": [\n");
    for (i, p) in report.simulator.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"app\": \"{}\", \"simulated_secs\": {}, \"wall_ms\": {:.2}, \"trees_per_wall_sec\": {:.1}}}{}\n",
            p.name,
            p.simulated_secs,
            p.wall_ms,
            p.trees_per_wall_sec,
            if i + 1 < report.simulator.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"runtime\": [\n");
    for (i, p) in report.runtime.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pipeline\": \"{}\", \"frames\": {}, \"wall_ms\": {:.2}, \"tuples_per_wall_sec\": {:.1}}}{}\n",
            p.pipeline,
            p.frames,
            p.wall_ms,
            p.tuples_per_wall_sec,
            if i + 1 < report.runtime.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"worker_pool\": [\n");
    for (i, p) in report.worker_pool.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.2}, \"tuples_per_wall_sec\": {:.1}}}{}\n",
            p.workers,
            p.wall_ms,
            p.tuples_per_wall_sec,
            if i + 1 < report.worker_pool.len() {
                ","
            } else {
                ""
            },
        ));
    }
    s.push_str("  ],\n  \"rebalance\": [\n");
    s.push_str(&format!(
        "    {{\"path\": \"pool\", \"pause_us\": {:.2}, \"pause_speedup\": {:.2}}},\n",
        report.rebalance.pool_pause_us,
        report.rebalance.speedup(),
    ));
    s.push_str(&format!(
        "    {{\"path\": \"thread_join\", \"pause_us\": {:.2}}}\n",
        report.rebalance.thread_join_pause_us,
    ));
    s.push_str("  ],\n  \"placement\": [\n");
    for (i, p) in report.placement.iter().enumerate() {
        // The cut is only meaningful relative to the baseline row, so it
        // is emitted (and gated) on the solver row alone.
        let cut = if p.policy == "solver" {
            format!(", \"cross_cut\": {:.4}", p.cross_cut)
        } else {
            String::new()
        };
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"cross_fraction\": {:.4}, \"mean_sojourn_ms\": {:.2}{}}}{}\n",
            p.policy,
            p.cross_fraction,
            p.mean_sojourn_ms,
            cut,
            if i + 1 < report.placement.len() { "," } else { "" },
        ));
    }
    // The soak line's keys are disjoint from every other section's
    // (no `workers`/`tuples_per_wall_sec`/`pipeline` here), so the
    // line-keyed perfdiff parser can never mistake it for another row.
    s.push_str("  ],\n  \"soak\": [\n");
    s.push_str(&format!(
        "    {{\"scenario\": \"{}\", \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_queue_depth\": {}, \"suspensions\": {}, \"soak_tuples_per_sec\": {:.1}}}\n",
        report.soak.scenario,
        report.soak.p50_ms,
        report.soak.p95_ms,
        report.soak.p99_ms,
        report.soak.max_queue_depth,
        report.soak.suspensions,
        report.soak.tuples_per_sec,
    ));
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_path_beats_reference_at_large_kmax() {
        // Times only the Kmax = 192 pair (not the full run_perf sweep with
        // its simulator runs — that is repro's job). Wall-clock assertion:
        // measured ≈ 25x in release and ≈ 20x in debug, so the 5x
        // acceptance bar has a wide margin — but a loaded runner can still
        // produce an outlier, so take the best of a few attempts.
        let net = crate::table2::overhead_network();
        let best = (0..3)
            .map(|_| {
                let heap_us = time_per_call_us(300, || {
                    std::hint::black_box(assign_processors(&net, 192).expect("feasible"));
                });
                let reference_us = time_per_call_us(30, || {
                    std::hint::black_box(assign_processors_reference(&net, 192).expect("feasible"));
                });
                SchedPoint {
                    k_max: 192,
                    heap_us,
                    reference_us,
                }
            })
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("three attempts");
        assert!(
            best.speedup() >= 5.0,
            "speedup at Kmax=192 only {:.1}x ({:.2}µs vs {:.2}µs)",
            best.speedup(),
            best.heap_us,
            best.reference_us
        );
    }

    #[test]
    fn calendar_queue_beats_heap_at_large_populations() {
        // The tentpole claim, as a wall-clock assertion: at 10^5+ pending
        // events the O(1) calendar queue must beat the O(log m) heap on
        // the hold model. Best of three attempts to shrug off runner
        // noise; the margin is ~2-4x in release, so >1x is a wide bar.
        let best = (0..3)
            .map(|_| event_queue_point(100_000, 50_000, 7))
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("three attempts");
        assert!(
            best.speedup() > 1.0,
            "calendar {:.1} ns/op vs heap {:.1} ns/op at 10^5 pending",
            best.calendar_ns,
            best.heap_ns
        );
    }

    fn report_fixture() -> PerfReport {
        PerfReport {
            scheduling: vec![SchedPoint {
                k_max: 12,
                heap_us: 1.0,
                reference_us: 5.0,
            }],
            event_queue: vec![EventQueuePoint {
                pending: 100_000,
                calendar_ns: 50.0,
                heap_ns: 150.0,
            }],
            event_queue_far: EventQueueFarPoint {
                pending: 1_000_000,
                calendar_ns: 900.0,
                heap_ns: 2_700.0,
            },
            fleet_scale: FleetScalePoint {
                shards: 100_000,
                churn_pct: 5.0,
                incremental_us: 60_000.0,
                scratch_us: 1_000_000.0,
                steady_allocs: Some(0),
            },
            placement_scale: PlacementScalePoint {
                shards: 100_000,
                churn_pct: 5.0,
                incremental_us: 30_000.0,
                scratch_us: 600_000.0,
                steady_allocs: Some(0),
            },
            simulator: vec![SimPoint {
                name: "vld",
                simulated_secs: 60,
                wall_ms: 10.0,
                trees_per_wall_sec: 100.0,
            }],
            runtime: vec![RuntimePoint {
                pipeline: "vld_live",
                frames: 4_000,
                wall_ms: 60.0,
                tuples_per_wall_sec: 1.0e6,
            }],
            worker_pool: vec![WorkerPoolPoint {
                workers: 2,
                wall_ms: 70.0,
                tuples_per_wall_sec: 0.9e6,
            }],
            rebalance: RebalancePoint {
                pool_pause_us: 200.0,
                thread_join_pause_us: 6_000.0,
            },
            placement: vec![
                PlacementPoint {
                    policy: "solver",
                    cross_fraction: 0.37,
                    mean_sojourn_ms: 180.0,
                    cross_cut: 0.5,
                },
                PlacementPoint {
                    policy: "round_robin",
                    cross_fraction: 0.74,
                    mean_sojourn_ms: 195.0,
                    cross_cut: 0.0,
                },
            ],
            soak: SoakPoint {
                scenario: "vld_churn",
                p50_ms: 1.5,
                p95_ms: 4.0,
                p99_ms: 9.0,
                max_queue_depth: 128,
                suspensions: 5_000,
                tuples_per_sec: 0.5e6,
            },
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = perf_json(&report_fixture());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"k_max\": 12"));
        assert!(json.contains("\"speedup\": 5.00"));
        assert!(json.contains("\"pending\": 100000"));
        assert!(json.contains("\"eq_speedup\": 3.00"));
        assert!(json.contains("\"far_pending\": 1000000"));
        assert!(json.contains("\"far_speedup\": 3.00"));
        assert!(json.contains("\"shards\": 100000"));
        assert!(json.contains("\"churn_pct\": 5.0"));
        assert!(json.contains("\"fleet_speedup\": 16.67"));
        assert!(json.contains("\"steady_allocs\": 0"));
        assert!(json.contains("\"place_shards\": 100000"));
        assert!(json.contains("\"place_incremental_us\": 30000.00"));
        assert!(json.contains("\"place_speedup\": 20.00"));
        assert!(json.contains("\"place_steady_allocs\": 0"));
        assert!(json.contains("\"app\": \"vld\""));
        assert!(json.contains("\"pipeline\": \"vld_live\""));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains("\"path\": \"pool\""));
        assert!(json.contains("\"pause_speedup\": 30.00"));
        assert!(json.contains("\"path\": \"thread_join\""));
        assert!(json.contains("\"policy\": \"solver\""));
        assert!(json.contains("\"cross_cut\": 0.5000"));
        assert!(json.contains("\"policy\": \"round_robin\""));
        // The baseline row carries no cut: it IS the reference.
        assert_eq!(json.matches("cross_cut").count(), 1);
        assert!(json.contains("\"scenario\": \"vld_churn\""));
        assert!(json.contains("\"p50_ms\": 1.500"));
        assert!(json.contains("\"p99_ms\": 9.000"));
        assert!(json.contains("\"max_queue_depth\": 128"));
        assert!(json.contains("\"suspensions\": 5000"));
        assert!(json.contains("\"soak_tuples_per_sec\": 500000.0"));
        assert!(!json.contains("},\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn render_includes_all_sections() {
        let s = render_perf(&report_fixture());
        assert!(s.contains("speedup"));
        assert!(s.contains("trees/wall-sec"));
        assert!(s.contains("calendar (ns)"));
        assert!(s.contains("far-future-heavy"));
        assert!(s.contains("incremental vs from-scratch negotiation"));
        assert!(s.contains("incremental vs from-scratch machine assignment"));
        assert!(s.contains("steady allocs"));
        assert!(s.contains("tuples/wall-sec"));
        assert!(s.contains("Worker-pool sweep"));
        assert!(s.contains("thread-join (µs)"));
        assert!(s.contains("Placement: solver vs round-robin"));
        assert!(s.contains("cross fraction"));
        assert!(s.contains("Soak: saturation latency"));
        assert!(s.contains("p99 (ms)"));
    }

    #[test]
    fn pool_rebalance_pause_beats_thread_join() {
        // The tentpole claim as a wall-clock assertion: a live shrink on
        // the pool (weight write + envelope-boundary quiesce) must be
        // cheaper than stopping and re-spawning a thread generation parked
        // in 5 ms recv loops. Best of three attempts; the measured margin
        // is ~10-30x, so >1x is a wide bar.
        let best = (0..3)
            .map(|_| RebalancePoint {
                pool_pause_us: pool_rebalance_pause_us(3),
                thread_join_pause_us: thread_join_rebalance_pause_us(8, 3, 3),
            })
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("three attempts");
        assert!(
            best.speedup() > 1.0,
            "pool pause {:.1}µs vs thread-join {:.1}µs",
            best.pool_pause_us,
            best.thread_join_pause_us
        );
    }
}
