//! Perf trajectory: heap+incremental scheduling vs the retained reference
//! implementation, and end-to-end simulator throughput — rendered as a table
//! and exported as machine-readable `BENCH_PERF.json` so successive PRs can
//! compare like for like.

use crate::report::render_table;
use crate::timing::time_per_call_us;
use drs_apps::{FpdProfile, VldProfile};
use drs_core::scheduler::{assign_processors, assign_processors_reference};
use drs_sim::SimDuration;
use std::time::Instant;

/// Scheduling comparison at one `Kmax`.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedPoint {
    /// The processor budget.
    pub k_max: u32,
    /// Mean microseconds per heap+incremental `assign_processors` call.
    pub heap_us: f64,
    /// Mean microseconds per from-scratch reference call.
    pub reference_us: f64,
}

impl SchedPoint {
    /// `reference / heap` — how many times faster the production path is.
    pub fn speedup(&self) -> f64 {
        self.reference_us / self.heap_us
    }
}

/// Simulator throughput for one workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoint {
    /// Workload name (`vld` / `fpd`).
    pub name: &'static str,
    /// Simulated seconds driven per run.
    pub simulated_secs: u64,
    /// Wall-clock milliseconds the run took.
    pub wall_ms: f64,
    /// Fully processed tuple trees per wall-clock second.
    pub trees_per_wall_sec: f64,
}

/// The whole perf snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Scheduling sweep over the Table II `Kmax` values.
    pub scheduling: Vec<SchedPoint>,
    /// Simulator end-to-end runs.
    pub simulator: Vec<SimPoint>,
}

/// Times both scheduling implementations across the `Kmax` sweep
/// (`iterations` calls each) and the two simulator profiles.
///
/// The network is [`crate::table2::overhead_network`], so the JSON
/// trajectory is comparable like for like with the Table II rows.
pub fn run_perf(iterations: u32, seed: u64) -> PerfReport {
    let net = crate::table2::overhead_network();
    let scheduling = crate::table2::K_MAX_SWEEP
        .iter()
        .map(|&k_max| {
            let heap_us = time_per_call_us(iterations, || {
                std::hint::black_box(assign_processors(&net, k_max).expect("feasible"));
            });
            // Same iteration cap as table2: the reference is ~25x slower
            // per call, so full iterations would add seconds for no
            // precision.
            let reference_us = time_per_call_us(iterations.div_ceil(10), || {
                std::hint::black_box(assign_processors_reference(&net, k_max).expect("feasible"));
            });
            SchedPoint {
                k_max,
                heap_us,
                reference_us,
            }
        })
        .collect();

    let mut simulator = Vec::new();
    for (name, secs) in [("vld", 60u64), ("fpd", 10u64)] {
        let start = Instant::now();
        let trees = match name {
            "vld" => {
                let mut sim = VldProfile::paper().build_simulation([10, 11, 1], seed);
                sim.run_for(SimDuration::from_secs(secs));
                sim.total_sojourn_stats().count()
            }
            _ => {
                let mut sim = FpdProfile::paper().build_simulation([6, 13, 3], seed);
                sim.run_for(SimDuration::from_secs(secs));
                sim.total_sojourn_stats().count()
            }
        };
        let wall = start.elapsed().as_secs_f64();
        simulator.push(SimPoint {
            name,
            simulated_secs: secs,
            wall_ms: wall * 1e3,
            trees_per_wall_sec: trees as f64 / wall,
        });
    }

    PerfReport {
        scheduling,
        simulator,
    }
}

/// Renders the report as ASCII tables.
pub fn render_perf(report: &PerfReport) -> String {
    let sched_rows: Vec<Vec<String>> = report
        .scheduling
        .iter()
        .map(|p| {
            vec![
                p.k_max.to_string(),
                format!("{:.2}", p.heap_us),
                format!("{:.2}", p.reference_us),
                format!("{:.1}x", p.speedup()),
            ]
        })
        .collect();
    let mut out = render_table(
        "Scheduling: heap+incremental vs from-scratch reference (µs per call)",
        &["Kmax", "heap (µs)", "reference (µs)", "speedup"],
        &sched_rows,
    );
    let sim_rows: Vec<Vec<String>> = report
        .simulator
        .iter()
        .map(|p| {
            vec![
                p.name.to_owned(),
                p.simulated_secs.to_string(),
                format!("{:.1}", p.wall_ms),
                format!("{:.0}", p.trees_per_wall_sec),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Simulator throughput",
        &["app", "sim secs", "wall (ms)", "trees/wall-sec"],
        &sim_rows,
    ));
    out
}

/// Serialises the report as JSON (hand-rolled: the offline build has no
/// serde_json; the schema is flat enough that escaping never arises).
pub fn perf_json(report: &PerfReport) -> String {
    let mut s = String::from("{\n  \"scheduling\": [\n");
    for (i, p) in report.scheduling.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"k_max\": {}, \"heap_us\": {:.4}, \"reference_us\": {:.4}, \"speedup\": {:.2}}}{}\n",
            p.k_max,
            p.heap_us,
            p.reference_us,
            p.speedup(),
            if i + 1 < report.scheduling.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"simulator\": [\n");
    for (i, p) in report.simulator.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"app\": \"{}\", \"simulated_secs\": {}, \"wall_ms\": {:.2}, \"trees_per_wall_sec\": {:.1}}}{}\n",
            p.name,
            p.simulated_secs,
            p.wall_ms,
            p.trees_per_wall_sec,
            if i + 1 < report.simulator.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_path_beats_reference_at_large_kmax() {
        // Times only the Kmax = 192 pair (not the full run_perf sweep with
        // its simulator runs — that is repro's job). Wall-clock assertion:
        // measured ≈ 25x in release and ≈ 20x in debug, so the 5x
        // acceptance bar has a wide margin — but a loaded runner can still
        // produce an outlier, so take the best of a few attempts.
        let net = crate::table2::overhead_network();
        let best = (0..3)
            .map(|_| {
                let heap_us = time_per_call_us(300, || {
                    std::hint::black_box(assign_processors(&net, 192).expect("feasible"));
                });
                let reference_us = time_per_call_us(30, || {
                    std::hint::black_box(assign_processors_reference(&net, 192).expect("feasible"));
                });
                SchedPoint {
                    k_max: 192,
                    heap_us,
                    reference_us,
                }
            })
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("three attempts");
        assert!(
            best.speedup() >= 5.0,
            "speedup at Kmax=192 only {:.1}x ({:.2}µs vs {:.2}µs)",
            best.speedup(),
            best.heap_us,
            best.reference_us
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = PerfReport {
            scheduling: vec![SchedPoint {
                k_max: 12,
                heap_us: 1.0,
                reference_us: 5.0,
            }],
            simulator: vec![SimPoint {
                name: "vld",
                simulated_secs: 60,
                wall_ms: 10.0,
                trees_per_wall_sec: 100.0,
            }],
        };
        let json = perf_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"k_max\": 12"));
        assert!(json.contains("\"speedup\": 5.00"));
        assert!(json.contains("\"app\": \"vld\""));
        assert!(!json.contains("},\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn render_includes_speedup_column() {
        let report = run_perf(50, 1);
        let s = render_perf(&report);
        assert!(s.contains("speedup"));
        assert!(s.contains("trees/wall-sec"));
    }
}
