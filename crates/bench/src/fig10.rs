//! Fig. 10: Tmax-driven resource scaling (Program 6 end to end).
//!
//! Two VLD experiments mirror the paper's ExpA/ExpB:
//!
//! * **ExpA** — a tight latency target with an under-provisioned start
//!   (17 executors on 4 machines, allocation `(8:8:1)`): once re-balancing
//!   is enabled DRS adds a machine (costly pause) and grows to the
//!   22-executor optimum, bringing the sojourn under `Tmax`.
//! * **ExpB** — a loose target starting from the 22-executor optimum on 5
//!   machines: DRS sheds a machine (cheap pause) and shrinks to 17
//!   executors while staying under `Tmax`.
//!
//! The targets are scaled to this reproduction's latency regime (our
//! synthetic SIFT cost model sits a small constant factor above the paper's
//! testbed); EXPERIMENTS.md records the mapping.

use crate::report::{fmt_allocation, render_table};
use drs_apps::VldProfile;
use drs_core::config::DrsConfig;
use drs_core::controller::DrsController;
use drs_core::driver::DrsDriver;
use drs_core::negotiator::{MachinePool, MachinePoolConfig};

/// Number of measurement windows (paper: 27 minutes).
pub const WINDOWS: u64 = 27;
/// Window at which re-balancing is enabled (paper: minute 14).
pub const ENABLE_AT: u64 = 13;
/// ExpA's latency target (seconds) — tight: only ~22 executors meet it
/// (the paper's 500 ms, scaled to this calibration's latency regime).
pub const T_MAX_A: f64 = 1.4;
/// ExpB's latency target (seconds) — loose: ~18 executors on 4 machines
/// suffice, robustly between the 18-executor regime (E ≈ 2 s) and the
/// near-critical 17-executor regime (E ≈ 8–50 s, hypersensitive) so the
/// controller settles (the paper's 1000 ms, scaled).
pub const T_MAX_B: f64 = 5.0;

/// Which Fig. 10 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Tight target, under-provisioned start: scale up.
    ExpA,
    /// Loose target, over-provisioned start: scale down.
    ExpB,
}

impl Experiment {
    /// The experiment's latency target in seconds.
    pub fn t_max(self) -> f64 {
        match self {
            Experiment::ExpA => T_MAX_A,
            Experiment::ExpB => T_MAX_B,
        }
    }

    /// Initial bolt allocation and machine count.
    pub fn initial(self) -> ([u32; 3], u32) {
        match self {
            Experiment::ExpA => ([8, 8, 1], 4),   // Kmax = 17
            Experiment::ExpB => ([10, 11, 1], 5), // Kmax = 22
        }
    }
}

/// One window of a Fig. 10 timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Point {
    /// Window index (0-based).
    pub window: u64,
    /// Measured mean sojourn (milliseconds; `NaN` when nothing completed).
    pub sojourn_ms: f64,
    /// Bolt allocation at window end.
    pub allocation: Vec<u32>,
    /// Machines active at window end.
    pub machines: u32,
    /// Whether a re-balance fired in this window.
    pub rebalanced: bool,
}

/// A full Fig. 10 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Run {
    /// Which experiment.
    pub experiment: Experiment,
    /// Timeline points, one per window.
    pub points: Vec<Fig10Point>,
}

/// Runs one experiment.
pub fn run_fig10(experiment: Experiment, seed: u64, window_secs: u64) -> Fig10Run {
    let (initial, machines) = experiment.initial();
    let profile = VldProfile::paper();
    let sim = profile.build_simulation(initial, seed);
    let pool = MachinePool::new(MachinePoolConfig::default(), machines).expect("valid pool");
    let mut config = DrsConfig::min_resources(experiment.t_max());
    // Machine changes pollute several minutes of sojourn measurements (the
    // pause is carried by every queued tuple); hold three windows after
    // each action, as an operator would.
    config.cooldown_windows = 3;
    // Strong smoothing: transient backlogs distort single-window rates
    // (an upstream surge starves downstream arrival counts); α = 0.8 keeps
    // ~5 windows of memory so the fitted rates reflect steady demand
    // (paper App. B's α-weighted averaging, tuned for scaling decisions).
    config.smoothing = drs_core::measurer::Smoothing::Alpha { alpha: 0.8 };
    let mut drs = DrsController::new(config, initial.to_vec(), pool).expect("valid controller");
    drs.set_active(false);
    let mut driver = DrsDriver::new(sim, drs, window_secs as f64).expect("wiring matches");
    driver.run_windows(ENABLE_AT);
    driver.controller_mut().set_active(true);
    driver.run_windows(WINDOWS - ENABLE_AT);

    // Machines only change at rebalances; reconstruct per-window counts by
    // replaying the plan log.
    let mut points = Vec::with_capacity(WINDOWS as usize);
    let mut current_machines = experiment.initial().1;
    for (i, p) in driver.timeline().iter().enumerate() {
        if p.rebalanced {
            current_machines = machines_after_window(driver.controller(), i, current_machines);
        }
        points.push(Fig10Point {
            window: p.window,
            sojourn_ms: p.mean_sojourn_ms.unwrap_or(f64::NAN),
            allocation: p.allocation.clone(),
            machines: current_machines,
            rebalanced: p.rebalanced,
        });
    }
    Fig10Run { experiment, points }
}

fn machines_after_window(controller: &DrsController, window: usize, current: u32) -> u32 {
    // The controller's log entry for this window records the applied plan.
    controller
        .log()
        .get(window)
        .and_then(|e| match &e.action {
            drs_core::controller::ControlAction::Rebalance { plan, .. } => {
                plan.map(|p| p.target_machines)
            }
            drs_core::controller::ControlAction::None => None,
        })
        .unwrap_or(current)
}

impl Fig10Run {
    /// Final total bolt executors.
    pub fn final_executors(&self) -> u32 {
        self.points
            .last()
            .expect("non-empty run")
            .allocation
            .iter()
            .sum()
    }

    /// Final machine count.
    pub fn final_machines(&self) -> u32 {
        self.points.last().expect("non-empty run").machines
    }

    /// Renders the timeline.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.window + 1),
                    if p.sojourn_ms.is_nan() {
                        "-".to_owned()
                    } else {
                        format!("{:.0}", p.sojourn_ms)
                    },
                    fmt_allocation(&p.allocation),
                    p.machines.to_string(),
                    if p.rebalanced {
                        "R".to_owned()
                    } else {
                        String::new()
                    },
                ]
            })
            .collect();
        let (initial, machines) = self.experiment.initial();
        render_table(
            &format!(
                "Fig. 10 — {:?} (VLD): Tmax = {:.0} ms, initial {} on {} machines",
                self.experiment,
                self.experiment.t_max() * 1e3,
                fmt_allocation(&initial),
                machines
            ),
            &["minute", "avg sojourn (ms)", "allocation", "machines", ""],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expa_scales_up_and_meets_target() {
        let run = run_fig10(Experiment::ExpA, 43, 30);
        // Started at 17 executors / 4 machines…
        assert_eq!(run.points[0].allocation.iter().sum::<u32>(), 17);
        assert_eq!(run.points[0].machines, 4);
        // …ends beyond one machine's worth (> 20 executors forces the 5th
        // machine; the exact count is 21-23 depending on measured rates,
        // the paper lands on 22).
        assert!(
            run.final_executors() > 20,
            "final executors {}",
            run.final_executors()
        );
        assert!(run.final_machines() > 4);
        // Sojourn before enabling violates Tmax; at the end it meets it.
        let pre = run.points[ENABLE_AT as usize - 1].sojourn_ms;
        assert!(pre > T_MAX_A * 1e3, "pre-rebalance sojourn {pre} ms");
        let last = run.points.last().unwrap().sojourn_ms;
        assert!(
            last < T_MAX_A * 1e3 * 1.2,
            "final sojourn {last} ms should approach the target"
        );
    }

    #[test]
    fn expb_scales_down_and_stays_under_target() {
        let run = run_fig10(Experiment::ExpB, 47, 30);
        assert_eq!(run.points[0].allocation.iter().sum::<u32>(), 22);
        assert_eq!(run.points[0].machines, 5);
        assert!(
            run.final_executors() < 22,
            "final executors {}",
            run.final_executors()
        );
        assert!(run.final_machines() < 5);
    }

    #[test]
    fn render_shows_machine_changes() {
        let run = run_fig10(Experiment::ExpB, 53, 20);
        let s = run.render();
        assert!(s.contains("machines"));
        assert!(s.contains("ExpB"));
    }
}
