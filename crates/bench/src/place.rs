//! `repro place`: machine-granular placement on a contended pool.
//!
//! The same mixed VLD+FPD fleet as `repro fleet` — two VLD and two FPD
//! shards negotiating one processor budget — now shares an 8-machine pool
//! whose per-machine capacity holds only a slice of any one shard. Two
//! runs with identical seeds and identical executor allocations compare
//! placement policies end to end:
//!
//! * **solver** — the fleet driver plans one pool-wide
//!   [`drs_core::placement::plan`] per window (greedy-by-resource-distance
//!   with the exhaustive oracle on small instances), actuated through
//!   `CspBackend::apply_placement` so each shard simulator draws its
//!   machine-crossing edges from the solved executor split;
//! * **round_robin** — the capacity-oblivious baseline: every operator's
//!   executors are dealt across the machines in index order, the way a
//!   placement-unaware scheduler would.
//!
//! Every tuple that crosses a machine boundary is charged the configured
//! network delay, so the policies separate on two measurements: the
//! cross-machine tuple fraction and the end-to-end sojourn. Both runs are
//! deterministic (virtual clocks, seeded RNGs), and the solver's summary
//! feeds the `placement` section of `BENCH_PERF.json` so `repro perfdiff`
//! gates the cut across PRs.

use crate::fleet::{FPD_T_MAX, VLD_T_MAX};
use crate::report::render_table;
use drs_apps::{FpdProfile, VldProfile};
use drs_core::driver::CspBackend;
use drs_core::fleet::{FleetDriverConfig, FleetShardSpec, ShardPlacementInfo};
use drs_core::placement::{self, MachinePool, OperatorLoad, PlacementRequest};
use drs_sim::fleet::FleetCoordinator;
use drs_sim::SimDuration;
use drs_topology::ResourceProfile;

/// The `repro place` run shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceBenchConfig {
    /// Machines in the shared pool.
    pub machines: usize,
    /// Uniform per-machine capacity (in executor-units on every resource
    /// axis; one executor of any operator costs 1.0). Deliberately far
    /// below any shard's executor count, so no shard fits on one machine
    /// and the solver has to split under contention.
    pub machine_capacity: f64,
    /// Fleet measurement windows to run.
    pub windows: u64,
    /// Window length in (virtual) seconds.
    pub window_secs: f64,
    /// The global processor budget shared by the four topologies.
    pub k_max: u32,
    /// Base RNG seed (each shard offsets it).
    pub seed: u64,
    /// Network delay charged to every tuple crossing machines, in
    /// milliseconds.
    pub cross_delay_ms: f64,
}

impl Default for PlaceBenchConfig {
    fn default() -> Self {
        PlaceBenchConfig {
            machines: 8,
            machine_capacity: 12.0,
            windows: 10,
            window_secs: 30.0,
            k_max: 64,
            seed: 2015,
            cross_delay_ms: 5.0,
        }
    }
}

impl PlaceBenchConfig {
    /// The CI smoke variant: short windows, few of them. Also the shape
    /// `repro perf` embeds in `BENCH_PERF.json` — deliberately independent
    /// of `--quick`, so the committed baseline and the CI smoke run
    /// measure the same deterministic scenario.
    pub fn smoke(seed: u64) -> Self {
        PlaceBenchConfig {
            windows: 6,
            window_secs: 10.0,
            seed,
            ..Default::default()
        }
    }
}

/// One policy's end-to-end measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacePolicyRun {
    /// Tuples that crossed a machine boundary, summed over the shards.
    pub cross_tuples: u64,
    /// Tuples sent over any edge, summed over the shards.
    pub edge_tuples: u64,
    /// Completion-weighted mean end-to-end sojourn across the fleet (ms).
    pub mean_sojourn_ms: f64,
    /// Tuple trees completed, summed over the shards.
    pub completed: u64,
    /// Per-shard cross-machine fraction, shard index order.
    pub shard_cross: Vec<f64>,
    /// Final model-operator allocation of each shard, shard index order.
    pub final_allocations: Vec<Vec<u32>>,
}

impl PlacePolicyRun {
    /// Fleet-wide fraction of edge tuples that crossed machines.
    pub fn cross_fraction(&self) -> f64 {
        if self.edge_tuples == 0 {
            0.0
        } else {
            self.cross_tuples as f64 / self.edge_tuples as f64
        }
    }
}

/// A finished placement comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceRun {
    /// Shard names, in shard index order.
    pub names: Vec<String>,
    /// The solver run.
    pub solver: PlacePolicyRun,
    /// The round-robin baseline.
    pub round_robin: PlacePolicyRun,
    /// Highest per-machine load (any resource axis) under the solver's
    /// final fleet-wide placement.
    pub peak_machine_load: f64,
    /// The pool's uniform per-machine capacity, for reference.
    pub machine_capacity: f64,
}

impl PlaceRun {
    /// Relative cut of the cross-machine fraction: `1 − solver/baseline`.
    pub fn cross_cut(&self) -> f64 {
        let baseline = self.round_robin.cross_fraction();
        if baseline <= 0.0 {
            0.0
        } else {
            1.0 - self.solver.cross_fraction() / baseline
        }
    }
}

/// Per-executor cost and tuple flow of the VLD model operators (sift →
/// matcher → aggregator): every executor costs one unit on every axis, and
/// each edge carries the upstream operator's measured arrival rate scaled
/// by the paper topology's gain — 30 features per frame on the dominant
/// sift→matcher edge, 5% selectivity into the aggregator.
fn vld_placement_info(profile: &VldProfile) -> ShardPlacementInfo {
    ShardPlacementInfo {
        profiles: vec![ResourceProfile::uniform(1.0); 3],
        edges: vec![
            (0, 1, profile.features_per_frame),
            (1, 2, profile.match_selectivity),
        ],
    }
}

/// Per-executor cost and tuple flow of the FPD model operators (generator
/// → detector → reporter, with the detector's notify self-loop): the
/// generator fans 8 candidates per window event into the detector, which
/// is where the placement traffic lives.
fn fpd_placement_info(profile: &FpdProfile) -> ShardPlacementInfo {
    ShardPlacementInfo {
        profiles: vec![ResourceProfile::uniform(1.0); 3],
        edges: vec![
            (0, 1, profile.candidates_per_event),
            (1, 1, profile.notify_probability),
            (1, 2, profile.report_probability),
        ],
    }
}

/// Builds the four-topology fleet with placement metadata and the
/// cross-machine delay installed on every shard simulator.
fn build_fleet(config: &PlaceBenchConfig) -> FleetCoordinator {
    let vld = VldProfile::paper();
    let fpd = FpdProfile::paper();
    let mut driver_config = FleetDriverConfig::new(config.k_max);
    driver_config.window_secs = config.window_secs;
    let mut fleet = FleetCoordinator::new(
        driver_config,
        vec![
            FleetShardSpec::new(
                "vld-a",
                VLD_T_MAX,
                vld.build_simulation([8, 8, 1], config.seed),
            )
            .with_placement(vld_placement_info(&vld)),
            FleetShardSpec::new(
                "vld-b",
                VLD_T_MAX,
                vld.build_simulation([8, 8, 1], config.seed + 1),
            )
            .with_placement(vld_placement_info(&vld)),
            FleetShardSpec::new(
                "fpd-a",
                FPD_T_MAX,
                fpd.build_simulation([5, 12, 2], config.seed + 2),
            )
            .with_placement(fpd_placement_info(&fpd)),
            FleetShardSpec::new(
                "fpd-b",
                FPD_T_MAX,
                fpd.build_simulation([5, 12, 2], config.seed + 3),
            )
            .with_placement(fpd_placement_info(&fpd)),
        ],
    )
    .expect("valid fleet");
    let delay = SimDuration::from_secs_f64(config.cross_delay_ms / 1e3);
    for i in 0..fleet.shard_count() {
        fleet.shard_mut(i).set_cross_machine_delay(delay);
    }
    fleet
}

/// The shared pool both policies place onto.
fn pool(config: &PlaceBenchConfig) -> MachinePool {
    MachinePool::uniform(
        config.machines,
        ResourceProfile::uniform(config.machine_capacity),
    )
    .expect("valid pool")
}

/// Deals `allocation` across the pool in machine index order — the
/// capacity-oblivious baseline — and installs it on shard `i`.
fn apply_round_robin(fleet: &mut FleetCoordinator, i: usize, pool: &MachinePool) {
    let allocation = fleet.shard(i).current_allocation();
    let request = PlacementRequest {
        operators: allocation
            .iter()
            .map(|&k| OperatorLoad {
                executors: k,
                profile: ResourceProfile::uniform(1.0),
            })
            .collect(),
        edges: Vec::new(),
    };
    let placed = placement::round_robin(pool, &request).expect("round robin fits one shard");
    fleet
        .shard_mut(i)
        .apply_placement(&placed)
        .expect("placement matches the shard topology");
}

/// Runs one policy. `solver = true` installs the machine pool on the fleet
/// driver (placement planned and actuated inside the window loop);
/// `solver = false` deals every shard round-robin after each window
/// instead. Returns the measurements plus, for the solver, the final
/// fleet-wide per-machine load peak.
fn run_policy(config: &PlaceBenchConfig, solver: bool) -> (PlacePolicyRun, f64) {
    let mut fleet = build_fleet(config);
    let shared = pool(config);
    if solver {
        fleet.driver_mut().set_machine_pool(shared.clone());
    }
    for _ in 0..config.windows {
        fleet.step();
        if !solver {
            for i in 0..fleet.shard_count() {
                apply_round_robin(&mut fleet, i, &shared);
            }
        }
    }

    let mut run = PlacePolicyRun {
        cross_tuples: 0,
        edge_tuples: 0,
        mean_sojourn_ms: 0.0,
        completed: 0,
        shard_cross: Vec::new(),
        final_allocations: Vec::new(),
    };
    let mut sojourn_weighted = 0.0;
    for i in 0..fleet.shard_count() {
        let sim = fleet.shard(i);
        run.cross_tuples += sim.cross_machine_tuples();
        run.edge_tuples += sim.edge_tuples();
        run.shard_cross.push(sim.cross_machine_fraction());
        run.final_allocations.push(sim.current_allocation());
        let stats = sim.total_sojourn_stats();
        sojourn_weighted += stats.mean().unwrap_or(0.0) * stats.count() as f64;
        run.completed += stats.count();
    }
    if run.completed > 0 {
        run.mean_sojourn_ms = sojourn_weighted / run.completed as f64 * 1e3;
    }

    let mut peak = 0.0f64;
    if solver {
        // Fleet-wide per-machine load under the final placements: the
        // solver must never pierce a capacity vector. Every model operator
        // of both apps costs one uniform unit per executor.
        let profiles = vec![ResourceProfile::uniform(1.0); 3];
        let mut used = vec![ResourceProfile::uniform(0.0); config.machines];
        for i in 0..fleet.shard_count() {
            if let Some(p) = fleet.driver().shard_placement(i) {
                for (m, u) in p.usage(&profiles).into_iter().enumerate() {
                    used[m].cpu += u.cpu;
                    used[m].mem += u.mem;
                    used[m].net += u.net;
                }
            }
        }
        for u in &used {
            peak = peak.max(u.cpu).max(u.mem).max(u.net);
        }
    }
    (run, peak)
}

/// Runs the full comparison: identical fleets (same seeds, same budget),
/// solver placement vs the round-robin deal.
pub fn run_place(config: &PlaceBenchConfig) -> PlaceRun {
    let names = build_fleet(config)
        .shard_names()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let (solver, peak_machine_load) = run_policy(config, true);
    let (round_robin, _) = run_policy(config, false);
    PlaceRun {
        names,
        solver,
        round_robin,
        peak_machine_load,
        machine_capacity: config.machine_capacity,
    }
}

/// Renders the comparison: per-shard crossing fractions, fleet aggregates,
/// and the capacity headroom of the solved placement.
pub fn render_place(config: &PlaceBenchConfig, run: &PlaceRun) -> String {
    let mut rows: Vec<Vec<String>> = run
        .names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                name.clone(),
                format!("{:?}", run.solver.final_allocations[i]),
                format!("{:.3}", run.solver.shard_cross[i]),
                format!("{:.3}", run.round_robin.shard_cross[i]),
            ]
        })
        .collect();
    rows.push(vec![
        "fleet".to_owned(),
        String::new(),
        format!("{:.3}", run.solver.cross_fraction()),
        format!("{:.3}", run.round_robin.cross_fraction()),
    ]);
    let mut out = render_table(
        &format!(
            "placement — {} machines x capacity {:.0}, Kmax={}, {:.0} ms cross delay \
             ({} windows x {:.0} s)",
            config.machines,
            config.machine_capacity,
            config.k_max,
            config.cross_delay_ms,
            config.windows,
            config.window_secs,
        ),
        &["shard", "final k", "solver cross", "round-robin cross"],
        &rows,
    );
    out.push_str(&format!(
        "   cross-machine fraction: solver {:.3} vs round-robin {:.3} ({:.0}% cut)\n",
        run.solver.cross_fraction(),
        run.round_robin.cross_fraction(),
        run.cross_cut() * 100.0,
    ));
    out.push_str(&format!(
        "   mean sojourn: solver {:.1} ms vs round-robin {:.1} ms \
         ({} vs {} trees completed)\n",
        run.solver.mean_sojourn_ms,
        run.round_robin.mean_sojourn_ms,
        run.solver.completed,
        run.round_robin.completed,
    ));
    out.push_str(&format!(
        "   peak machine load {:.1} of {:.0} capacity — every vector respected\n",
        run.peak_machine_load, run.machine_capacity,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_cuts_cross_traffic_within_capacity() {
        let config = PlaceBenchConfig::smoke(2015);
        let run = run_place(&config);

        // Both policies really produced cross-machine traffic to compare.
        assert!(run.round_robin.cross_tuples > 0, "{run:?}");
        assert!(run.solver.edge_tuples > 0, "{run:?}");

        // Identical executor allocations: the placement policy must not
        // perturb what the negotiated control loop grants.
        assert_eq!(
            run.solver.final_allocations, run.round_robin.final_allocations,
            "policies diverged in executor counts"
        );

        // The acceptance bar: the solver cuts the cross-machine tuple
        // fraction by at least 30% against the round-robin deal…
        assert!(
            run.solver.cross_fraction() <= 0.7 * run.round_robin.cross_fraction(),
            "cut only {:.0}%: solver {:.3} vs round-robin {:.3}",
            run.cross_cut() * 100.0,
            run.solver.cross_fraction(),
            run.round_robin.cross_fraction(),
        );
        // …without ever piercing a machine's capacity vector.
        assert!(
            run.peak_machine_load <= run.machine_capacity + 1e-9,
            "peak load {} over capacity {}",
            run.peak_machine_load,
            run.machine_capacity,
        );
        // Fewer crossings at a 5 ms toll must show up end to end.
        assert!(
            run.solver.mean_sojourn_ms <= run.round_robin.mean_sojourn_ms,
            "solver sojourn {:.1} ms vs round-robin {:.1} ms",
            run.solver.mean_sojourn_ms,
            run.round_robin.mean_sojourn_ms,
        );

        let rendered = render_place(&config, &run);
        assert!(rendered.contains("cross-machine fraction"));
        assert!(rendered.contains("vld-a"));
    }
}
