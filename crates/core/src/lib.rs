//! # DRS — Dynamic Resource Scheduling for real-time stream analytics
//!
//! A reproduction of Fu, Ding, Ma, Winslett, Yang & Zhang, *DRS: Dynamic
//! Resource Scheduling for Real-Time Analytics over Fast Streams* (ICDCS
//! 2015). DRS supervises a streaming application running on a cloud stream
//! processing (CSP) layer and answers three questions every measurement
//! window:
//!
//! 1. **How much resource is needed?** The [`model::PerformanceModel`] fits
//!    an open Jackson network of `M/M/k` operators (paper Eq. 1–3) to the
//!    measured arrival/service rates and estimates the expected *total
//!    sojourn time* `E[T]` of an input under any allocation.
//! 2. **Where should it go?** [`scheduler::assign_processors`] (Algorithm 1)
//!    places a budget of `Kmax` processors optimally — greedy on marginal
//!    benefit, provably optimal by convexity — and
//!    [`scheduler::min_processors_for_target`] (Program 6) finds the
//!    cheapest allocation meeting a latency target `Tmax`.
//! 3. **Is a change worth it?** The [`decision`] gate weighs the predicted
//!    improvement against the rebalance pause, and the
//!    [`negotiator::MachinePool`] adds/removes machines when the resource
//!    goal calls for it.
//! 4. **Where — on which machine — does each executor run?** The
//!    [`placement`] module turns the count schedule into a machine
//!    assignment: a [`placement::MachinePool`] of capacity vectors, operator
//!    [`drs_topology::ResourceProfile`]s, and a solver minimising
//!    cross-machine traffic (R-Storm style) that rides along in every
//!    [`driver::RebalancePlan`].
//!
//! The [`controller::DrsController`] wires these together behind a single
//! `on_window` call; the measurement side (two-level sampling and smoothing,
//! paper App. B) lives in [`measurer`]. The [`driver`] module closes the
//! loop over any CSP layer: implement [`driver::CspBackend`] for an engine
//! (the workspace ships the `drs-sim` simulator and the `drs-runtime`
//! threaded engine) and a [`driver::DrsDriver`] runs the full
//! measure → model → schedule → decide → actuate cycle against it.
//!
//! # Quick start
//!
//! ```
//! use drs_core::model::{ModelInputs, OperatorRates, PerformanceModel};
//! use drs_core::scheduler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Measured rates for a 3-operator video pipeline.
//! let model = PerformanceModel::new(&ModelInputs {
//!     external_rate: 13.0,
//!     operators: vec![
//!         OperatorRates { arrival_rate: 13.0,  service_rate: 1.6 },
//!         OperatorRates { arrival_rate: 390.0, service_rate: 40.0 },
//!         OperatorRates { arrival_rate: 390.0, service_rate: 450.0 },
//!     ],
//! })?;
//!
//! // Optimally place 22 executors (paper Fig. 6 setting).
//! let allocation = scheduler::assign_processors(model.network(), 22)?;
//! println!("best allocation: {allocation}");
//! assert_eq!(allocation.total(), 22);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod controller;
pub mod decision;
pub mod driver;
pub mod fleet;
pub mod measurer;
pub mod migration;
pub mod model;
pub mod negotiator;
pub mod placement;
pub mod scheduler;

pub use config::{DrsConfig, OptimizationGoal, SamplingConfig};
pub use controller::{ControlAction, DrsController, LogEntry};
pub use decision::{Decision, DecisionPolicy};
pub use driver::{
    ActuationRetry, AppliedRebalance, BackendError, CspBackend, DriverError, DrsDriver,
    OperatorSample, PlacementSpec, RebalancePlan, TimelinePoint, WindowSample,
};
pub use fleet::{
    FleetCheckpoint, FleetDriver, FleetDriverConfig, FleetNegotiator, FleetShardSpec, FleetWindow,
    ShardDemand, ShardGrant, ShardPlacementInfo, ShardPoint,
};
pub use measurer::{Measurer, RawSample, SampleBuilder, SmoothedEstimates, Smoothing};
pub use migration::{plan_migration, MigrationPlan, TaskAssignment};
pub use model::{ModelInputs, OperatorRates, PerformanceModel};
pub use negotiator::{MachinePool, MachinePoolConfig, NegotiationPlan};
// `placement::MachinePool` (capacity vectors) deliberately stays behind its
// module path: the crate root already exports the count-based negotiator
// pool under that name.
pub use placement::{EdgeTraffic, OperatorLoad, Placement, PlacementError, PlacementRequest};
pub use scheduler::{assign_processors, min_processors_for_target, Allocation, ScheduleError};
