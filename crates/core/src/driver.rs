//! The backend-agnostic control plane: [`CspBackend`] + [`DrsDriver`].
//!
//! DRS is designed to sit on top of *any* CSP layer (paper §III, Fig. 2):
//! the scheduler talks to the engine through a narrow measure/rebalance
//! interface. This module is that interface. A [`CspBackend`] is anything
//! that can (a) run the topology for one measurement window and report a
//! [`WindowSample`], and (b) apply a [`RebalancePlan`]. The generic
//! [`DrsDriver`] owns the full closed loop on top of it — measure → smooth
//! → model → schedule → decide → actuate — plus timeline recording and the
//! last-known-rates fallback (see [`SampleBuilder`]).
//!
//! The workspace ships two backends:
//!
//! * `drs-sim`'s `Simulator` — deterministic discrete-event simulation,
//!   used for every figure reproduction;
//! * `drs-runtime`'s `RuntimeEngine` — the threaded mini-Storm, giving the
//!   live runtime a closed-loop autoscaling path.
//!
//! This driver supersedes the retired `drs_apps::SimHarness`, which
//! hard-wired the identical loop to the simulator: every measurement
//! window it pulled the simulator's metrics, fed them to
//! `DrsController::on_window`, and executed any re-balance action against
//! the simulator — charging the pause cost the action carries — recording
//! one timeline point per window. Operators that record no service
//! activity in a window reuse the last known rates (brief starvation under
//! a rebalance pause must not zero the model); that fallback now lives in
//! [`SampleBuilder`] so every backend gets it. The harness's timeline was
//! proven bit-identical to the driver's on the Fig. 9 configuration before
//! its removal; `crates/apps/tests/driver_closed_loop.rs` keeps the
//! determinism and convergence guarantees anchored.
//!
//! # Implementing `CspBackend`
//!
//! A backend exposes the topology's *model operators* — the bolts, in a
//! fixed "model order" (spouts contribute no queueing and are excluded,
//! exactly as the paper's `Kmax` counts bolt executors only). Every
//! allocation vector crossing the interface is in model order. The
//! contract, method by method:
//!
//! * [`CspBackend::operator_names`] — the model operators, defining the
//!   model order. Must be stable across the backend's lifetime.
//! * [`CspBackend::current_allocation`] — executors per model operator
//!   actually in force right now.
//! * [`CspBackend::advance`] — run the system for (about) `window_secs`
//!   and return the window's raw measurements. Report `None` for any rate
//!   the window carries no evidence for (an idle or starved operator);
//!   the driver's [`SampleBuilder`] falls back to the last known rates so
//!   brief starvation under a rebalance pause does not zero the model.
//! * [`CspBackend::apply`] — actuate a rebalance, reporting in
//!   [`AppliedRebalance`] what was *actually* put in force (a backend may
//!   adjust the plan, e.g. clamp to capacity — the driver keeps the
//!   controller synchronised to it). Reject plans the engine cannot take
//!   right now with a [`BackendError`] instead of panicking: the driver
//!   records the error on the timeline, rolls back any machine
//!   provisioning the controller made for the plan, and resynchronises
//!   the controller with the backend's real allocation.
//!
//! A minimal backend (a fixed-rate mock, useful in tests):
//!
//! ```
//! use drs_core::driver::{
//!     AppliedRebalance, BackendError, CspBackend, DrsDriver, OperatorSample,
//!     RebalancePlan, WindowSample,
//! };
//! use drs_core::config::DrsConfig;
//! use drs_core::controller::DrsController;
//! use drs_core::negotiator::{MachinePool, MachinePoolConfig};
//!
//! /// One operator at fixed measured rates; rebalances always succeed.
//! struct StaticBackend {
//!     allocation: Vec<u32>,
//! }
//!
//! impl CspBackend for StaticBackend {
//!     fn backend_name(&self) -> &'static str {
//!         "static"
//!     }
//!
//!     fn operator_names(&self) -> Vec<String> {
//!         vec!["work".to_owned()]
//!     }
//!
//!     fn current_allocation(&self) -> Vec<u32> {
//!         self.allocation.clone()
//!     }
//!
//!     fn advance(&mut self, _window_secs: f64) -> WindowSample {
//!         WindowSample {
//!             external_rate: Some(40.0),
//!             operators: vec![OperatorSample {
//!                 arrival_rate: Some(40.0),
//!                 service_rate: Some(10.0),
//!             }],
//!             mean_sojourn: Some(0.9),
//!             std_sojourn: None,
//!             completed: 100,
//!         }
//!     }
//!
//!     fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError> {
//!         self.allocation = plan.allocation.clone();
//!         Ok(AppliedRebalance {
//!             allocation: plan.allocation.clone(),
//!             pause_secs: plan.pause_secs,
//!         })
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let backend = StaticBackend { allocation: vec![2] };
//! let pool = MachinePool::new(MachinePoolConfig::default(), 3)?;
//! let drs = DrsController::new(DrsConfig::min_latency(8), vec![2], pool)?;
//! let mut driver = DrsDriver::new(backend, drs, 60.0)?;
//! driver.run_windows(5);
//! // λ/µ = 4 with 2 executors is unstable: DRS must have scaled out.
//! assert!(driver.timeline().iter().any(|p| p.rebalanced));
//! assert!(driver.backend().current_allocation()[0] > 2);
//! # Ok(())
//! # }
//! ```

use crate::controller::{ControlAction, DrsController};
use crate::measurer::SampleBuilder;
use crate::placement::{
    self, EdgeTraffic, MachinePool as PlacementPool, OperatorLoad, Placement, PlacementRequest,
};
use drs_topology::ResourceProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Raw measurements of one operator for one window, in model order.
///
/// Rates are `None` when the window carries no evidence (no arrivals, no
/// busy time): the driver falls back to the last known rates rather than
/// feeding zeros to the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorSample {
    /// Measured arrival rate `λ̂_i` (tuples/second), if observed.
    pub arrival_rate: Option<f64>,
    /// Measured per-executor service rate `µ̂_i`, if observed.
    pub service_rate: Option<f64>,
}

/// Everything a backend measured during one window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Measured external arrival rate `λ̂0`, if the window saw time pass.
    pub external_rate: Option<f64>,
    /// Per-operator observations in model order.
    pub operators: Vec<OperatorSample>,
    /// Mean complete sojourn time (seconds) of tuples finished in the
    /// window, if any.
    pub mean_sojourn: Option<f64>,
    /// Standard deviation of those sojourn times (seconds), when defined.
    pub std_sojourn: Option<f64>,
    /// Tuples fully processed during the window.
    pub completed: u64,
}

/// A rebalance the driver asks a backend to actuate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalancePlan {
    /// Target executors per model operator.
    pub allocation: Vec<u32>,
    /// Pause the controller expects the transition to cost (seconds).
    /// Backends that measure their own pause may ignore it; the simulator
    /// charges it.
    pub pause_secs: f64,
    /// Actuation epoch: a per-topology monotonically increasing sequence
    /// number stamped by the issuing driver. A backend (or the control
    /// channel in front of it) that sees commands out of order must apply
    /// only strictly increasing epochs and reject the rest, so a delayed or
    /// duplicated command can never double-actuate or roll the allocation
    /// back to a stale target. Backends on a reliable in-process channel
    /// may ignore it.
    pub epoch: u64,
    /// Machine assignment for the target allocation, when a placement
    /// layer is active: `placement.counts()[i][m]` executors of model
    /// operator `i` go to machine `m`. `None` leaves executor-to-machine
    /// mapping to the backend (the pre-placement behaviour). Backends
    /// without a machine concept ignore it.
    #[serde(default)]
    pub placement: Option<Placement>,
}

/// What a backend actually did for a [`RebalancePlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedRebalance {
    /// The allocation now in force (model order).
    pub allocation: Vec<u32>,
    /// The pause charged or measured (seconds).
    pub pause_secs: f64,
}

/// Error from a backend refusing or failing an operation.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The plan's allocation was malformed (wrong length, zero executors).
    InvalidAllocation(String),
    /// The backend cannot rebalance right now (e.g. a previous rebalance
    /// pause is still in progress); retry on a later window.
    RebalanceUnavailable(String),
    /// The command was sent but no acknowledgement came back within the
    /// window: the actuation **may or may not** be in force. Unlike a
    /// refusal, the driver must not assume the previous allocation still
    /// runs — it re-synchronises from the backend's believed state and
    /// retries under capped backoff ([`ActuationRetry`]), relying on
    /// [`RebalancePlan::epoch`] for idempotence if the original command
    /// was merely delayed.
    Timeout(String),
    /// Any other backend-specific failure.
    Other(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::InvalidAllocation(s) => write!(f, "invalid allocation: {s}"),
            BackendError::RebalanceUnavailable(s) => write!(f, "rebalance unavailable: {s}"),
            BackendError::Timeout(s) => write!(f, "actuation unacknowledged: {s}"),
            BackendError::Other(s) => write!(f, "backend error: {s}"),
        }
    }
}

/// Capped-backoff retry schedule for unacknowledged actuations, shared by
/// [`DrsDriver`] and the fleet driver so the two loops keep identical
/// failure semantics.
///
/// A [`BackendError::Timeout`] means a command went out but no ack came
/// back — the actuation may or may not be in force. Retrying every window
/// would spam a partitioned backend, so after a timeout the driver holds
/// off for a geometrically growing number of windows (1, 2, 4, … capped at
/// `cap`) before issuing the next command, and relies on
/// [`RebalancePlan::epoch`] for idempotence when the original command was
/// merely delayed. Any *acknowledged* outcome — success or an explicit
/// refusal — proves the channel is alive and resets the backoff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuationRetry {
    backoff: u64,
    next_attempt: u64,
    cap: u64,
}

impl ActuationRetry {
    /// Creates a schedule whose holdoff never exceeds `cap` windows.
    pub fn new(cap: u64) -> Self {
        ActuationRetry {
            backoff: 1,
            next_attempt: 0,
            cap: cap.max(1),
        }
    }

    /// Whether an actuation may be attempted during window `window`.
    pub fn ready(&self, window: u64) -> bool {
        window >= self.next_attempt
    }

    /// Windows remaining before the next attempt is allowed.
    pub fn holdoff(&self, window: u64) -> u64 {
        self.next_attempt.saturating_sub(window)
    }

    /// Records an unacknowledged attempt during `window`: the next attempt
    /// is pushed `backoff` windows out and the backoff doubles (capped).
    pub fn on_timeout(&mut self, window: u64) {
        self.next_attempt = window + self.backoff;
        self.backoff = (self.backoff * 2).min(self.cap);
    }

    /// Records an acknowledged outcome (success *or* explicit refusal):
    /// the channel is alive, so the backoff resets.
    pub fn on_ack(&mut self) {
        self.backoff = 1;
        self.next_attempt = 0;
    }
}

impl Default for ActuationRetry {
    /// The default cap: at most 8 windows between attempts.
    fn default() -> Self {
        ActuationRetry::new(8)
    }
}

impl std::error::Error for BackendError {}

/// The narrow interface between DRS and a CSP layer (paper Fig. 2).
///
/// See the [module docs](self) for the implementor's guide and an example.
pub trait CspBackend {
    /// Short human-readable backend name (`"sim"`, `"runtime"`, …).
    fn backend_name(&self) -> &'static str;

    /// Names of the model operators (the bolts), fixing the model order
    /// used by every allocation and sample crossing this interface.
    fn operator_names(&self) -> Vec<String>;

    /// The allocation currently in force, in model order.
    fn current_allocation(&self) -> Vec<u32>;

    /// Writes the allocation currently in force into `out` (cleared
    /// first). The default delegates to
    /// [`current_allocation`](Self::current_allocation); backends driven in
    /// allocation-sensitive loops (the fleet driver polls this once per
    /// shard per window) should override it to fill `out` directly.
    fn current_allocation_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.current_allocation());
    }

    /// Runs the system for (about) `window_secs` and returns the window's
    /// measurements. A simulator advances virtual time; a live engine
    /// waits out the wall clock.
    fn advance(&mut self, window_secs: f64) -> WindowSample;

    /// In-place [`advance`](Self::advance): runs the window and writes its
    /// measurements into `out`, reusing `out`'s buffers where possible.
    /// The default delegates to `advance` (and therefore allocates the
    /// sample); backends that want allocation-free steady-state fleet
    /// windows override this to fill `out` directly.
    fn advance_into(&mut self, window_secs: f64, out: &mut WindowSample) {
        *out = self.advance(window_secs);
    }

    /// Actuates a rebalance.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the plan is malformed or the engine cannot
    /// take it right now; the backend must keep its previous allocation.
    fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError>;

    /// Actuates a machine placement *without* changing executor counts —
    /// the placement-only fast path (no rebalance pause is implied). Used
    /// when measured rates shift enough that executors should move between
    /// machines while `k` stays put.
    ///
    /// The default accepts and ignores the placement, so backends without
    /// a machine concept need no changes. Backends that honor machine
    /// assignments (the simulator, the per-machine-pool runtime) override
    /// this.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the placement is malformed for this backend
    /// (wrong operator count, totals that disagree with the running
    /// allocation).
    fn apply_placement(&mut self, placement: &Placement) -> Result<(), BackendError> {
        let _ = placement;
        Ok(())
    }
}

/// Everything a driver needs to compute machine placements alongside its
/// rebalances: the machines, the per-operator demand vectors, and the
/// topology's model-order edges.
///
/// When installed via [`DrsDriver::set_placement_spec`], every rebalance
/// plan carries a [`Placement`] solved against the pool, with edge weights
/// taken from the window's measured arrival rates (`rate(u→v) = λ̂_u ·
/// gain(u→v)`), so hot edges get co-located first.
#[derive(Debug, Clone)]
pub struct PlacementSpec {
    /// The machines to place executors onto.
    pub pool: PlacementPool,
    /// Per-executor resource demand of each model operator (model order).
    pub profiles: Vec<ResourceProfile>,
    /// Model-operator edges as `(from, to, gain)`; the measured arrival
    /// rate at `from` scales `gain` into a tuple rate each window.
    pub edges: Vec<(usize, usize, f64)>,
}

impl PlacementSpec {
    /// Builds the solver request for `allocation`, weighting edges with
    /// the measured per-operator arrival rates (1.0 each when a rate is
    /// unknown, preserving relative gains).
    pub fn request(&self, allocation: &[u32], arrival_rates: &[f64]) -> PlacementRequest {
        PlacementRequest {
            operators: allocation
                .iter()
                .zip(&self.profiles)
                .map(|(&k, &profile)| OperatorLoad {
                    executors: k,
                    profile,
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|&(from, to, gain)| EdgeTraffic {
                    from,
                    to,
                    rate: gain * arrival_rates.get(from).copied().unwrap_or(1.0),
                })
                .collect(),
        }
    }
}

/// One measurement window of a closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Window index (0-based; one per `window_secs`, the paper uses
    /// minutes).
    pub window: u64,
    /// Measured mean complete sojourn time in milliseconds, when any tuple
    /// finished in the window.
    pub mean_sojourn_ms: Option<f64>,
    /// Standard deviation of the sojourn times (milliseconds).
    pub std_sojourn_ms: Option<f64>,
    /// Tuples fully processed during the window.
    pub completed: u64,
    /// The model-operator allocation in force at the *end* of the window.
    pub allocation: Vec<u32>,
    /// Whether DRS executed a re-balance during this window.
    pub rebalanced: bool,
    /// The pause the backend charged or measured for the rebalance.
    pub pause_secs: Option<f64>,
    /// A backend refusal, when the controller asked for a rebalance the
    /// backend could not take (the controller is resynchronised to the
    /// backend's real allocation).
    pub backend_error: Option<String>,
}

/// Error from [`DrsDriver::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// Controller and backend disagree on the number of model operators.
    OperatorCountMismatch {
        /// Operators the controller supervises.
        controller: usize,
        /// Model operators the backend exposes.
        backend: usize,
    },
    /// Controller and backend disagree on the allocation currently running.
    AllocationMismatch {
        /// The allocation the controller believes is in force.
        controller: Vec<u32>,
        /// The allocation the backend actually runs.
        backend: Vec<u32>,
    },
    /// The window length is not a positive finite number of seconds.
    InvalidWindow(f64),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::OperatorCountMismatch {
                controller,
                backend,
            } => write!(
                f,
                "controller supervises {controller} operators but the backend exposes {backend}"
            ),
            DriverError::AllocationMismatch {
                controller,
                backend,
            } => write!(
                f,
                "controller believes allocation {controller:?} is running but the backend runs {backend:?}"
            ),
            DriverError::InvalidWindow(w) => {
                write!(f, "window length must be positive and finite, got {w}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// The generic DRS closed loop over any [`CspBackend`].
///
/// Each [`step`](DrsDriver::step) advances the backend one measurement
/// window, feeds the sample (with last-known-rates fallback) to the
/// [`DrsController`], executes any rebalance against the backend, and
/// records a [`TimelinePoint`]. This is the single control-loop driver
/// behind the paper's §V timelines (Figs. 9 and 10) on the simulator *and*
/// the live runtime's autoscaling path.
#[derive(Debug)]
pub struct DrsDriver<B: CspBackend> {
    backend: B,
    drs: DrsController,
    window_secs: f64,
    samples: SampleBuilder,
    timeline: Vec<TimelinePoint>,
    /// Epoch stamped on the next issued command (strictly increasing).
    epoch: u64,
    retry: ActuationRetry,
    placement_spec: Option<PlacementSpec>,
    current_placement: Option<Placement>,
}

impl<B: CspBackend> DrsDriver<B> {
    /// Creates a driver closing the loop between `backend` and `drs`,
    /// measuring every `window_secs` seconds.
    ///
    /// # Errors
    ///
    /// * [`DriverError::OperatorCountMismatch`] — the controller's operator
    ///   count differs from the backend's model operators (a wiring error).
    /// * [`DriverError::AllocationMismatch`] — the allocation the
    ///   controller believes is running differs from what the backend
    ///   actually runs (the model would reason about the wrong system).
    /// * [`DriverError::InvalidWindow`] — non-positive or non-finite
    ///   window.
    pub fn new(backend: B, drs: DrsController, window_secs: f64) -> Result<Self, DriverError> {
        let backend_allocation = backend.current_allocation();
        let controller_allocation = drs.current_allocation();
        if backend_allocation.len() != controller_allocation.len() {
            return Err(DriverError::OperatorCountMismatch {
                controller: controller_allocation.len(),
                backend: backend_allocation.len(),
            });
        }
        if backend_allocation != controller_allocation {
            return Err(DriverError::AllocationMismatch {
                controller: controller_allocation.to_vec(),
                backend: backend_allocation,
            });
        }
        if !window_secs.is_finite() || window_secs <= 0.0 {
            return Err(DriverError::InvalidWindow(window_secs));
        }
        Ok(DrsDriver {
            backend,
            drs,
            window_secs,
            samples: SampleBuilder::new(),
            timeline: Vec::new(),
            epoch: 0,
            retry: ActuationRetry::default(),
            placement_spec: None,
            current_placement: None,
        })
    }

    /// Installs a placement layer: every subsequent rebalance plan carries
    /// a machine assignment solved against `spec`'s pool, and the driver
    /// tracks the placement in force (see [`DrsDriver::placement`]).
    pub fn set_placement_spec(&mut self, spec: PlacementSpec) {
        self.placement_spec = Some(spec);
    }

    /// The machine placement currently in force, when a placement layer is
    /// installed and at least one placed rebalance has been applied.
    pub fn placement(&self) -> Option<&Placement> {
        self.current_placement.as_ref()
    }

    /// Caps the retry holdoff after an actuation timeout at `cap` windows.
    pub fn set_retry_backoff_cap(&mut self, cap: u64) {
        self.retry = ActuationRetry::new(cap);
    }

    /// The retry schedule's state (for inspection in tests and reports).
    pub fn actuation_retry(&self) -> &ActuationRetry {
        &self.retry
    }

    /// The timeline recorded so far.
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// The measurement window length (seconds).
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// The controller (for inspecting its log or recommendations).
    pub fn controller(&self) -> &DrsController {
        &self.drs
    }

    /// Mutable controller access (e.g. to enable re-balancing mid-run, as
    /// the paper does at minute 14).
    pub fn controller_mut(&mut self) -> &mut DrsController {
        &mut self.drs
    }

    /// The backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access, for injecting workload drift mid-run (e.g.
    /// slowing an operator's service law, the paper's §I motivating
    /// scenario).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Dissolves the driver, returning the backend and controller (e.g. to
    /// shut a live engine down).
    pub fn into_parts(self) -> (B, DrsController) {
        (self.backend, self.drs)
    }

    /// Runs `windows` measurement windows, returning the new timeline
    /// points.
    pub fn run_windows(&mut self, windows: u64) -> &[TimelinePoint] {
        let first_new = self.timeline.len();
        for _ in 0..windows {
            self.step();
        }
        &self.timeline[first_new..]
    }

    /// Runs one measurement window and returns its timeline point.
    pub fn step(&mut self) -> &TimelinePoint {
        let window = self.timeline.len() as u64;
        let sample = self.backend.advance(self.window_secs);
        let raw = self.samples.build(&sample);
        let mut rebalanced = false;
        let mut pause_secs = None;
        let mut backend_error = None;
        if let Some(raw) = raw {
            match self.drs.on_window(&raw) {
                ControlAction::None => {}
                ControlAction::Rebalance {
                    allocation,
                    pause_secs: pause,
                    plan: machine_plan,
                } => {
                    if !self.retry.ready(window) {
                        // Still backing off after an unacknowledged
                        // command: withhold the actuation, roll the
                        // controller back to reality, and try again once
                        // the holdoff expires.
                        backend_error = Some(format!(
                            "actuation deferred: backoff after timeout \
                             (next attempt in {} windows)",
                            self.retry.holdoff(window)
                        ));
                        let actual = self.backend.current_allocation();
                        self.drs.rebalance_rejected(machine_plan.as_ref(), actual);
                    } else {
                        self.epoch += 1;
                        // With a placement layer installed, solve the
                        // machine assignment for the target allocation
                        // using this window's measured rates as the edge
                        // weights. An infeasible pool must not block the
                        // count rebalance: the plan ships without a
                        // placement and the backend keeps its mapping.
                        let placed = self.placement_spec.as_ref().and_then(|spec| {
                            let rates: Vec<f64> =
                                raw.operators.iter().map(|o| o.arrival_rate).collect();
                            placement::solve(&spec.pool, &spec.request(&allocation, &rates)).ok()
                        });
                        let plan = RebalancePlan {
                            allocation,
                            pause_secs: pause,
                            epoch: self.epoch,
                            placement: placed,
                        };
                        match self.backend.apply(&plan) {
                            Ok(applied) => {
                                rebalanced = true;
                                pause_secs = Some(applied.pause_secs);
                                self.retry.on_ack();
                                if plan.placement.is_some() {
                                    self.current_placement = plan.placement.clone();
                                }
                                // A backend may legitimately adjust what it
                                // puts in force (e.g. a capacity clamp);
                                // keep the controller on what actually
                                // runs.
                                self.drs.sync_allocation(applied.allocation);
                            }
                            Err(e) => {
                                // Unacked commands open the backoff; a
                                // refusal is itself an ack and resets it.
                                if matches!(e, BackendError::Timeout(_)) {
                                    self.retry.on_timeout(window);
                                } else {
                                    self.retry.on_ack();
                                }
                                // Roll back the machine plan the controller
                                // provisioned for this rebalance and resync
                                // its view to the backend's (believed)
                                // allocation so later windows reason about
                                // reality.
                                backend_error = Some(e.to_string());
                                let actual = self.backend.current_allocation();
                                self.drs.rebalance_rejected(machine_plan.as_ref(), actual);
                            }
                        }
                    }
                }
            }
        }
        self.timeline.push(TimelinePoint {
            window: self.timeline.len() as u64,
            mean_sojourn_ms: sample.mean_sojourn.map(|s| s * 1e3),
            std_sojourn_ms: sample.std_sojourn.map(|s| s * 1e3),
            completed: sample.completed,
            allocation: self.drs.current_allocation().to_vec(),
            rebalanced,
            pause_secs,
            backend_error,
        });
        self.timeline.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DrsConfig;
    use crate::negotiator::{MachinePool, MachinePoolConfig};

    /// Scripted backend: replays a fixed sequence of samples; `apply`
    /// succeeds unless `fail_applies` has budget left.
    #[derive(Debug)]
    struct Scripted {
        samples: Vec<WindowSample>,
        cursor: usize,
        allocation: Vec<u32>,
        fail_applies: usize,
        /// Commands to drop on the floor (recorded, not applied, and
        /// answered with [`BackendError::Timeout`]) before behaving again.
        timeout_applies: usize,
        applied: Vec<RebalancePlan>,
    }

    impl Scripted {
        fn new(samples: Vec<WindowSample>, allocation: Vec<u32>) -> Self {
            Scripted {
                samples,
                cursor: 0,
                allocation,
                fail_applies: 0,
                timeout_applies: 0,
                applied: Vec::new(),
            }
        }
    }

    impl CspBackend for Scripted {
        fn backend_name(&self) -> &'static str {
            "scripted"
        }

        fn operator_names(&self) -> Vec<String> {
            (0..self.allocation.len())
                .map(|i| format!("op{i}"))
                .collect()
        }

        fn current_allocation(&self) -> Vec<u32> {
            self.allocation.clone()
        }

        fn advance(&mut self, _window_secs: f64) -> WindowSample {
            let s = self.samples[self.cursor.min(self.samples.len() - 1)].clone();
            self.cursor += 1;
            s
        }

        fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError> {
            self.applied.push(plan.clone());
            if self.fail_applies > 0 {
                self.fail_applies -= 1;
                return Err(BackendError::RebalanceUnavailable(
                    "pause in progress".to_owned(),
                ));
            }
            if self.timeout_applies > 0 {
                self.timeout_applies -= 1;
                return Err(BackendError::Timeout("command lost".to_owned()));
            }
            self.allocation = plan.allocation.clone();
            Ok(AppliedRebalance {
                allocation: plan.allocation.clone(),
                pause_secs: plan.pause_secs,
            })
        }
    }

    fn overloaded_sample() -> WindowSample {
        // One operator at ρ = 4: unstable until DRS scales it out.
        WindowSample {
            external_rate: Some(40.0),
            operators: vec![OperatorSample {
                arrival_rate: Some(40.0),
                service_rate: Some(10.0),
            }],
            mean_sojourn: Some(1.5),
            std_sojourn: Some(0.4),
            completed: 30,
        }
    }

    fn starved_sample() -> WindowSample {
        WindowSample {
            external_rate: Some(40.0),
            operators: vec![OperatorSample {
                arrival_rate: None,
                service_rate: None,
            }],
            mean_sojourn: None,
            std_sojourn: None,
            completed: 0,
        }
    }

    fn driver(backend: Scripted) -> DrsDriver<Scripted> {
        let pool = MachinePool::new(MachinePoolConfig::default(), 3).unwrap();
        let drs = DrsController::new(DrsConfig::min_latency(8), vec![2], pool).unwrap();
        DrsDriver::new(backend, drs, 60.0).unwrap()
    }

    #[test]
    fn closed_loop_rebalances_and_records_timeline() {
        let mut d = driver(Scripted::new(vec![overloaded_sample()], vec![2]));
        d.run_windows(5);
        assert_eq!(d.timeline().len(), 5);
        let rebalances: Vec<_> = d.timeline().iter().filter(|p| p.rebalanced).collect();
        assert_eq!(rebalances.len(), 1, "exactly one rebalance to the optimum");
        assert!(rebalances[0].pause_secs.is_some());
        // The backend now runs what the controller believes is running.
        assert_eq!(
            d.backend().current_allocation(),
            d.timeline().last().unwrap().allocation
        );
        assert!(d.backend().current_allocation()[0] > 2);
        // Sojourn flows through in milliseconds.
        assert_eq!(d.timeline()[0].mean_sojourn_ms, Some(1500.0));
        assert_eq!(d.timeline()[0].completed, 30);
    }

    #[test]
    fn backend_refusal_is_a_timeline_event_not_a_panic() {
        let mut backend = Scripted::new(vec![overloaded_sample()], vec![2]);
        backend.fail_applies = 1;
        let mut d = driver(backend);
        // Warmup (2) + refused attempt + cooldown + successful retry.
        d.run_windows(5);
        let refused: Vec<_> = d
            .timeline()
            .iter()
            .filter(|p| p.backend_error.is_some())
            .collect();
        assert_eq!(refused.len(), 1);
        assert!(!refused[0].rebalanced);
        assert!(refused[0]
            .backend_error
            .as_deref()
            .unwrap()
            .contains("rebalance unavailable"));
        // The controller was resynchronised to the backend's real state…
        assert_eq!(refused[0].allocation, vec![2]);
        // …and a later window retries successfully.
        assert!(d.timeline().iter().any(|p| p.rebalanced));
        assert!(d.backend().current_allocation()[0] > 2);
    }

    #[test]
    fn starved_windows_reuse_last_known_rates() {
        let samples = vec![
            overloaded_sample(),
            overloaded_sample(),
            overloaded_sample(),
            starved_sample(),
        ];
        let mut d = driver(Scripted::new(samples, vec![2]));
        d.run_windows(4);
        // The starved window still reached the controller (last-known
        // rates), so its log has an entry per window.
        assert_eq!(d.controller().log().len(), 4);
    }

    #[test]
    fn starved_first_window_is_skipped() {
        let mut d = driver(Scripted::new(vec![starved_sample()], vec![2]));
        d.run_windows(2);
        // No usable rates ever: the controller never saw a window, but the
        // timeline still records what was measured.
        assert_eq!(d.controller().log().len(), 0);
        assert_eq!(d.timeline().len(), 2);
        assert_eq!(d.timeline()[0].mean_sojourn_ms, None);
    }

    #[test]
    fn refused_rebalance_rolls_back_the_machine_plan() {
        // Resource goal: the scale-up provisions a machine before the
        // backend is asked; when the backend refuses, the pool must not
        // keep the phantom machine.
        let mut backend = Scripted::new(vec![overloaded_sample()], vec![2]);
        backend.fail_applies = 1;
        let pool = MachinePool::new(MachinePoolConfig::default(), 1).unwrap();
        // Tight target: λ/µ = 4 and Tmax barely above the no-queue bound
        // force ~7 executors — beyond one 5-executor machine, so the plan
        // must add a machine.
        let mut cfg = DrsConfig::min_resources(0.11);
        cfg.warmup_windows = 1;
        let drs = DrsController::new(cfg, vec![2], pool).unwrap();
        let mut d = DrsDriver::new(backend, drs, 60.0).unwrap();
        d.run_windows(2);
        let refused = d
            .timeline()
            .iter()
            .find(|p| p.backend_error.is_some())
            .expect("the scale-up must be refused");
        assert!(!refused.rebalanced);
        // λ/µ = 4 needs 5+ executors: the plan added a machine; the
        // refusal must have reverted it.
        assert_eq!(d.controller().pool().active_machines(), 1);
        // The retry provisions it again, this time for real.
        d.run_windows(2);
        assert!(d.timeline().iter().any(|p| p.rebalanced));
        assert!(d.controller().pool().active_machines() > 1);
    }

    #[test]
    fn adjusted_applied_allocation_resyncs_controller() {
        /// Applies one executor fewer than asked, reporting it honestly.
        #[derive(Debug)]
        struct Clamping {
            inner: Scripted,
        }
        impl CspBackend for Clamping {
            fn backend_name(&self) -> &'static str {
                "clamping"
            }
            fn operator_names(&self) -> Vec<String> {
                self.inner.operator_names()
            }
            fn current_allocation(&self) -> Vec<u32> {
                self.inner.current_allocation()
            }
            fn advance(&mut self, window_secs: f64) -> WindowSample {
                self.inner.advance(window_secs)
            }
            fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError> {
                let clamped = RebalancePlan {
                    allocation: plan.allocation.iter().map(|&k| k.max(2) - 1).collect(),
                    pause_secs: plan.pause_secs,
                    epoch: plan.epoch,
                    placement: None,
                };
                self.inner.apply(&clamped)
            }
        }
        let backend = Clamping {
            inner: Scripted::new(vec![overloaded_sample()], vec![2]),
        };
        let pool = MachinePool::new(MachinePoolConfig::default(), 3).unwrap();
        let drs = DrsController::new(DrsConfig::min_latency(8), vec![2], pool).unwrap();
        let mut d = DrsDriver::new(backend, drs, 60.0).unwrap();
        d.run_windows(4);
        // The controller tracks the clamped allocation the backend actually
        // runs (7 = 8 - 1), not the 8 it asked for.
        assert_eq!(d.controller().current_allocation(), &[7]);
        assert_eq!(d.backend().current_allocation(), vec![7]);
        assert_eq!(
            d.timeline()
                .iter()
                .find(|p| p.rebalanced)
                .unwrap()
                .allocation,
            vec![7]
        );
    }

    #[test]
    fn mismatched_initial_allocations_rejected() {
        let backend = Scripted::new(vec![overloaded_sample()], vec![3]);
        let pool = MachinePool::new(MachinePoolConfig::default(), 3).unwrap();
        let drs = DrsController::new(DrsConfig::min_latency(8), vec![2], pool).unwrap();
        assert_eq!(
            DrsDriver::new(backend, drs, 60.0).unwrap_err(),
            DriverError::AllocationMismatch {
                controller: vec![2],
                backend: vec![3]
            }
        );
    }

    #[test]
    fn mismatched_operator_counts_rejected() {
        let backend = Scripted::new(vec![overloaded_sample()], vec![2, 3]);
        let pool = MachinePool::new(MachinePoolConfig::default(), 3).unwrap();
        let drs = DrsController::new(DrsConfig::min_latency(8), vec![2], pool).unwrap();
        assert_eq!(
            DrsDriver::new(backend, drs, 60.0).unwrap_err(),
            DriverError::OperatorCountMismatch {
                controller: 1,
                backend: 2
            }
        );
    }

    #[test]
    fn invalid_window_rejected() {
        let backend = Scripted::new(vec![overloaded_sample()], vec![2]);
        let pool = MachinePool::new(MachinePoolConfig::default(), 3).unwrap();
        let drs = DrsController::new(DrsConfig::min_latency(8), vec![2], pool).unwrap();
        assert_eq!(
            DrsDriver::new(backend, drs, 0.0).unwrap_err(),
            DriverError::InvalidWindow(0.0)
        );
    }

    #[test]
    fn timeout_backs_off_then_retries_with_fresh_epoch() {
        // Two lost commands: the driver must not hammer the backend every
        // window — after each timeout it holds off (1 window, then 2) —
        // and every (re)issued command must carry a strictly larger epoch
        // so a late duplicate of the lost command can never supersede it.
        let mut backend = Scripted::new(vec![overloaded_sample()], vec![2]);
        backend.timeout_applies = 2;
        let mut d = driver(backend);
        d.run_windows(12);
        let timeline = d.timeline();
        let timeouts: Vec<_> = timeline
            .iter()
            .filter(|p| {
                p.backend_error
                    .as_deref()
                    .is_some_and(|e| e.contains("unacknowledged"))
            })
            .collect();
        assert_eq!(timeouts.len(), 2, "both lost commands must be visible");
        let deferred = timeline
            .iter()
            .filter(|p| {
                p.backend_error
                    .as_deref()
                    .is_some_and(|e| e.contains("deferred"))
            })
            .count();
        assert!(
            deferred >= 1,
            "the second attempt must respect the backoff holdoff"
        );
        // The loop recovers: the retry after the backoff lands.
        assert!(timeline.iter().any(|p| p.rebalanced));
        assert!(d.backend().current_allocation()[0] > 2);
        // Epochs on the wire are strictly increasing.
        let epochs: Vec<u64> = d.backend().applied.iter().map(|p| p.epoch).collect();
        assert!(epochs.windows(2).all(|w| w[0] < w[1]), "epochs: {epochs:?}");
        assert_eq!(epochs.len(), 3, "two lost + one landed");
    }

    #[test]
    fn refusal_is_an_ack_and_resets_backoff() {
        // A refusal proves the channel is alive: the very next window may
        // retry (the pre-existing behaviour), with no holdoff inserted.
        let mut backend = Scripted::new(vec![overloaded_sample()], vec![2]);
        backend.fail_applies = 1;
        let mut d = driver(backend);
        d.run_windows(5);
        assert!(d.timeline().iter().all(|p| !p
            .backend_error
            .as_deref()
            .is_some_and(|e| e.contains("deferred"))));
        assert!(d.timeline().iter().any(|p| p.rebalanced));
        assert!(d.actuation_retry().ready(d.timeline().len() as u64));
    }

    #[test]
    fn placement_spec_attaches_machine_assignment_to_plans() {
        let mut d = driver(Scripted::new(vec![overloaded_sample()], vec![2]));
        d.set_placement_spec(PlacementSpec {
            pool: PlacementPool::uniform(2, ResourceProfile::uniform(16.0)).unwrap(),
            profiles: vec![ResourceProfile::default()],
            edges: Vec::new(),
        });
        assert!(d.placement().is_none());
        d.run_windows(5);
        let placed = d
            .backend()
            .applied
            .iter()
            .find(|p| p.placement.is_some())
            .expect("rebalance plans must carry a placement once a spec is set");
        let placement = placed.placement.as_ref().unwrap();
        // The placement realises exactly the plan's allocation.
        assert_eq!(placement.allocation(), placed.allocation);
        // The driver tracks the placement in force.
        assert_eq!(
            d.placement().unwrap().allocation(),
            d.backend().current_allocation()
        );
    }

    #[test]
    fn into_parts_returns_backend_and_controller() {
        let mut d = driver(Scripted::new(vec![overloaded_sample()], vec![2]));
        d.run_windows(3);
        let (backend, drs) = d.into_parts();
        assert_eq!(backend.current_allocation(), drs.current_allocation());
    }
}
