//! The DRS resource-scheduling algorithms (paper §III-C).
//!
//! Two optimisation problems are solved:
//!
//! * **Program 4** — given at most `Kmax` processors, place them on operators
//!   to minimise the expected total sojourn time `E[T]`. Solved by
//!   [`assign_processors`] (Algorithm 1): start every operator at its minimum
//!   stable count, then repeatedly give one processor to the operator with
//!   the largest marginal benefit `δ_i = λ_i·(E[T_i](k_i) − E[T_i](k_i+1))`.
//!   Because each `E[T_i]` is convex in `k_i`, the greedy solution is exactly
//!   optimal (Theorem 1).
//! * **Program 6** — find the *fewest* processors for which `E[T] ≤ Tmax`.
//!   Solved by [`min_processors_for_target`] with the same greedy ascent,
//!   stopping as soon as the target is met.
//!
//! # Incremental complexity
//!
//! The paper argues (Table II) that the scheduling computation must stay
//! negligible inside the measure→schedule→migrate loop. Both solvers
//! therefore run on a max-heap of per-operator marginal benefits backed by
//! the O(1)-stepping evaluators of [`drs_queueing::incremental`]:
//! convexity guarantees that granting a processor to operator `i` changes
//! only `δ_i`, so each greedy step is one heap pop + one O(1) model update +
//! one push, for `O((n + Kmax)·log n)` total instead of the naive
//! `O(Kmax·n·k̄)` rescan (each rescan re-running the `O(k)` Erlang-B
//! recurrence per operator). The original from-scratch implementation is
//! retained as [`assign_processors_reference`] /
//! [`min_processors_for_target_reference`]: an oracle for property tests and
//! the `crates/bench` comparison benchmarks, which measure the heap path
//! ≈ 25× faster at `Kmax = 192` on the 3-operator Table II network (7.9 µs
//! vs 197.5 µs) and ≈ 140× faster on a 32-operator network with 1024
//! surplus processors.
//!
//! [`assign_processors_exhaustive`] provides a brute-force reference used by
//! tests and the ablation benchmarks to confirm greedy optimality.

use drs_queueing::incremental::NetworkSojourn;
use drs_queueing::jackson::{JacksonError, JacksonNetwork};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::fmt;

/// Error from the scheduling algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// Even the minimum stable allocation needs more processors than are
    /// available (Algorithm 1, line 5).
    InsufficientProcessors {
        /// Processors required for stability.
        required: u64,
        /// Processors available (`Kmax`).
        available: u32,
    },
    /// The latency target is below the no-queueing lower bound
    /// `Σ λ_i/µ_i / λ0`, so no finite allocation can reach it.
    TargetUnreachable {
        /// The requested expected-sojourn target (seconds).
        target: f64,
        /// The theoretical lower bound (seconds).
        lower_bound: f64,
    },
    /// The target was not met within the provided processor cap.
    CapExceeded {
        /// The processor cap that was hit.
        cap: u32,
        /// Best expected sojourn achieved at the cap (seconds).
        best: f64,
    },
    /// The underlying performance model rejected the inputs.
    Model(JacksonError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InsufficientProcessors {
                required,
                available,
            } => write!(
                f,
                "insufficient processors: stability needs {required}, only {available} available"
            ),
            ScheduleError::TargetUnreachable {
                target,
                lower_bound,
            } => write!(
                f,
                "target {target}s unreachable: lower bound is {lower_bound}s"
            ),
            ScheduleError::CapExceeded { cap, best } => {
                write!(f, "processor cap {cap} reached; best E[T] = {best}s")
            }
            ScheduleError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JacksonError> for ScheduleError {
    fn from(e: JacksonError) -> Self {
        ScheduleError::Model(e)
    }
}

/// The result of a scheduling run: an allocation plus its model-predicted
/// expected sojourn time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    per_operator: Vec<u32>,
    expected_sojourn: f64,
}

impl Allocation {
    /// Processors assigned to each operator, in model index order.
    pub fn per_operator(&self) -> &[u32] {
        &self.per_operator
    }

    /// Total processors used.
    pub fn total(&self) -> u64 {
        self.per_operator.iter().map(|&k| u64::from(k)).sum()
    }

    /// The model-predicted expected total sojourn time (seconds).
    pub fn expected_sojourn(&self) -> f64 {
        self.expected_sojourn
    }

    /// Consumes the allocation, returning the raw vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.per_operator
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, k) in self.per_operator.iter().enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, ") E[T]={:.4}s", self.expected_sojourn)
    }
}

/// A benefit-heap entry: the marginal benefit of granting `key` its next
/// processor, valid until `key` is incremented (by convexity nothing else
/// invalidates it). Largest δ wins; ties break towards the smallest key so
/// the heap picks exactly what a reference argmax scan would. `key` is an
/// operator index here and a `(shard, operator)` pair in the fleet
/// negotiator (`crate::fleet`), which shares this ordering.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate<K> {
    pub(crate) delta: f64,
    pub(crate) key: K,
}

impl<K: Ord> PartialEq for Candidate<K> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<K: Ord> Eq for Candidate<K> {}

impl<K: Ord> PartialOrd for Candidate<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Candidate<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.delta
            .total_cmp(&other.delta)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// Builds the initial benefit heap over all operators of `state`.
fn benefit_heap(state: &NetworkSojourn) -> BinaryHeap<Candidate<usize>> {
    (0..state.len())
        .map(|op| Candidate {
            delta: state.weighted_marginal_benefit(op),
            key: op,
        })
        .collect()
}

/// Pops the best candidate, grants it a processor, and re-inserts its
/// refreshed benefit. O(log n).
fn grant_best(state: &mut NetworkSojourn, heap: &mut BinaryHeap<Candidate<usize>>) {
    let best = heap.pop().expect("heap has one entry per operator");
    state.increment(best.key);
    heap.push(Candidate {
        delta: state.weighted_marginal_benefit(best.key),
        key: best.key,
    });
}

/// Algorithm 1 (`AssignProcessors`): optimally place at most `k_max`
/// processors to minimise `E[T]`.
///
/// Uses *all* `k_max` processors: by monotonicity an extra processor never
/// hurts, and by convexity the greedy argmax placement is exactly optimal.
///
/// Runs in `O((n + Kmax)·log n)` via the lazy benefit heap (see the module
/// docs); produces bit-identical allocations to
/// [`assign_processors_reference`].
///
/// # Errors
///
/// * [`ScheduleError::InsufficientProcessors`] — stability alone needs more
///   than `k_max` processors.
pub fn assign_processors(
    network: &JacksonNetwork,
    k_max: u32,
) -> Result<Allocation, ScheduleError> {
    let mut state = NetworkSojourn::at_min_stable(network);
    let required: u64 = state.allocation().iter().map(|&k| u64::from(k)).sum();
    if required > u64::from(k_max) {
        return Err(ScheduleError::InsufficientProcessors {
            required,
            available: k_max,
        });
    }
    if !state.is_empty() {
        let mut heap = benefit_heap(&state);
        for _ in 0..(u64::from(k_max) - required) {
            grant_best(&mut state, &mut heap);
        }
    }
    let per_operator = state.allocation();
    // One exact O(n) re-aggregation so the reported figure carries no
    // incremental rounding at all.
    let expected_sojourn = network
        .expected_sojourn(&per_operator)
        .expect("allocation length matches network");
    Ok(Allocation {
        per_operator,
        expected_sojourn,
    })
}

/// Greedy steps attempted with the plain reference walk before the heap
/// machinery is built. For loose targets the answer sits within a handful
/// of grants of the min-stable floor, where stepper/heap initialisation
/// dominates the whole call (the ROADMAP small-n/small-surplus cutover);
/// measured break-even on the Table II network is ≈ 20 grants.
const SMALL_SURPLUS_CUTOVER: u64 = 16;

/// Program 6: the smallest total allocation whose model-predicted `E[T]` is
/// at most `t_max` seconds, found by the same greedy ascent as Algorithm 1.
///
/// `cap` bounds the total processors the search may use, protecting callers
/// from unbounded growth when `t_max` sits barely above the theoretical
/// minimum.
///
/// The first [`SMALL_SURPLUS_CUTOVER`] grants run the from-scratch
/// reference walk directly: when the surplus over the min-stable floor is
/// that small, building the benefit heap and the incremental steppers
/// costs more than the walk itself. Past the cutover the search switches
/// to the heap machinery, *continuing from the probed allocation* — both
/// paths take bit-identical greedy steps (the steppers evaluate the exact
/// Erlang operation sequence and heap ties break towards the smallest
/// index, matching the reference argmax scan), so the cutover is
/// observationally transparent.
///
/// The heap phase runs in `O((n + K)·log n)` for a `K`-processor answer:
/// the network `E[T]` consulted after every step is the O(1) cached
/// aggregate. The cached and exact aggregates sum in different orders and
/// may disagree by ulps in *either* direction, so near the target boundary
/// every decision is confirmed against an exact O(n) re-aggregation — the
/// cache alone never grants a processor (which could overshoot the
/// reference's minimal answer) nor declares the target met (undershoot);
/// only O(1) steps can sit inside the confirmation band, so the
/// asymptotics hold.
///
/// # Errors
///
/// * [`ScheduleError::TargetUnreachable`] — `t_max` is below the
///   zero-queueing lower bound `Σ λ_i/µ_i / λ0`; no allocation can meet it.
/// * [`ScheduleError::CapExceeded`] — the target was not met within `cap`
///   processors.
pub fn min_processors_for_target(
    network: &JacksonNetwork,
    t_max: f64,
    cap: u32,
) -> Result<Allocation, ScheduleError> {
    let lower_bound = no_queueing_bound(network);
    if t_max < lower_bound {
        return Err(ScheduleError::TargetUnreachable {
            target: t_max,
            lower_bound,
        });
    }
    let mut allocation = network.min_stable_allocation();
    let mut total: u64 = allocation.iter().map(|&k| u64::from(k)).sum();
    if total > u64::from(cap) {
        return Err(ScheduleError::InsufficientProcessors {
            required: total,
            available: cap,
        });
    }

    // Small-surplus probe: the reference walk, capped at the cutover.
    let mut current = network
        .expected_sojourn(&allocation)
        .expect("allocation length matches network");
    let mut probed = 0u64;
    while current > t_max {
        if total >= u64::from(cap) {
            return Err(ScheduleError::CapExceeded { cap, best: current });
        }
        if probed == SMALL_SURPLUS_CUTOVER {
            break;
        }
        let best = argmax_marginal_benefit(network, &allocation);
        allocation[best] += 1;
        total += 1;
        probed += 1;
        current = network
            .expected_sojourn(&allocation)
            .expect("allocation length matches network");
    }
    if current <= t_max {
        return Ok(Allocation {
            per_operator: allocation,
            expected_sojourn: current,
        });
    }

    // Large surplus: switch to the benefit heap, continuing the identical
    // greedy path from where the probe stopped.
    let mut state =
        NetworkSojourn::new(network, &allocation).expect("allocation length matches network");
    // Relative width of the boundary band in which the cached aggregate is
    // not trusted on its own. Incremental Kahan summation is accurate to a
    // few ulps, so this is generous.
    const CONFIRM_BAND: f64 = 1e-9;
    let mut heap = benefit_heap(&state);
    let mut current = state.expected_sojourn();
    let exact_sojourn = |state: &NetworkSojourn| {
        network
            .expected_sojourn(&state.allocation())
            .expect("allocation length matches network")
    };
    loop {
        if current <= t_max || current - t_max <= CONFIRM_BAND * current.abs() {
            // The cache says the target is met or is too close to call:
            // decide on the exact aggregate. When it disagrees (exact still
            // above target), fall through and grant another processor.
            let exact = exact_sojourn(&state);
            if exact <= t_max {
                return Ok(Allocation {
                    per_operator: state.allocation(),
                    expected_sojourn: exact,
                });
            }
        }
        if total >= u64::from(cap) {
            return Err(ScheduleError::CapExceeded {
                cap,
                best: exact_sojourn(&state),
            });
        }
        grant_best(&mut state, &mut heap);
        total += 1;
        current = state.expected_sojourn();
    }
}

/// The original from-scratch Algorithm 1: re-scans every operator and
/// re-runs the full Erlang-B recurrence on each of the `Kmax` greedy steps
/// (`O(Kmax·n·k̄)`).
///
/// Retained as the correctness oracle for the heap implementation: property
/// tests assert [`assign_processors`] matches it allocation-for-allocation,
/// and `crates/bench` benchmarks one against the other.
///
/// # Errors
///
/// As for [`assign_processors`].
pub fn assign_processors_reference(
    network: &JacksonNetwork,
    k_max: u32,
) -> Result<Allocation, ScheduleError> {
    let mut allocation = network.min_stable_allocation();
    let required: u64 = allocation.iter().map(|&k| u64::from(k)).sum();
    if required > u64::from(k_max) {
        return Err(ScheduleError::InsufficientProcessors {
            required,
            available: k_max,
        });
    }
    let mut remaining = u64::from(k_max) - required;
    while remaining > 0 {
        let best = argmax_marginal_benefit(network, &allocation);
        allocation[best] += 1;
        remaining -= 1;
    }
    let expected_sojourn = network
        .expected_sojourn(&allocation)
        .expect("allocation length matches network");
    Ok(Allocation {
        per_operator: allocation,
        expected_sojourn,
    })
}

/// The original from-scratch Program 6 ascent; the correctness oracle for
/// [`min_processors_for_target`].
///
/// # Errors
///
/// As for [`min_processors_for_target`].
pub fn min_processors_for_target_reference(
    network: &JacksonNetwork,
    t_max: f64,
    cap: u32,
) -> Result<Allocation, ScheduleError> {
    let lower_bound = no_queueing_bound(network);
    if t_max < lower_bound {
        return Err(ScheduleError::TargetUnreachable {
            target: t_max,
            lower_bound,
        });
    }
    let mut allocation = network.min_stable_allocation();
    let mut total: u64 = allocation.iter().map(|&k| u64::from(k)).sum();
    if total > u64::from(cap) {
        return Err(ScheduleError::InsufficientProcessors {
            required: total,
            available: cap,
        });
    }
    let mut current = network
        .expected_sojourn(&allocation)
        .expect("allocation length matches network");
    while current > t_max {
        if total >= u64::from(cap) {
            return Err(ScheduleError::CapExceeded { cap, best: current });
        }
        let best = argmax_marginal_benefit(network, &allocation);
        allocation[best] += 1;
        total += 1;
        current = network
            .expected_sojourn(&allocation)
            .expect("allocation length matches network");
    }
    Ok(Allocation {
        per_operator: allocation,
        expected_sojourn: current,
    })
}

/// Brute-force optimal assignment by enumerating every split of `k_max`
/// processors. Exponential in the number of operators — use only for tests
/// and ablation benchmarks on small networks.
///
/// Returns `None` when no stable allocation exists within `k_max`.
pub fn assign_processors_exhaustive(network: &JacksonNetwork, k_max: u32) -> Option<Allocation> {
    let n = network.len();
    let min = network.min_stable_allocation();
    let required: u64 = min.iter().map(|&k| u64::from(k)).sum();
    if required > u64::from(k_max) {
        return None;
    }
    let mut best: Option<Allocation> = None;
    let mut current = min.clone();
    // Distribute the surplus over operators via recursive enumeration.
    let surplus = (u64::from(k_max) - required) as u32;
    fn recurse(
        network: &JacksonNetwork,
        current: &mut Vec<u32>,
        op: usize,
        left: u32,
        best: &mut Option<Allocation>,
    ) {
        let n = current.len();
        if op == n - 1 {
            current[op] += left;
            let t = network
                .expected_sojourn(current)
                .expect("length matches network");
            if best.as_ref().is_none_or(|b| t < b.expected_sojourn) {
                *best = Some(Allocation {
                    per_operator: current.clone(),
                    expected_sojourn: t,
                });
            }
            current[op] -= left;
            return;
        }
        for give in 0..=left {
            current[op] += give;
            recurse(network, current, op + 1, left - give, best);
            current[op] -= give;
        }
    }
    if n == 0 {
        return None;
    }
    recurse(network, &mut current, 0, surplus, &mut best);
    best
}

/// Algorithm 1 on a *heterogeneous* cluster (paper §III-A: "the proposed
/// models and algorithms can also support settings with heterogeneous
/// processors").
///
/// `speeds[i]` is the relative speed of the processor class serving
/// operator `i` (1.0 = the reference class whose rate the measured `µ_i`
/// describes). Faster classes multiply the effective per-processor service
/// rate; the greedy optimality argument is unchanged because each
/// `E[T_i](k_i)` stays convex under a fixed rate scaling.
///
/// # Errors
///
/// * [`ScheduleError::Model`] — `speeds` has the wrong length or contains a
///   non-positive factor.
/// * [`ScheduleError::InsufficientProcessors`] — as for
///   [`assign_processors`].
pub fn assign_processors_heterogeneous(
    network: &JacksonNetwork,
    speeds: &[f64],
    k_max: u32,
) -> Result<Allocation, ScheduleError> {
    let scaled = scale_service_rates(network, speeds)?;
    assign_processors(&scaled, k_max)
}

/// Program 6 on a heterogeneous cluster; see
/// [`assign_processors_heterogeneous`].
///
/// # Errors
///
/// As for [`min_processors_for_target`], plus invalid `speeds`.
pub fn min_processors_for_target_heterogeneous(
    network: &JacksonNetwork,
    speeds: &[f64],
    t_max: f64,
    cap: u32,
) -> Result<Allocation, ScheduleError> {
    let scaled = scale_service_rates(network, speeds)?;
    min_processors_for_target(&scaled, t_max, cap)
}

/// Builds the speed-adjusted network `µ'_i = µ_i · speeds[i]`.
fn scale_service_rates(
    network: &JacksonNetwork,
    speeds: &[f64],
) -> Result<JacksonNetwork, ScheduleError> {
    if speeds.len() != network.len() {
        return Err(ScheduleError::Model(JacksonError::AllocationLength {
            expected: network.len(),
            actual: speeds.len(),
        }));
    }
    let pairs: Vec<(f64, f64)> = network
        .operators()
        .iter()
        .zip(speeds)
        .map(|(op, &s)| (op.arrival_rate(), op.service_rate() * s))
        .collect();
    JacksonNetwork::from_rates(network.external_rate(), &pairs).map_err(ScheduleError::Model)
}

/// The zero-queueing lower bound on `E[T]`: with unlimited processors every
/// tuple only pays its service time, so `E[T] → Σ λ_i·(1/µ_i) / λ0`.
pub fn no_queueing_bound(network: &JacksonNetwork) -> f64 {
    network
        .operators()
        .iter()
        .map(|op| op.arrival_rate() / op.service_rate())
        .sum::<f64>()
        / network.external_rate()
}

/// Index of the operator with the largest marginal benefit
/// `δ_i = λ_i · (E[T_i](k_i) − E[T_i](k_i+1))` (Algorithm 1, lines 8–12).
fn argmax_marginal_benefit(network: &JacksonNetwork, allocation: &[u32]) -> usize {
    let mut best_idx = 0;
    let mut best_delta = f64::NEG_INFINITY;
    for (i, (op, &k)) in network.operators().iter().zip(allocation).enumerate() {
        let delta = op.arrival_rate() * op.marginal_benefit(k);
        if delta > best_delta {
            best_delta = delta;
            best_idx = i;
        }
    }
    best_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper §V-B VLD-like network: three bolts behind a 13 tuple/s source
    /// with a 30x feature fan-out.
    fn vld_like() -> JacksonNetwork {
        JacksonNetwork::from_rates(13.0, &[(13.0, 1.6), (390.0, 40.0), (390.0, 450.0)]).unwrap()
    }

    #[test]
    fn greedy_uses_entire_budget() {
        let net = vld_like();
        let alloc = assign_processors(&net, 22).unwrap();
        assert_eq!(alloc.total(), 22);
        assert!(alloc.expected_sojourn().is_finite());
    }

    #[test]
    fn greedy_matches_exhaustive_on_vld_like() {
        let net = vld_like();
        for k_max in [20u32, 22, 25] {
            let greedy = assign_processors(&net, k_max).unwrap();
            let brute = assign_processors_exhaustive(&net, k_max).unwrap();
            assert!(
                (greedy.expected_sojourn() - brute.expected_sojourn()).abs() < 1e-12,
                "k_max={k_max}: greedy {} vs brute {}",
                greedy.expected_sojourn(),
                brute.expected_sojourn()
            );
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_asymmetric_network() {
        let net = JacksonNetwork::from_rates(
            10.0,
            &[(10.0, 4.0), (50.0, 9.0), (25.0, 30.0), (10.0, 2.5)],
        )
        .unwrap();
        let greedy = assign_processors(&net, 30).unwrap();
        let brute = assign_processors_exhaustive(&net, 30).unwrap();
        assert!((greedy.expected_sojourn() - brute.expected_sojourn()).abs() < 1e-12);
    }

    #[test]
    fn insufficient_processors_detected() {
        let net = vld_like();
        let required = net.min_total_servers();
        let err = assign_processors(&net, (required - 1) as u32).unwrap_err();
        assert!(matches!(err, ScheduleError::InsufficientProcessors { .. }));
    }

    #[test]
    fn exactly_minimum_budget_returns_min_allocation() {
        let net = vld_like();
        let min = net.min_stable_allocation();
        let alloc = assign_processors(&net, net.min_total_servers() as u32).unwrap();
        assert_eq!(alloc.per_operator(), min.as_slice());
    }

    #[test]
    fn min_processors_meets_target() {
        // The no-queueing bound of vld_like() is ≈ 1.44 s, so 1.6 s is a
        // tight but reachable target.
        let net = vld_like();
        let alloc = min_processors_for_target(&net, 1.6, 200).unwrap();
        assert!(alloc.expected_sojourn() <= 1.6);
        // Minimality: removing any one processor violates the target or
        // stability.
        let ks = alloc.per_operator().to_vec();
        for i in 0..ks.len() {
            let mut fewer = ks.clone();
            if fewer[i] == 0 {
                continue;
            }
            fewer[i] -= 1;
            let t = net.expected_sojourn(&fewer).unwrap();
            assert!(
                t > 1.6 || t.is_infinite(),
                "removing a processor from op {i} still meets target: {t}"
            );
        }
    }

    #[test]
    fn min_processors_monotone_in_target() {
        // Looser targets need no more processors.
        let net = vld_like();
        let tight = min_processors_for_target(&net, 1.6, 500).unwrap();
        let loose = min_processors_for_target(&net, 3.0, 500).unwrap();
        assert!(loose.total() <= tight.total());
    }

    #[test]
    fn unreachable_target_detected() {
        let net = vld_like();
        let bound = no_queueing_bound(&net);
        let err = min_processors_for_target(&net, bound * 0.5, 10_000).unwrap_err();
        assert!(matches!(err, ScheduleError::TargetUnreachable { .. }));
    }

    #[test]
    fn cap_exceeded_reported_with_best_effort() {
        let net = vld_like();
        let bound = no_queueing_bound(&net);
        // Target barely above the bound: needs a huge processor count.
        let err = min_processors_for_target(&net, bound * 1.0001, 40).unwrap_err();
        match err {
            ScheduleError::CapExceeded { cap, best } => {
                assert_eq!(cap, 40);
                assert!(best.is_finite() && best > bound);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn expa_expb_shape_scale_up_and_down() {
        // Fig. 10 logic: a tighter Tmax needs more processors than a looser
        // one (the paper's ExpA 500 ms vs ExpB 1000 ms, scaled to this
        // network's latency regime).
        let net = vld_like();
        let strict = min_processors_for_target(&net, 1.6, 500).unwrap();
        let relaxed = min_processors_for_target(&net, 3.0, 500).unwrap();
        assert!(strict.total() > relaxed.total());
    }

    #[test]
    fn allocation_display_matches_paper_notation() {
        let net = vld_like();
        let alloc = assign_processors(&net, 22).unwrap();
        let s = alloc.to_string();
        assert!(s.starts_with('('), "{s}");
        assert!(s.contains(':'), "{s}");
    }

    #[test]
    fn greedy_prefers_bottleneck_operator() {
        // One heavily loaded operator and one idle one: every surplus
        // processor should go to the busy one.
        let net = JacksonNetwork::from_rates(100.0, &[(100.0, 11.0), (1.0, 1000.0)]).unwrap();
        let alloc = assign_processors(&net, 16).unwrap();
        assert_eq!(alloc.per_operator()[1], 1);
        assert_eq!(alloc.per_operator()[0], 15);
    }

    #[test]
    fn scheduling_is_linear_in_kmax_shape() {
        // Not a timing test: just confirm the loop executes for large Kmax
        // without numeric failure (Table II exercises up to 192).
        let net = vld_like();
        let alloc = assign_processors(&net, 192).unwrap();
        assert_eq!(alloc.total(), 192);
        assert!(alloc.expected_sojourn() > 0.0);
    }

    #[test]
    fn no_queueing_bound_is_reached_asymptotically() {
        let net = vld_like();
        let bound = no_queueing_bound(&net);
        let big = assign_processors(&net, 5_000).unwrap();
        assert!((big.expected_sojourn() - bound) / bound < 0.01);
    }

    #[test]
    fn into_vec_round_trips() {
        let net = vld_like();
        let alloc = assign_processors(&net, 22).unwrap();
        let v = alloc.clone().into_vec();
        assert_eq!(v.as_slice(), alloc.per_operator());
    }

    #[test]
    fn heterogeneous_unit_speeds_match_homogeneous() {
        let net = vld_like();
        let homo = assign_processors(&net, 22).unwrap();
        let hetero = assign_processors_heterogeneous(&net, &[1.0, 1.0, 1.0], 22).unwrap();
        assert_eq!(homo, hetero);
    }

    #[test]
    fn faster_processors_attract_less_allocation() {
        let net = vld_like();
        let base = assign_processors(&net, 22).unwrap();
        // Operator 0's class runs 2x faster: its offered load halves, so it
        // needs strictly fewer processors; the surplus flows elsewhere.
        let hetero = assign_processors_heterogeneous(&net, &[2.0, 1.0, 1.0], 22).unwrap();
        assert!(
            hetero.per_operator()[0] < base.per_operator()[0],
            "faster class should need fewer processors: {hetero} vs {base}"
        );
        assert_eq!(hetero.total(), 22);
    }

    #[test]
    fn slower_processors_raise_the_minimum_target_cost() {
        let net = vld_like();
        // Target reachable under both speed profiles (the no-queueing bound
        // doubles from ≈1.44 s to ≈2.88 s when speeds halve).
        let fast =
            min_processors_for_target_heterogeneous(&net, &[1.0, 1.0, 1.0], 4.0, 500).unwrap();
        let slow =
            min_processors_for_target_heterogeneous(&net, &[0.5, 0.5, 0.5], 4.0, 500).unwrap();
        assert!(
            slow.total() > fast.total(),
            "halving speeds must cost more processors: {} vs {}",
            slow.total(),
            fast.total()
        );
    }

    #[test]
    fn heterogeneous_rejects_bad_speeds() {
        let net = vld_like();
        assert!(assign_processors_heterogeneous(&net, &[1.0, 1.0], 22).is_err());
        assert!(assign_processors_heterogeneous(&net, &[1.0, 0.0, 1.0], 22).is_err());
        assert!(assign_processors_heterogeneous(&net, &[1.0, -1.0, 1.0], 22).is_err());
    }

    #[test]
    fn heap_matches_reference_allocation_for_allocation() {
        let net = vld_like();
        for k_max in [20u32, 22, 48, 96, 192, 500] {
            let fast = assign_processors(&net, k_max).unwrap();
            let slow = assign_processors_reference(&net, k_max).unwrap();
            assert_eq!(fast.per_operator(), slow.per_operator(), "k_max={k_max}");
            assert_eq!(
                fast.expected_sojourn().to_bits(),
                slow.expected_sojourn().to_bits(),
                "k_max={k_max}"
            );
        }
    }

    #[test]
    fn heap_min_target_matches_reference() {
        let net = vld_like();
        for target in [1.5f64, 1.6, 2.0, 3.0, 10.0] {
            let fast = min_processors_for_target(&net, target, 10_000).unwrap();
            let slow = min_processors_for_target_reference(&net, target, 10_000).unwrap();
            assert_eq!(fast.per_operator(), slow.per_operator(), "target={target}");
            assert_eq!(fast.total(), slow.total(), "target={target}");
        }
    }

    #[test]
    fn min_target_parity_across_the_cutover_boundary() {
        // Sweep targets from barely-reachable to loose so the resulting
        // surplus over the min-stable floor crosses SMALL_SURPLUS_CUTOVER;
        // the probed walk and the heap continuation must both match the
        // reference exactly, whichever side serves the call.
        let net = vld_like();
        let bound = no_queueing_bound(&net);
        let floor = net.min_total_servers();
        let mut below = 0u32;
        let mut above = 0u32;
        for i in 0..40 {
            // Geometric slack from 3.0 down to 2e-4: the tight end needs
            // hundreds of processors, the loose end none at all.
            let slack = 3.0 * (2.0e-4f64 / 3.0).powf(f64::from(i) / 39.0);
            let target = bound * (1.0 + slack);
            let fast = min_processors_for_target(&net, target, 100_000).unwrap();
            let slow = min_processors_for_target_reference(&net, target, 100_000).unwrap();
            assert_eq!(fast.per_operator(), slow.per_operator(), "target {target}");
            assert_eq!(
                fast.expected_sojourn().to_bits(),
                slow.expected_sojourn().to_bits(),
                "target {target}"
            );
            if fast.total() - floor <= SMALL_SURPLUS_CUTOVER {
                below += 1;
            } else {
                above += 1;
            }
        }
        assert!(
            below >= 5 && above >= 5,
            "sweep must exercise both sides of the cutover (below {below}, above {above})"
        );
    }

    #[test]
    fn heap_and_reference_agree_on_error_paths() {
        let net = vld_like();
        let required = net.min_total_servers() as u32;
        assert!(matches!(
            assign_processors_reference(&net, required - 1),
            Err(ScheduleError::InsufficientProcessors { .. })
        ));
        let bound = no_queueing_bound(&net);
        assert!(matches!(
            min_processors_for_target_reference(&net, bound * 0.5, 1_000),
            Err(ScheduleError::TargetUnreachable { .. })
        ));
        assert!(matches!(
            min_processors_for_target_reference(&net, bound * 1.0001, 40),
            Err(ScheduleError::CapExceeded { .. })
        ));
        assert!(matches!(
            min_processors_for_target(&net, bound * 1.0001, 40),
            Err(ScheduleError::CapExceeded { .. })
        ));
    }

    #[test]
    fn heterogeneous_greedy_matches_exhaustive_on_scaled_network() {
        let net = vld_like();
        let speeds = [1.5, 0.8, 2.0];
        let greedy = assign_processors_heterogeneous(&net, &speeds, 24).unwrap();
        // Exhaustive on the manually scaled network must agree.
        let pairs: Vec<(f64, f64)> = net
            .operators()
            .iter()
            .zip(speeds)
            .map(|(op, s)| (op.arrival_rate(), op.service_rate() * s))
            .collect();
        let scaled = JacksonNetwork::from_rates(net.external_rate(), &pairs).unwrap();
        let brute = assign_processors_exhaustive(&scaled, 24).unwrap();
        assert!((greedy.expected_sojourn() - brute.expected_sojourn()).abs() < 1e-12);
    }
}
