//! The rebalance decision gate (paper App. B-B).
//!
//! "In a practical CSP system, resource allocation always incurs costs" —
//! pausing the topology, migrating state, restarting executors. The
//! scheduler therefore re-balances only when the *expected benefit* of the
//! candidate allocation outweighs the disruption. This module encodes that
//! cost/benefit policy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Policy parameters for the rebalance gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionPolicy {
    /// Minimum *relative* improvement of expected sojourn
    /// `(E_cur − E_new)/E_cur` required before a rebalance is worthwhile
    /// when the system is currently meeting its target.
    pub min_relative_improvement: f64,
    /// Horizon (seconds) over which latency savings are credited when
    /// weighing them against the pause cost.
    pub amortization_horizon: f64,
    /// Hysteresis on the latency target: a violation triggers action only
    /// when the (smoothed) sojourn exceeds `t_max · (1 + violation_margin)`.
    /// Prevents flapping on windows that graze the target.
    pub violation_margin: f64,
    /// Minimum executors a scale-down must free to be worth its pause.
    pub min_executor_savings: u32,
}

impl Default for DecisionPolicy {
    fn default() -> Self {
        DecisionPolicy {
            min_relative_improvement: 0.10,
            amortization_horizon: 300.0,
            violation_margin: 0.05,
            min_executor_savings: 1,
        }
    }
}

/// Everything the gate needs to decide one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionInputs {
    /// The allocation currently running.
    pub current_allocation: Vec<u32>,
    /// Model-estimated `E[T]` of the current allocation (seconds); infinite
    /// when the current allocation is unstable under measured rates.
    pub current_estimate: f64,
    /// The candidate allocation from the optimiser.
    pub candidate_allocation: Vec<u32>,
    /// Model-estimated `E[T]` of the candidate (seconds).
    pub candidate_estimate: f64,
    /// Pause the rebalance (plus any machine changes) would impose
    /// (seconds).
    pub pause_secs: f64,
    /// The real-time constraint `Tmax` (seconds), if the application has
    /// one. A measured or predicted violation forces urgency.
    pub t_max: Option<f64>,
    /// Measured mean sojourn time (seconds), when available.
    pub measured_sojourn: Option<f64>,
}

/// The gate's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// Keep the current allocation.
    Keep {
        /// Why the rebalance was declined.
        reason: KeepReason,
    },
    /// Re-balance to the candidate allocation.
    Rebalance {
        /// Why the rebalance is justified.
        reason: RebalanceReason,
    },
}

impl Decision {
    /// Whether the decision is to rebalance.
    pub fn is_rebalance(&self) -> bool {
        matches!(self, Decision::Rebalance { .. })
    }
}

/// Reasons for keeping the current allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeepReason {
    /// Candidate is identical to the current allocation.
    AlreadyOptimal,
    /// The improvement is below the policy threshold.
    ImprovementTooSmall,
    /// The pause cost exceeds the amortised benefit.
    CostExceedsBenefit,
    /// The candidate is no better than the current allocation.
    NoImprovement,
}

/// Reasons for re-balancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebalanceReason {
    /// The measured sojourn violates `Tmax` and the candidate helps.
    TargetViolated,
    /// The model predicts the current allocation is unstable (infinite
    /// sojourn) under the measured rates.
    CurrentUnstable,
    /// The candidate frees resources while still meeting the target.
    SavesResources,
    /// The candidate improves latency enough to justify the pause.
    LatencyImprovement,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Keep { reason } => write!(f, "keep ({reason:?})"),
            Decision::Rebalance { reason } => write!(f, "rebalance ({reason:?})"),
        }
    }
}

/// Applies the policy to one round of inputs.
///
/// Decision order:
/// 1. identical candidate → keep;
/// 2. current allocation unstable under the fitted model → rebalance —
///    unless a latency target exists and the *measured* sojourn still meets
///    it (then the instability verdict is treated as model noise near the
///    stability boundary, avoiding flapping at utilisation ≈ 1);
/// 3. measured (or estimated) sojourn above `Tmax·(1+margin)` while the
///    candidate improves → rebalance;
/// 4. candidate frees at least `min_executor_savings` processors while
///    meeting `Tmax` → rebalance (the ExpB scale-down of Fig. 10);
/// 5. otherwise require the relative improvement threshold *and* an
///    amortised benefit `(E_cur − E_new)·horizon` exceeding the pause cost.
pub fn decide(policy: &DecisionPolicy, inputs: &DecisionInputs) -> Decision {
    if inputs.candidate_allocation == inputs.current_allocation {
        return Decision::Keep {
            reason: KeepReason::AlreadyOptimal,
        };
    }
    let threshold = inputs.t_max.map(|t| t * (1.0 + policy.violation_margin));
    if inputs.current_estimate.is_infinite() && inputs.candidate_estimate.is_finite() {
        let delivering = match (threshold, inputs.measured_sojourn) {
            (Some(t), Some(m)) => m <= t,
            _ => false,
        };
        if !delivering {
            return Decision::Rebalance {
                reason: RebalanceReason::CurrentUnstable,
            };
        }
        // Model says unstable but the measured latency meets the target:
        // treat as boundary noise and fall through to the economic gates.
    }
    let improvement = inputs.current_estimate - inputs.candidate_estimate;

    if let (Some(t_max), Some(threshold)) = (inputs.t_max, threshold) {
        let violated = inputs
            .measured_sojourn
            .map_or(inputs.current_estimate > threshold, |m| m > threshold);
        if violated && (improvement > 0.0 || inputs.current_estimate.is_infinite()) {
            return Decision::Rebalance {
                reason: RebalanceReason::TargetViolated,
            };
        }
        // Scale-down: candidate meets the target with enough fewer
        // processors to pay for the pause.
        let current_total: u64 = inputs
            .current_allocation
            .iter()
            .map(|&k| u64::from(k))
            .sum();
        let candidate_total: u64 = inputs
            .candidate_allocation
            .iter()
            .map(|&k| u64::from(k))
            .sum();
        if !violated
            && candidate_total + u64::from(policy.min_executor_savings) <= current_total
            && inputs.candidate_estimate <= t_max
        {
            return Decision::Rebalance {
                reason: RebalanceReason::SavesResources,
            };
        }
        // Near-boundary cases (model unstable but measured fine) stop here:
        // latency-improvement economics below need a finite current
        // estimate.
        if inputs.current_estimate.is_infinite() {
            return Decision::Keep {
                reason: KeepReason::NoImprovement,
            };
        }
    }

    if improvement <= 0.0 {
        return Decision::Keep {
            reason: KeepReason::NoImprovement,
        };
    }
    let relative = improvement / inputs.current_estimate;
    if relative < policy.min_relative_improvement {
        return Decision::Keep {
            reason: KeepReason::ImprovementTooSmall,
        };
    }
    // Credit the latency saving over the horizon and compare with the pause:
    // during `pause_secs` the pipeline effectively adds that much latency to
    // in-flight tuples once.
    let benefit = improvement * policy.amortization_horizon;
    if benefit <= inputs.pause_secs {
        return Decision::Keep {
            reason: KeepReason::CostExceedsBenefit,
        };
    }
    Decision::Rebalance {
        reason: RebalanceReason::LatencyImprovement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_inputs() -> DecisionInputs {
        DecisionInputs {
            current_allocation: vec![8, 12, 2],
            current_estimate: 0.9,
            candidate_allocation: vec![10, 11, 1],
            candidate_estimate: 0.5,
            pause_secs: 0.5,
            t_max: None,
            measured_sojourn: None,
        }
    }

    #[test]
    fn identical_candidate_keeps() {
        let mut inputs = base_inputs();
        inputs.candidate_allocation = inputs.current_allocation.clone();
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::AlreadyOptimal
            }
        );
    }

    #[test]
    fn unstable_current_forces_rebalance() {
        let mut inputs = base_inputs();
        inputs.current_estimate = f64::INFINITY;
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert_eq!(
            d,
            Decision::Rebalance {
                reason: RebalanceReason::CurrentUnstable
            }
        );
    }

    #[test]
    fn measured_violation_forces_rebalance() {
        let mut inputs = base_inputs();
        inputs.t_max = Some(0.5);
        inputs.measured_sojourn = Some(0.8); // above Tmax
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert_eq!(
            d,
            Decision::Rebalance {
                reason: RebalanceReason::TargetViolated
            }
        );
    }

    #[test]
    fn scale_down_when_target_met_with_fewer_processors() {
        // ExpB: system comfortably under Tmax; candidate frees executors.
        let inputs = DecisionInputs {
            current_allocation: vec![10, 11, 1], // 22 executors
            current_estimate: 0.45,
            candidate_allocation: vec![8, 8, 1], // 17 executors
            candidate_estimate: 0.85,
            pause_secs: 1.1,
            t_max: Some(1.0),
            measured_sojourn: Some(0.5),
        };
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert_eq!(
            d,
            Decision::Rebalance {
                reason: RebalanceReason::SavesResources
            }
        );
    }

    #[test]
    fn no_scale_down_if_candidate_would_violate() {
        let inputs = DecisionInputs {
            current_allocation: vec![10, 11, 1],
            current_estimate: 0.45,
            candidate_allocation: vec![8, 8, 1],
            candidate_estimate: 1.2, // would exceed Tmax = 1.0
            pause_secs: 1.1,
            t_max: Some(1.0),
            measured_sojourn: Some(0.5),
        };
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert!(!d.is_rebalance(), "{d}");
    }

    #[test]
    fn latency_improvement_requires_threshold() {
        let mut inputs = base_inputs();
        inputs.candidate_estimate = 0.88; // only ~2% better
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::ImprovementTooSmall
            }
        );
    }

    #[test]
    fn latency_improvement_requires_amortized_benefit() {
        let mut inputs = base_inputs();
        inputs.pause_secs = 1_000.0; // absurdly expensive rebalance
        let d = decide(
            &DecisionPolicy {
                min_relative_improvement: 0.1,
                amortization_horizon: 100.0,
                ..Default::default()
            },
            &inputs,
        );
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::CostExceedsBenefit
            }
        );
    }

    #[test]
    fn clear_improvement_rebalances() {
        let d = decide(&DecisionPolicy::default(), &base_inputs());
        assert_eq!(
            d,
            Decision::Rebalance {
                reason: RebalanceReason::LatencyImprovement
            }
        );
    }

    #[test]
    fn worse_candidate_keeps() {
        let mut inputs = base_inputs();
        inputs.candidate_estimate = 1.5;
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::NoImprovement
            }
        );
    }

    #[test]
    fn display_is_informative() {
        let d = decide(&DecisionPolicy::default(), &base_inputs());
        assert!(d.to_string().contains("rebalance"));
    }

    #[test]
    fn boundary_instability_with_healthy_measurement_keeps() {
        // ρ ≈ 1 noise: the model calls the current allocation unstable, but
        // the measured sojourn comfortably meets Tmax — no flapping.
        let inputs = DecisionInputs {
            current_allocation: vec![8, 8, 1],
            current_estimate: f64::INFINITY,
            candidate_allocation: vec![8, 9, 1],
            candidate_estimate: 1.8,
            pause_secs: 0.5,
            t_max: Some(15.0),
            measured_sojourn: Some(2.0),
        };
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert!(!d.is_rebalance(), "{d}");
    }

    #[test]
    fn boundary_instability_with_violation_still_rebalances() {
        let inputs = DecisionInputs {
            current_allocation: vec![8, 8, 1],
            current_estimate: f64::INFINITY,
            candidate_allocation: vec![10, 11, 1],
            candidate_estimate: 1.3,
            pause_secs: 4.8,
            t_max: Some(1.4),
            measured_sojourn: Some(3.0), // well above target
        };
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert!(d.is_rebalance(), "{d}");
    }

    #[test]
    fn violation_margin_damps_grazing_windows() {
        // Measured 1.43 s against Tmax 1.4 s: within the 5% margin, so no
        // action.
        let inputs = DecisionInputs {
            current_allocation: vec![10, 11, 1],
            current_estimate: 1.35,
            candidate_allocation: vec![11, 11, 1],
            candidate_estimate: 1.30,
            pause_secs: 0.5,
            t_max: Some(1.4),
            measured_sojourn: Some(1.43),
        };
        let d = decide(&DecisionPolicy::default(), &inputs);
        assert!(!d.is_rebalance(), "{d}");
        // Beyond the margin it acts.
        let mut hot = inputs;
        hot.measured_sojourn = Some(1.55);
        let d = decide(&DecisionPolicy::default(), &hot);
        assert_eq!(
            d,
            Decision::Rebalance {
                reason: RebalanceReason::TargetViolated
            }
        );
    }

    #[test]
    fn min_executor_savings_blocks_marginal_scale_down() {
        let policy = DecisionPolicy {
            min_executor_savings: 2,
            ..Default::default()
        };
        let inputs = DecisionInputs {
            current_allocation: vec![10, 11, 1], // 22
            current_estimate: 1.2,
            candidate_allocation: vec![10, 10, 1], // 21: saves only 1
            candidate_estimate: 1.35,
            pause_secs: 1.1,
            t_max: Some(15.0),
            measured_sojourn: Some(1.25),
        };
        let d = decide(&policy, &inputs);
        assert!(!d.is_rebalance(), "{d}");
        // Freeing two executors clears the bar.
        let mut bigger = inputs;
        bigger.candidate_allocation = vec![9, 10, 1];
        bigger.candidate_estimate = 1.6;
        let d = decide(&policy, &bigger);
        assert_eq!(
            d,
            Decision::Rebalance {
                reason: RebalanceReason::SavesResources
            }
        );
    }
}
