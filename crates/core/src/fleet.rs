//! Fleet-scale DRS: one processor budget shared by many topologies.
//!
//! The paper's controller supervises a *single* streaming application, but a
//! production cluster runs many topologies competing for one machine pool
//! (the scenario R-Storm's resource-aware scheduling targets). This module
//! lifts the DRS loop to that setting:
//!
//! * a [`FleetNegotiator`] owns the global processor budget `Kmax` and
//!   arbitrates per-topology allocations. When the sum of per-topology
//!   demands fits the budget every shard receives exactly its own
//!   single-topology schedule; when it does not, the negotiator applies the
//!   paper's max-marginal-benefit rule *across* topologies — the same lazy
//!   benefit heap as [`crate::scheduler::assign_processors`], run at fleet
//!   granularity over every `(shard, operator)` pair — and hands each shard
//!   a capped plan. No shard is ever pushed below its minimum stable
//!   allocation;
//! * a [`FleetDriver`] runs one DRS measure→smooth→model→schedule loop per
//!   shard (each shard is an independent [`CspBackend`] on its own clock)
//!   but resolves contention centrally every window. Capacity freed by a
//!   shard whose demand drops is re-offered to starved shards on the next
//!   negotiation round;
//! * before any grant is actuated it passes the shard's own cost/benefit
//!   **decision gate** ([`crate::decision`], configured via
//!   [`FleetDriverConfig::decision`]): noise-driven ±1 grant wobble is
//!   kept rather than paid for with a pause every window, while target
//!   violations, instability and real scale-downs still act. Shrinks
//!   bypass the gate while the budget is contended — capped shards are
//!   starving, so freed capacity must actually flow. Note the flip side:
//!   an *uncontended* scale-down is deferred while the shard's measured
//!   latency violates its target (never shrink a struggling shard), which
//!   can also defer another shard's grow until the pool frees up.
//!
//! # Incremental warm-start negotiation
//!
//! Rebuilding the fleet-wide benefit heap from scratch every window costs
//! `O(total operators)` even when almost nothing moved — at 10⁵–10⁶ shards
//! that alone dwarfs the window budget. The negotiator therefore persists
//! its contended-round state across windows and repairs it instead:
//!
//! * each shard's [`drs_queueing::incremental::NetworkSojourn`] walk and its
//!   position on the marginal-benefit heaps survive the window boundary;
//!   demand epochs (bumped only when a shard's validated demand actually
//!   changes bit-for-bit) stamp every cached entry, and stale entries are
//!   discarded lazily on pop rather than eagerly rebuilt;
//! * a window's negotiation then costs `O(changed shards + executors
//!   moved)`: shards whose demand, floor and desired vector are unchanged
//!   are never re-walked, and budget changes replay only the boundary of
//!   the previous fixpoint (ascend on freed capacity, descend on lost
//!   capacity);
//! * the warm path ([`FleetNegotiator::negotiate_within_incremental`])
//!   is *observationally identical* to the retained from-scratch
//!   reference ([`FleetNegotiator::negotiate_within`]) — same grants,
//!   same errors, bit for bit — property-tested across randomized demand
//!   drift, shard churn and budget schedules;
//! * a fully settled window — no demand epoch moved, every grant equal to
//!   the allocation in force — runs **allocation-free** end to end
//!   through [`FleetDriver`]: backends fill reusable buffers via the
//!   `*_into` hooks on [`CspBackend`], and a counting-allocator test
//!   holds the zero.
//!
//! `repro fleet --scale {1k,10k,100k,1m}` benchmarks the warm path
//! against the from-scratch reference at those fleet sizes; the `100k`
//! point is exported as the `fleet_scale` section of `BENCH_PERF.json`
//! and regression-gated by `repro perfdiff`.
//!
//! # Degraded control plane
//!
//! Production control channels lose, delay and duplicate messages, and
//! shards crash; the paper's convergence results all assume neither
//! happens. The fleet loop is hardened for the degraded case (the
//! `drs_sim::faults` module provides the matching deterministic fault
//! injector). The contract, per failure mode:
//!
//! * **Retried** — an actuation whose acknowledgement never arrives
//!   ([`crate::driver::BackendError::Timeout`]) is retried with capped
//!   exponential backoff ([`crate::driver::ActuationRetry`], cap
//!   [`FleetDriverConfig::retry_backoff_cap`]); windows inside the
//!   backoff record an `actuation deferred` error instead of spamming
//!   the channel. Any acknowledgement — success *or* refusal — proves
//!   the channel alive and resets the backoff.
//! * **Rejected** — every actuation carries a per-shard monotonically
//!   increasing epoch ([`RebalancePlan::epoch`]); a backend must apply
//!   only strictly newer epochs, so a late or duplicated command is
//!   rejected at the shard instead of double-counted.
//! * **Discounted** — measurement reports may be stale (delayed, or a
//!   starved window substituted from history):
//!   [`SampleBuilder`] tracks the age of every fallback rate and the
//!   smoothed estimate weighs the sample down by
//!   [`FleetDriverConfig::stale_decay`]`^age` instead of treating a
//!   3-window-old report as current.
//! * **Reclaimed** — a shard whose reports stop entirely for
//!   [`FleetDriverConfig::lease_windows`] consecutive windows is
//!   presumed dead (lease expiry): its executors stop reserving budget,
//!   it is excluded from the fleet total, and the negotiator re-offers
//!   its capacity to starved shards. A shard that was merely partitioned
//!   renews its lease with the first report after the heal; the
//!   over-budget guard below then re-converges the fleet.
//! * **Deferred** — a refused or lost shrink leaves its executors in
//!   force, so any grow that would push the *realized* fleet total over
//!   `Kmax` is deferred to a later window rather than over-committing
//!   the pool (the PR 5 guard, extended to lost actuations and lease
//!   revivals).
//!
//! [`FleetDriver::checkpoint`] snapshots the entire control plane —
//! negotiator, per-shard measurement state, epochs, backoff state,
//! timeline, and (the backend being `Clone`) the backends with their
//! virtual clocks — so long scenario sweeps can branch from a common
//! prefix and replay deterministically.
//!
//! The `drs-sim` crate pairs this driver with a sharded multi-topology
//! simulator (`drs_sim::fleet::FleetCoordinator`); `repro fleet` in
//! `crates/bench` runs a four-topology mixed VLD+FPD fleet under a
//! contended budget, and `repro fleet --faults <scenario>` runs the same
//! fleet through the fault injector.
//!
//! # Example
//!
//! Two fixed-rate mock shards contending for a budget smaller than their
//! combined demand:
//!
//! ```
//! use drs_core::driver::{
//!     AppliedRebalance, BackendError, CspBackend, OperatorSample, RebalancePlan, WindowSample,
//! };
//! use drs_core::fleet::{FleetDriver, FleetDriverConfig, FleetShardSpec};
//!
//! /// One operator at fixed measured rates; rebalances always succeed.
//! struct StaticShard {
//!     rate: f64,
//!     allocation: Vec<u32>,
//! }
//!
//! impl CspBackend for StaticShard {
//!     fn backend_name(&self) -> &'static str {
//!         "static"
//!     }
//!     fn operator_names(&self) -> Vec<String> {
//!         vec!["work".to_owned()]
//!     }
//!     fn current_allocation(&self) -> Vec<u32> {
//!         self.allocation.clone()
//!     }
//!     fn advance(&mut self, _window_secs: f64) -> WindowSample {
//!         WindowSample {
//!             external_rate: Some(self.rate),
//!             operators: vec![OperatorSample {
//!                 arrival_rate: Some(self.rate),
//!                 service_rate: Some(10.0),
//!             }],
//!             mean_sojourn: Some(0.5),
//!             std_sojourn: None,
//!             completed: 100,
//!         }
//!     }
//!     fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError> {
//!         self.allocation = plan.allocation.clone();
//!         Ok(AppliedRebalance {
//!             allocation: plan.allocation.clone(),
//!             pause_secs: plan.pause_secs,
//!         })
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let shard = |rate| StaticShard { rate, allocation: vec![4] };
//! let mut config = FleetDriverConfig::new(12); // Kmax = 12 for the whole fleet
//! config.warmup_windows = 1;
//! let mut fleet = FleetDriver::new(
//!     config,
//!     vec![
//!         FleetShardSpec::new("hot", 0.11, shard(60.0)),
//!         FleetShardSpec::new("cold", 0.11, shard(30.0)),
//!     ],
//! )?;
//! fleet.run_windows(4);
//! let last = fleet.timeline().last().unwrap();
//! // The budget is fully arbitrated: grants sum to at most Kmax…
//! assert!(last.total_granted <= 12);
//! // …and the hotter shard wins the larger share.
//! assert!(last.shards[0].allocation[0] > last.shards[1].allocation[0]);
//! # Ok(())
//! # }
//! ```

use crate::decision::{self, DecisionInputs, DecisionPolicy};
use crate::driver::{ActuationRetry, BackendError, CspBackend, RebalancePlan, WindowSample};
use crate::measurer::{Measurer, RawSample, SampleBuilder, Smoothing};
use crate::model::PerformanceModel;
use crate::placement::{
    self, EdgeTraffic, MachinePool as PlacementPool, OperatorLoad, Placement, PlacementRequest,
};
use crate::scheduler::{self, Candidate, ScheduleError};
use drs_queueing::incremental::NetworkSojourn;
use drs_queueing::jackson::JacksonNetwork;
use drs_topology::ResourceProfile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Total executors in an allocation (`u64` so fleet-wide sums cannot
/// overflow).
fn executor_total(allocation: &[u32]) -> u64 {
    allocation.iter().map(|&k| u64::from(k)).sum()
}

/// One topology's resource demand, as submitted to the negotiator.
#[derive(Debug)]
pub struct ShardDemand {
    /// The shard's fitted open network (model order).
    pub network: JacksonNetwork,
    /// The allocation the shard's own single-topology schedule asks for
    /// (its Program 6 / Algorithm 1 answer, one entry per model operator).
    pub desired: Vec<u32>,
}

// Manual impl so `clone_from` reuses both buffers: the incremental
// negotiator refreshes its per-slot demand cache in place on every change,
// and the driver refreshes its packed demand list the same way.
impl Clone for ShardDemand {
    fn clone(&self) -> Self {
        ShardDemand {
            network: self.network.clone(),
            desired: self.desired.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.network.clone_from(&source.network);
        self.desired.clone_from(&source.desired);
    }
}

/// Bitwise demand equality — the incremental negotiator's change detector.
/// "Unchanged" must mean "every floating-point model value recomputes
/// identically", so rates compare on bits: `PartialEq` would equate
/// `-0.0 == 0.0` (distinct under `total_cmp`, which orders the benefit
/// heap). A NaN rate compares equal to itself on bits, so a pathological
/// demand is at worst re-entered or cached consistently — never diffed
/// into an inconsistent warm state.
fn demand_bits_equal(a: &ShardDemand, b: &ShardDemand) -> bool {
    a.desired == b.desired
        && a.network.external_rate().to_bits() == b.network.external_rate().to_bits()
        && a.network.len() == b.network.len()
        && a.network
            .operators()
            .iter()
            .zip(b.network.operators())
            .all(|(x, y)| {
                x.arrival_rate().to_bits() == y.arrival_rate().to_bits()
                    && x.service_rate().to_bits() == y.service_rate().to_bits()
            })
}

/// What the negotiator granted one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardGrant {
    /// Executors per model operator the shard may run.
    pub allocation: Vec<u32>,
    /// Whether the grant falls short of the shard's desired total (the
    /// budget was contended and this shard's plan was capped).
    pub capped: bool,
}

impl ShardGrant {
    /// Total executors granted.
    pub fn total(&self) -> u64 {
        executor_total(&self.allocation)
    }
}

/// Error from fleet-level budget negotiation.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Even the minimum stable allocations of all shards exceed the budget:
    /// the fleet cannot be made stable at any split.
    InsufficientBudget {
        /// Processors required for every shard to stay stable.
        required: u64,
        /// Processors available.
        available: u32,
    },
    /// A demand's `desired` vector does not match its network's operator
    /// count (a wiring error).
    DemandLength {
        /// Index of the offending shard.
        shard: usize,
        /// Operators the network models.
        expected: usize,
        /// Entries the desired allocation carries.
        actual: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InsufficientBudget {
                required,
                available,
            } => write!(
                f,
                "insufficient fleet budget: stability of all shards needs {required} \
                 processors, only {available} available"
            ),
            FleetError::DemandLength {
                shard,
                expected,
                actual,
            } => write!(
                f,
                "shard {shard} demand has {actual} entries, its network models {expected} operators"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// One `(shard, op)` step in the warm heaps — either a frontier step (the
/// next processor the pair would take) or a taken step (the weakest it
/// holds). Entries are stamped with the slot's generation and the op's
/// sequence number at push time; any later rebuild or move stales them, and
/// stale entries are discarded lazily on pop instead of removed eagerly.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WarmEntry {
    /// Effective (prefix-min clamped) weighted marginal benefit δ.
    delta: f64,
    slot: u32,
    op: u32,
    generation: u64,
    seq: u64,
}

/// Ascent-heap order: largest δ first, ties to the smallest `(slot, op)` —
/// the same strict total order as the from-scratch [`Candidate`] heap, so
/// warm and cold negotiation tie-break identically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ascend(WarmEntry);

impl Eq for Ascend {}

impl Ord for Ascend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .delta
            .total_cmp(&other.0.delta)
            .then_with(|| (other.0.slot, other.0.op).cmp(&(self.0.slot, self.0.op)))
    }
}

impl PartialOrd for Ascend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Descent-heap order: the heap's max is the *weakest* taken step —
/// smallest δ first, ties to the largest `(slot, op)` — the exact reverse
/// of [`Ascend`], so "best frontier step" and "weakest taken step" are the
/// two ends of one strict total order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Descend(WarmEntry);

impl Eq for Descend {}

impl Ord for Descend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .delta
            .total_cmp(&self.0.delta)
            .then_with(|| (self.0.slot, self.0.op).cmp(&(other.0.slot, other.0.op)))
    }
}

impl PartialOrd for Descend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Whether frontier step `f` strictly precedes taken step `a` in the greedy
/// order (larger δ first, ties to the smaller `(slot, op)`). If a frontier
/// step of a below-cap shard outranks any taken step, the warm state is not
/// the greedy equilibrium and the pair must be exchanged.
fn outranks(f: &WarmEntry, a: &WarmEntry) -> bool {
    f.delta
        .total_cmp(&a.delta)
        .then_with(|| (a.slot, a.op).cmp(&(f.slot, f.op)))
        .is_gt()
}

/// Per-shard warm state carried across windows by the incremental
/// negotiator (see [`FleetNegotiator::negotiate_within_incremental`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SlotState {
    /// The demand the warm state was built from (bitwise cache key — see
    /// `demand_bits_equal`).
    demand: ShardDemand,
    /// Per-op minimum stable allocation (cached).
    floor: Vec<u32>,
    /// `demand.desired` raised to the floor — what an uncontended window
    /// grants verbatim.
    desired_floored: Vec<u32>,
    floor_total: u64,
    desired_total: u64,
    /// The shard's reversible sojourn walk, parked at its current grant
    /// position. `None` until the slot first negotiates contended.
    walk: Option<NetworkSojourn>,
    /// Per-op stack of the *effective* (prefix-min clamped) δ of every
    /// step taken above the floor; the top is the op's weakest taken step.
    taken: Vec<Vec<f64>>,
    /// Steps taken above the floor, across all ops.
    taken_total: u64,
    /// Per-op stamp, bumped on every step/revoke/unpark of that op.
    op_seq: Vec<u64>,
    /// Slot stamp (drawn from the negotiator's global counter on rebuild,
    /// so entries of a removed-then-replaced slot can never revive).
    generation: u64,
    /// The walk no longer matches `demand` (it changed while the fleet was
    /// uncontended, or the slot is new); rebuilt at the floor on the next
    /// contended window.
    walk_stale: bool,
    /// The published grant no longer matches the warm state; rewritten
    /// before `negotiate_within_incremental` returns.
    grant_dirty: bool,
    /// Frontier entries of this slot were discarded while it sat at its
    /// demand cap; a revoke that drops it below the cap re-enters them.
    parked: bool,
}

impl SlotState {
    /// Demand cap: steps above the floor this shard may take.
    fn cap(&self) -> u64 {
        self.desired_total - self.floor_total
    }

    /// Effective frontier δ of `op`: the raw marginal benefit at the walk's
    /// current position, clamped to the weakest taken step of the same op.
    /// The clamp makes every per-op δ stream monotone non-increasing even
    /// under floating-point wobble — exactly the `min` applied when the
    /// from-scratch loop pushes a successor candidate — which is what keeps
    /// warm equilibria and cold runs bit-identical.
    fn frontier_eff(&self, op: usize) -> f64 {
        let walk = self.walk.as_ref().expect("contended slot carries a walk");
        let raw = walk.weighted_marginal_benefit(op);
        match self.taken[op].last() {
            Some(&top) => raw.min(top),
            None => raw,
        }
    }
}

/// Mode memory for [`FleetNegotiator::negotiate_within_incremental`]:
/// transitions between uncontended and contended windows are the only
/// points where grants must be reconciled fleet-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum NegotiationMode {
    /// No successful incremental negotiation yet.
    Initial,
    /// Last window granted every shard its floored desire.
    Uncontended,
    /// Last window ran the warm greedy equilibrium.
    Contended,
}

/// The fleet budget negotiator: owns `Kmax` and arbitrates competing
/// per-topology demands (see the [module docs](self)).
///
/// Two entry points compute identical grants:
///
/// * [`FleetNegotiator::negotiate`] / [`negotiate_within`] — stateless,
///   from scratch, `O(fleet)` per call; the oracle the proptests compare
///   against.
/// * [`FleetNegotiator::negotiate_within_incremental`] — warm-started from
///   the previous window's state, `O(changed shards + executor moves)` per
///   call and allocation-free when nothing changed; what [`FleetDriver`]
///   runs every window.
///
/// The warm state is a pure cache: any warm position converges to the same
/// bit-identical grants a cold run computes, so checkpoint clones,
/// mid-sequence errors and restores are all safe.
///
/// [`negotiate_within`]: FleetNegotiator::negotiate_within
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetNegotiator {
    k_max: u32,
    /// Warm per-shard state, indexed like the demand slice.
    slots: Vec<SlotState>,
    /// Published grants, indexed like the demand slice.
    grants: Vec<ShardGrant>,
    /// Frontier steps, best first (lazy, stamped — see [`WarmEntry`]).
    ascent: std::collections::BinaryHeap<Ascend>,
    /// Taken steps, weakest first (lazy, stamped).
    descent: std::collections::BinaryHeap<Descend>,
    sum_floor: u64,
    sum_desired: u64,
    sum_taken: u64,
    /// Live `(shard, op)` pairs across all slots (heap-compaction bound).
    total_ops: usize,
    /// Monotone stamp source for slot generations.
    stamp: u64,
    mode: NegotiationMode,
    /// Slots whose grant must be rewritten (deduplicated by
    /// `SlotState::grant_dirty`; survives an errored call so no rewrite is
    /// ever lost).
    touched: Vec<u32>,
}

impl FleetNegotiator {
    /// Creates a negotiator owning a global budget of `k_max` processors.
    pub fn new(k_max: u32) -> Self {
        FleetNegotiator {
            k_max,
            slots: Vec::new(),
            grants: Vec::new(),
            ascent: std::collections::BinaryHeap::new(),
            descent: std::collections::BinaryHeap::new(),
            sum_floor: 0,
            sum_desired: 0,
            sum_taken: 0,
            total_ops: 0,
            stamp: 0,
            mode: NegotiationMode::Initial,
            touched: Vec::new(),
        }
    }

    /// The global processor budget.
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// Arbitrates `demands` within the full budget.
    ///
    /// # Errors
    ///
    /// See [`FleetNegotiator::negotiate_within`].
    pub fn negotiate(&self, demands: &[ShardDemand]) -> Result<Vec<ShardGrant>, FleetError> {
        self.negotiate_within(self.k_max, demands)
    }

    /// Arbitrates `demands` within an explicitly reduced budget (used by
    /// the driver when part of `Kmax` is reserved for shards that carry no
    /// usable model yet).
    ///
    /// When the desired totals fit the budget every shard is granted
    /// exactly its desired allocation — the fleet schedule *equals* the
    /// single-topology schedules. Otherwise every shard starts from its
    /// minimum stable allocation and the surplus is spent one processor at
    /// a time on the `(shard, operator)` pair with the largest weighted
    /// marginal benefit `δ = λ_i·(E[T_i](k) − E[T_i](k+1))` — comparable
    /// across topologies because it is an absolute tuple-seconds-per-second
    /// reduction — until the budget is exhausted. No shard ever receives
    /// more than it asked for: once a shard reaches its desired total its
    /// candidates retire, so surplus only flows to shards still short of
    /// their own schedule. (One exception: stability always wins — a
    /// `desired` below the network's minimum stable allocation is raised
    /// to that minimum, since schedules produced by
    /// [`scheduler::min_processors_for_target`] /
    /// [`scheduler::assign_processors`] never sit below it.)
    ///
    /// # Errors
    ///
    /// * [`FleetError::DemandLength`] — a desired vector does not match its
    ///   network.
    /// * [`FleetError::InsufficientBudget`] — the minimum stable
    ///   allocations alone exceed `budget`.
    pub fn negotiate_within(
        &self,
        budget: u32,
        demands: &[ShardDemand],
    ) -> Result<Vec<ShardGrant>, FleetError> {
        let refs: Vec<&ShardDemand> = demands.iter().collect();
        Self::negotiate_scratch(budget, &refs)
    }

    /// The from-scratch arbitration over *borrowed* demands — the form the
    /// gate-aware re-offer round uses, so excluding held shards costs a
    /// reference each instead of a deep `ShardDemand` copy.
    pub(crate) fn negotiate_scratch(
        budget: u32,
        demands: &[&ShardDemand],
    ) -> Result<Vec<ShardGrant>, FleetError> {
        for (i, d) in demands.iter().enumerate() {
            if d.desired.len() != d.network.len() {
                return Err(FleetError::DemandLength {
                    shard: i,
                    expected: d.network.len(),
                    actual: d.desired.len(),
                });
            }
        }
        // Stability floor: a desired entry below the operator's minimum
        // stable count is raised to it, in both branches.
        let desired: Vec<Vec<u32>> = demands
            .iter()
            .map(|d| {
                d.desired
                    .iter()
                    .zip(d.network.min_stable_allocation())
                    .map(|(&want, floor)| want.max(floor))
                    .collect()
            })
            .collect();
        let desired_totals: Vec<u64> = desired.iter().map(|a| executor_total(a)).collect();
        let total_desired: u64 = desired_totals.iter().sum();
        if total_desired <= u64::from(budget) {
            return Ok(desired
                .into_iter()
                .map(|allocation| ShardGrant {
                    allocation,
                    capped: false,
                })
                .collect());
        }

        // Contended: fleet-granularity Algorithm 1 from the minimum stable
        // allocations, spending the whole budget — the scheduler's lazy
        // benefit heap keyed by `(shard, op)`, plus per-shard demand caps:
        // a shard at its desired total retires from the heap, so no
        // processor lands where no target needs it while another shard is
        // starved.
        let mut states: Vec<NetworkSojourn> = demands
            .iter()
            .map(|d| NetworkSojourn::at_min_stable(&d.network))
            .collect();
        let mut totals: Vec<u64> = states
            .iter()
            .map(|s| executor_total(&s.allocation()))
            .collect();
        let required: u64 = totals.iter().sum();
        if required > u64::from(budget) {
            return Err(FleetError::InsufficientBudget {
                required,
                available: budget,
            });
        }
        let mut heap: std::collections::BinaryHeap<Candidate<(usize, usize)>> = states
            .iter()
            .enumerate()
            .flat_map(|(shard, state)| {
                (0..state.len()).map(move |op| Candidate {
                    delta: state.weighted_marginal_benefit(op),
                    key: (shard, op),
                })
            })
            .collect();
        let mut remaining = u64::from(budget) - required;
        while remaining > 0 {
            let Some(best) = heap.pop() else {
                break; // every shard saturated its demand
            };
            let (shard, op) = best.key;
            if totals[shard] >= desired_totals[shard] {
                // Shard already has everything it asked for: retire its
                // candidate so the surplus flows to still-short shards.
                continue;
            }
            states[shard].increment(op);
            totals[shard] += 1;
            remaining -= 1;
            // The successor δ is clamped to the step just taken: in exact
            // arithmetic convexity makes every per-op δ stream monotone
            // non-increasing anyway, so the clamp only absorbs ulp-level
            // floating-point wobble — and it is what guarantees the warm
            // incremental path (which stores these effective δs in its
            // taken-stacks) reaches bit-identical grants from any start.
            heap.push(Candidate {
                delta: states[shard].weighted_marginal_benefit(op).min(best.delta),
                key: (shard, op),
            });
        }
        Ok(states
            .iter()
            .zip(&desired_totals)
            .map(|(state, &desired)| {
                let allocation = state.allocation();
                let granted = executor_total(&allocation);
                ShardGrant {
                    allocation,
                    capped: granted < desired,
                }
            })
            .collect())
    }

    /// The grants computed by the last successful
    /// [`FleetNegotiator::negotiate_within_incremental`] call, indexed like
    /// the demand slice it was given. Unspecified (possibly stale) after an
    /// `Err` — callers must not actuate grants from a failed round.
    pub fn grants(&self) -> &[ShardGrant] {
        &self.grants
    }

    /// Incremental warm-start arbitration: computes exactly what
    /// [`FleetNegotiator::negotiate_within`] would return for `budget` and
    /// `demands` — bit-identical allocations and `capped` flags, the
    /// proptests pin it — but in `O(changed shards + executor moves)` by
    /// reusing the previous window's state, and without a single heap
    /// allocation when nothing changed. Results are published through
    /// [`FleetNegotiator::grants`].
    ///
    /// Per window it
    ///
    /// 1. **diffs** each slot's demand against the cached one (bitwise —
    ///    `demand_bits_equal`); unchanged slots are not touched at all;
    /// 2. re-derives floors/desires for changed slots and, on a contended
    ///    window, **rebuilds** their reversible [`NetworkSojourn`] walk at
    ///    the stability floor (changed rates invalidate the carried
    ///    Erlang-B history; unchanged slots keep their walk parked at the
    ///    previous grant);
    /// 3. **fixes up** the warm equilibrium: revoke the globally weakest
    ///    taken step (via [`NetworkSojourn::decrement`] — the O(1)
    ///    step-down machinery) while over the spend target, take the
    ///    globally best frontier step while under it, then exchange while
    ///    any frontier step of a below-cap shard outranks a taken step;
    /// 4. rewrites the grant of every slot whose walk moved.
    ///
    /// The fix-up terminates at the unique greedy equilibrium: per-op δ
    /// streams are monotone (prefix-min clamped, matching the from-scratch
    /// successor clamp), so the final state is fully characterized by "no
    /// frontier step outranks a taken step" plus the per-shard caps — the
    /// same state the cold heap run reaches, independent of the warm
    /// starting position.
    ///
    /// # Errors
    ///
    /// The same errors, in the same precedence, as
    /// [`FleetNegotiator::negotiate_within`]. A failed call leaves the
    /// cache consistent: the next successful call converges as usual.
    pub fn negotiate_within_incremental(
        &mut self,
        budget: u32,
        demands: &[ShardDemand],
    ) -> Result<(), FleetError> {
        debug_assert!(u32::try_from(demands.len()).is_ok());
        // Slots beyond the end of the demand slice retire (fleet shrank or
        // re-packed); their heap entries die by the slot-index bound check.
        while self.slots.len() > demands.len() {
            let slot = self.slots.pop().expect("len checked above");
            self.sum_floor -= slot.floor_total;
            self.sum_desired -= slot.desired_total;
            self.sum_taken -= slot.taken_total;
            self.total_ops -= slot.demand.network.len();
        }
        self.grants.truncate(demands.len());

        // Diff pass, in slot order (so the first invalid changed slot
        // reports the same `DemandLength` a from-scratch validation would).
        for (i, d) in demands.iter().enumerate() {
            let changed = match self.slots.get(i) {
                Some(slot) => !demand_bits_equal(&slot.demand, d),
                None => true,
            };
            if !changed {
                continue;
            }
            if d.desired.len() != d.network.len() {
                return Err(FleetError::DemandLength {
                    shard: i,
                    expected: d.network.len(),
                    actual: d.desired.len(),
                });
            }
            if i == self.slots.len() {
                self.slots.push(SlotState {
                    demand: d.clone(),
                    floor: Vec::new(),
                    desired_floored: Vec::new(),
                    floor_total: 0,
                    desired_total: 0,
                    walk: None,
                    taken: Vec::new(),
                    taken_total: 0,
                    op_seq: Vec::new(),
                    generation: 0,
                    walk_stale: true,
                    grant_dirty: false,
                    parked: false,
                });
            } else {
                let slot = &mut self.slots[i];
                self.sum_floor -= slot.floor_total;
                self.sum_desired -= slot.desired_total;
                self.total_ops -= slot.demand.network.len();
                slot.demand.clone_from(d);
            }
            let slot = &mut self.slots[i];
            slot.floor.clear();
            slot.floor
                .extend(d.network.operators().iter().map(|q| q.min_stable_servers()));
            {
                let SlotState {
                    floor,
                    desired_floored,
                    ..
                } = slot;
                desired_floored.clear();
                desired_floored.extend(
                    d.desired
                        .iter()
                        .zip(floor.iter())
                        .map(|(&want, &f)| want.max(f)),
                );
            }
            slot.floor_total = executor_total(&slot.floor);
            slot.desired_total = executor_total(&slot.desired_floored);
            slot.walk_stale = true;
            self.sum_floor += slot.floor_total;
            self.sum_desired += slot.desired_total;
            self.total_ops += d.network.len();
            if !slot.grant_dirty {
                slot.grant_dirty = true;
                self.touched.push(i as u32);
            }
        }
        if self.grants.len() < demands.len() {
            self.grants.resize_with(demands.len(), || ShardGrant {
                allocation: Vec::new(),
                capped: false,
            });
        }
        debug_assert_eq!(self.slots.len(), demands.len());

        // Uncontended: every shard gets exactly its floored desire.
        if self.sum_desired <= u64::from(budget) {
            if self.mode == NegotiationMode::Uncontended {
                // Steady uncontended: only changed slots re-enter.
                for idx in 0..self.touched.len() {
                    let i = self.touched[idx] as usize;
                    if i >= self.slots.len() {
                        continue;
                    }
                    let slot = &mut self.slots[i];
                    self.grants[i].allocation.clone_from(&slot.desired_floored);
                    self.grants[i].capped = false;
                    slot.grant_dirty = false;
                }
            } else {
                // Transition (or first round): contended grants can differ
                // from the floored desire on any capped slot — reconcile
                // fleet-wide once.
                for (i, slot) in self.slots.iter_mut().enumerate() {
                    let grant = &mut self.grants[i];
                    if slot.grant_dirty || grant.capped || grant.allocation != slot.desired_floored
                    {
                        grant.allocation.clone_from(&slot.desired_floored);
                        grant.capped = false;
                    }
                    slot.grant_dirty = false;
                }
            }
            self.touched.clear();
            self.mode = NegotiationMode::Uncontended;
            return Ok(());
        }
        if self.sum_floor > u64::from(budget) {
            return Err(FleetError::InsufficientBudget {
                required: self.sum_floor,
                available: budget,
            });
        }

        // Contended. Rebuild the walks of changed slots at their floor
        // (changed rates invalidate the Erlang-B histories); unchanged
        // slots keep their walks parked at the previous grant and only
        // move by explicit increments/decrements below.
        let transition = self.mode != NegotiationMode::Contended;
        self.mode = NegotiationMode::Contended;
        for i in 0..self.slots.len() {
            if self.slots[i].walk_stale {
                self.rebuild_slot(i);
            }
        }
        if transition {
            // Entering contention from an uncontended stretch: published
            // grants are floored desires, while walks still hold their
            // last-contended positions. Any mismatch must be rewritten
            // even if the fix-up below never moves that slot.
            for i in 0..self.slots.len() {
                let slot = &self.slots[i];
                if slot.grant_dirty {
                    continue;
                }
                let walk = slot.walk.as_ref().expect("rebuilt above");
                let grant = &self.grants[i].allocation;
                let matches = grant.len() == walk.len()
                    && grant
                        .iter()
                        .enumerate()
                        .all(|(op, &k)| walk.servers(op) == k);
                if !matches {
                    self.slots[i].grant_dirty = true;
                    self.touched.push(i as u32);
                }
            }
        }

        // The spend target: the budget above the floors, truncated to what
        // the caps can absorb (the from-scratch loop stops early when every
        // shard saturates its demand).
        let target = (u64::from(budget) - self.sum_floor).min(self.sum_desired - self.sum_floor);
        while self.sum_taken > target {
            self.revoke_weakest();
        }
        while self.sum_taken < target {
            if !self.take_best() {
                debug_assert!(false, "frontier exhausted below the spend target");
                break;
            }
        }
        while let (Some(f), Some(a)) = (self.clean_ascent_top(), self.clean_descent_top()) {
            if !outranks(&f, &a) {
                break;
            }
            self.revoke_weakest();
            self.take_best();
        }

        // Publish the grant of every slot whose warm state moved.
        for idx in 0..self.touched.len() {
            let i = self.touched[idx] as usize;
            if i >= self.slots.len() {
                continue;
            }
            let slot = &mut self.slots[i];
            slot.grant_dirty = false;
            let walk = slot.walk.as_ref().expect("contended slots carry walks");
            walk.write_allocation(&mut self.grants[i].allocation);
            self.grants[i].capped = slot.floor_total + slot.taken_total < slot.desired_total;
        }
        self.touched.clear();
        self.maybe_compact();
        Ok(())
    }

    /// Rebuilds slot `i`'s walk at its stability floor under the cached
    /// demand, invalidating every heap entry it ever pushed (fresh
    /// generation) and re-entering its frontier steps.
    fn rebuild_slot(&mut self, i: usize) {
        let generation = self.stamp;
        self.stamp += 1;
        let (ops, cap) = {
            let slot = &mut self.slots[i];
            self.sum_taken -= slot.taken_total;
            slot.taken_total = 0;
            let ops = slot.demand.network.len();
            for stack in &mut slot.taken {
                stack.clear();
            }
            slot.taken.resize_with(ops, Vec::new);
            slot.op_seq.clear();
            slot.op_seq.resize(ops, 0);
            slot.generation = generation;
            slot.walk = Some(
                NetworkSojourn::reversible(&slot.demand.network, &slot.floor)
                    .expect("floor allocation length matches the network"),
            );
            slot.walk_stale = false;
            let cap = slot.cap();
            slot.parked = cap == 0;
            (ops, cap)
        };
        if !self.slots[i].grant_dirty {
            self.slots[i].grant_dirty = true;
            self.touched.push(i as u32);
        }
        if cap > 0 {
            for op in 0..ops {
                let delta = {
                    let slot = &self.slots[i];
                    slot.walk
                        .as_ref()
                        .expect("just built")
                        .weighted_marginal_benefit(op)
                };
                self.ascent.push(Ascend(WarmEntry {
                    delta,
                    slot: i as u32,
                    op: op as u32,
                    generation,
                    seq: 0,
                }));
            }
        }
    }

    /// Whether a heap entry still refers to live warm state.
    fn entry_live(&self, e: &WarmEntry) -> bool {
        match self.slots.get(e.slot as usize) {
            Some(slot) => e.generation == slot.generation && e.seq == slot.op_seq[e.op as usize],
            None => false,
        }
    }

    /// Discards stale entries (and parks at-cap slots) until the ascent top
    /// is a live frontier step of a below-cap slot, returning it un-popped.
    fn clean_ascent_top(&mut self) -> Option<WarmEntry> {
        loop {
            let e = self.ascent.peek()?.0;
            if !self.entry_live(&e) {
                self.ascent.pop();
                continue;
            }
            let slot = &mut self.slots[e.slot as usize];
            if slot.taken_total >= slot.cap() {
                // At its demand cap: this frontier cannot compete (the
                // from-scratch loop discards candidates of saturated
                // shards the same way). Park the slot; a revoke dropping
                // it below the cap re-enters every frontier.
                slot.parked = true;
                self.ascent.pop();
                continue;
            }
            return Some(e);
        }
    }

    /// Discards stale entries until the descent top is a live weakest taken
    /// step, returning it un-popped.
    fn clean_descent_top(&mut self) -> Option<WarmEntry> {
        loop {
            let e = self.descent.peek()?.0;
            if !self.entry_live(&e) {
                self.descent.pop();
                continue;
            }
            return Some(e);
        }
    }

    /// After slot `i`'s op moved (or re-entered): stamp a fresh sequence
    /// number — staling both of the op's old heap entries — and push its
    /// current frontier step and (if any step is held) weakest taken step.
    fn refresh_op(&mut self, i: usize, op: usize) {
        let slot = &self.slots[i];
        let entry = WarmEntry {
            delta: slot.frontier_eff(op),
            slot: i as u32,
            op: op as u32,
            generation: slot.generation,
            seq: slot.op_seq[op],
        };
        self.ascent.push(Ascend(entry));
        if let Some(&top) = slot.taken[op].last() {
            self.descent.push(Descend(WarmEntry {
                delta: top,
                ..entry
            }));
        }
    }

    /// Marks slot `i`'s grant for rewriting (deduplicated).
    fn mark_touched(&mut self, i: usize) {
        if !self.slots[i].grant_dirty {
            self.slots[i].grant_dirty = true;
            self.touched.push(i as u32);
        }
    }

    /// Takes the globally best frontier step (walk increment). `false` when
    /// every slot sits at its demand cap.
    fn take_best(&mut self) -> bool {
        let Some(e) = self.clean_ascent_top() else {
            return false;
        };
        self.ascent.pop();
        let i = e.slot as usize;
        let op = e.op as usize;
        {
            let slot = &mut self.slots[i];
            slot.op_seq[op] += 1;
            slot.walk.as_mut().expect("live entry").increment(op);
            // The entry's δ *is* the effective (clamped) δ of this step.
            slot.taken[op].push(e.delta);
            slot.taken_total += 1;
        }
        self.sum_taken += 1;
        self.mark_touched(i);
        self.refresh_op(i, op);
        true
    }

    /// Revokes the globally weakest taken step (walk decrement — the O(1)
    /// step-down machinery's production caller). Un-parks the slot when the
    /// revoke drops it below its demand cap.
    fn revoke_weakest(&mut self) {
        let e = self
            .clean_descent_top()
            .expect("taken steps outstanding imply a live descent top");
        self.descent.pop();
        let i = e.slot as usize;
        let op = e.op as usize;
        let was_at_cap = {
            let slot = &mut self.slots[i];
            let was_at_cap = slot.taken_total >= slot.cap();
            slot.op_seq[op] += 1;
            slot.walk.as_mut().expect("live entry").decrement(op);
            let popped = slot.taken[op].pop().expect("live descent entry");
            debug_assert_eq!(popped.to_bits(), e.delta.to_bits());
            slot.taken_total -= 1;
            was_at_cap
        };
        self.sum_taken -= 1;
        self.mark_touched(i);
        self.refresh_op(i, op);
        if was_at_cap {
            self.unpark(i);
        }
    }

    /// Re-enters every frontier step of a previously parked slot (its
    /// at-cap frontiers were discarded lazily; now that it is below its cap
    /// again they must compete). Stamps fresh sequence numbers so any
    /// surviving old entries of this slot go stale rather than duplicate.
    fn unpark(&mut self, i: usize) {
        if !self.slots[i].parked {
            return;
        }
        let ops = {
            let slot = &mut self.slots[i];
            slot.parked = false;
            for s in &mut slot.op_seq {
                *s += 1;
            }
            slot.op_seq.len()
        };
        for op in 0..ops {
            self.refresh_op(i, op);
        }
    }

    /// Rebuilds a heap in place once stale entries dominate it (rare;
    /// amortized against the pushes that bloated it).
    fn maybe_compact(&mut self) {
        let cap = 4 * self.total_ops + 64;
        if self.ascent.len() > cap {
            let heap = std::mem::take(&mut self.ascent);
            let live: Vec<Ascend> = heap
                .into_vec()
                .into_iter()
                .filter(|e| self.entry_live(&e.0))
                .collect();
            self.ascent = std::collections::BinaryHeap::from(live);
        }
        if self.descent.len() > cap {
            let heap = std::mem::take(&mut self.descent);
            let live: Vec<Descend> = heap
                .into_vec()
                .into_iter()
                .filter(|e| self.entry_live(&e.0))
                .collect();
            self.descent = std::collections::BinaryHeap::from(live);
        }
    }
}

/// Configuration of a [`FleetDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetDriverConfig {
    /// The global processor budget shared by every shard.
    pub k_max: u32,
    /// Measurement window length in seconds (every shard advances by this
    /// much each fleet step).
    pub window_secs: f64,
    /// Windows to observe before the first negotiation (estimates are
    /// unreliable while queues fill).
    pub warmup_windows: u64,
    /// Smoothing applied to each shard's measurement streams.
    pub smoothing: Smoothing,
    /// Pause charged to a shard for each rebalance (seconds) — the fleet
    /// re-assigns executors within a fixed machine pool, so the cheap
    /// steady-state pause of the improved DRS re-balancing applies.
    pub pause_secs: f64,
    /// The per-shard rebalance cost/benefit gate (paper App. B-B), applied
    /// before any grant is actuated: a grant that differs from the running
    /// allocation is executed only when the shard's own model says the
    /// move is worth its pause. This is what keeps noise-driven ±1 grant
    /// wobble from re-balancing every shard every window. One exception:
    /// while the budget is *contended*, shrinks bypass the gate — capped
    /// shards are starving, so freed capacity must actually flow.
    pub decision: DecisionPolicy,
    /// Lease length for shard liveness, in windows: a shard that produces
    /// no usable measurement report for this many *consecutive* windows is
    /// presumed dead — its executors stop reserving budget and the
    /// negotiator re-offers them to starved shards. The first usable
    /// report renews the lease. `0` disables the check (no shard is ever
    /// presumed dead).
    pub lease_windows: u64,
    /// Cap, in windows, on the exponential backoff applied between retries
    /// of an unacknowledged actuation (see
    /// [`crate::driver::ActuationRetry`]). The backoff doubles on every
    /// consecutive timeout — 1, 2, 4, … — up to this cap.
    pub retry_backoff_cap: u64,
    /// Per-window decay applied to the credibility of stale measurement
    /// evidence: a sample whose oldest substituted rate is `a` windows old
    /// enters the smoother with weight `stale_decay^a` (see
    /// [`SampleBuilder::weight`]). `1.0` disables staleness discounting;
    /// values are clamped to `(0, 1]`.
    pub stale_decay: f64,
    /// Whether every window is appended to [`FleetDriver::timeline`]
    /// (default `true`). Large fleets driven for many windows turn this
    /// off: the driver then keeps only [`FleetDriver::last_window`] —
    /// updated in place, so a steady-state window records itself without
    /// allocating — and `timeline()` stays empty.
    pub record_timeline: bool,
    /// Relative dead-band on measured edge rates for placement-epoch
    /// purposes: a shard's cached placement inputs count as *changed*
    /// (bumping its placement epoch and re-solving its machine
    /// assignment) only when an edge's new rate differs from the cached
    /// one by more than this fraction of the cached rate. Absorbs
    /// measurement wobble that would otherwise dirty every shard every
    /// window; allocation or resource-profile changes always count.
    /// `0.0` disables the band (any rate movement re-places the shard).
    pub placement_rate_band: f64,
}

impl FleetDriverConfig {
    /// A sensible fleet configuration for the given budget: 60 s windows,
    /// 2 warmup windows, α = 0.5 smoothing, 0.5 s rebalance pause, the
    /// default decision gate hardened for fleet noise
    /// (`min_executor_savings` = 2, so a one-executor scale-down — the
    /// classic noise wobble — never pays for a pause on its own), a
    /// 3-window liveness lease, an 8-window retry-backoff cap, 0.5
    /// per-window stale-evidence decay, and a 5% placement rate band.
    pub fn new(k_max: u32) -> Self {
        FleetDriverConfig {
            k_max,
            window_secs: 60.0,
            warmup_windows: 2,
            smoothing: Smoothing::Alpha { alpha: 0.5 },
            pause_secs: 0.5,
            decision: DecisionPolicy {
                min_executor_savings: 2,
                ..DecisionPolicy::default()
            },
            lease_windows: 3,
            retry_backoff_cap: 8,
            stale_decay: 0.5,
            record_timeline: true,
            placement_rate_band: 0.05,
        }
    }
}

/// Per-shard placement metadata for fleets that share a machine pool
/// ([`FleetDriver::set_machine_pool`]): what one executor of each model
/// operator costs and how tuples flow between operators. Shards without
/// this metadata keep negotiating executor *counts* but receive no machine
/// assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlacementInfo {
    /// Per-executor resource demand of each model operator (model order).
    /// Missing entries default to [`ResourceProfile::default`].
    pub profiles: Vec<ResourceProfile>,
    /// Directed edges between model operators as `(from, to, gain)`: the
    /// edge's tuple rate this window is `gain` times operator `from`'s
    /// measured arrival rate (falling back to `gain` alone while the rate
    /// is unmeasured).
    pub edges: Vec<(usize, usize, f64)>,
}

impl ShardPlacementInfo {
    /// The measured tuple rate on edge `(from, gain)` this window.
    fn edge_rate(&self, from: usize, gain: f64, sample: &WindowSample) -> f64 {
        gain * sample
            .operators
            .get(from)
            .and_then(|o| o.arrival_rate)
            .unwrap_or(1.0)
    }

    /// The placement request for running `allocation` given this window's
    /// measured `sample`.
    pub fn request(&self, allocation: &[u32], sample: &WindowSample) -> PlacementRequest {
        let mut out = PlacementRequest::default();
        self.request_into(&mut out, allocation, sample);
        out
    }

    /// [`ShardPlacementInfo::request`] into a reused buffer — the
    /// allocation-free form the warm placement state rewrites in place.
    pub fn request_into(
        &self,
        out: &mut PlacementRequest,
        allocation: &[u32],
        sample: &WindowSample,
    ) {
        out.operators.clear();
        out.operators
            .extend(allocation.iter().enumerate().map(|(i, &k)| OperatorLoad {
                executors: k,
                profile: self.profiles.get(i).copied().unwrap_or_default(),
            }));
        out.edges.clear();
        out.edges
            .extend(self.edges.iter().map(|&(from, to, gain)| EdgeTraffic {
                from,
                to,
                rate: self.edge_rate(from, gain, sample),
            }));
    }

    /// Whether `cached` still describes running `allocation` under this
    /// window's `sample`, up to the relative `rate_band` on edge rates:
    /// executor counts and resource profiles must match exactly, while an
    /// edge rate may drift within `rate_band` of the cached rate without
    /// counting as a change. This is the placement-epoch predicate — a
    /// `false` here is what dirties a shard's machine assignment.
    pub fn request_matches(
        &self,
        cached: &PlacementRequest,
        allocation: &[u32],
        sample: &WindowSample,
        rate_band: f64,
    ) -> bool {
        if cached.operators.len() != allocation.len() || cached.edges.len() != self.edges.len() {
            return false;
        }
        for (i, (op, &k)) in cached.operators.iter().zip(allocation).enumerate() {
            if op.executors != k || op.profile != self.profiles.get(i).copied().unwrap_or_default()
            {
                return false;
            }
        }
        for (edge, &(from, to, gain)) in cached.edges.iter().zip(&self.edges) {
            if edge.from != from || edge.to != to {
                return false;
            }
            let rate = self.edge_rate(from, gain, sample);
            if (rate - edge.rate).abs() > rate_band * edge.rate.abs() {
                return false;
            }
        }
        true
    }
}

/// One shard handed to [`FleetDriver::new`]: a named backend plus its
/// latency target.
#[derive(Debug)]
pub struct FleetShardSpec<B> {
    /// Shard name (shown in timelines; should be unique).
    pub name: String,
    /// The shard's real-time constraint `Tmax` in seconds: each window the
    /// shard demands its Program 6 answer
    /// ([`scheduler::min_processors_for_target`]) for this target.
    pub t_max_secs: f64,
    /// The shard's CSP backend.
    pub backend: B,
    /// Placement metadata, for fleets that share a machine pool (optional;
    /// see [`ShardPlacementInfo`]).
    pub placement: Option<ShardPlacementInfo>,
}

impl<B> FleetShardSpec<B> {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, t_max_secs: f64, backend: B) -> Self {
        FleetShardSpec {
            name: name.into(),
            t_max_secs,
            backend,
            placement: None,
        }
    }

    /// Declares placement metadata (builder style).
    pub fn with_placement(mut self, info: ShardPlacementInfo) -> Self {
        self.placement = Some(info);
        self
    }
}

/// Error from [`FleetDriver::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum FleetDriverError {
    /// No shards were supplied.
    NoShards,
    /// The window length is not a positive finite number of seconds.
    InvalidWindow(f64),
    /// A shard's latency target is not positive and finite.
    InvalidTarget {
        /// The shard's name.
        shard: String,
        /// The offending target.
        t_max_secs: f64,
    },
    /// The smoothing configuration is invalid.
    Smoothing(crate::measurer::InvalidSmoothing),
    /// A shard's backend exposes no model operators.
    NoOperators {
        /// The shard's name.
        shard: String,
    },
}

impl fmt::Display for FleetDriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetDriverError::NoShards => write!(f, "a fleet needs at least one shard"),
            FleetDriverError::InvalidWindow(w) => {
                write!(f, "window length must be positive and finite, got {w}")
            }
            FleetDriverError::InvalidTarget { shard, t_max_secs } => write!(
                f,
                "shard {shard}: latency target must be positive and finite, got {t_max_secs}"
            ),
            FleetDriverError::Smoothing(e) => write!(f, "{e}"),
            FleetDriverError::NoOperators { shard } => {
                write!(f, "shard {shard}: backend exposes no model operators")
            }
        }
    }
}

impl std::error::Error for FleetDriverError {}

/// One shard's slice of a [`FleetWindow`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPoint {
    /// The shard's name. Recorded per window because churn
    /// ([`FleetDriver::add_shard`] / [`FleetDriver::remove_shard`]) can
    /// shift shard indices mid-run — correlate timelines by name, not
    /// position.
    pub name: String,
    /// Whether the shard's liveness lease was expired this window (no
    /// usable report for [`FleetDriverConfig::lease_windows`] consecutive
    /// windows): the shard is presumed dead, its executors are excluded
    /// from [`FleetWindow::total_granted`] and its budget is re-offered.
    pub dead: bool,
    /// Measured mean complete sojourn time in milliseconds, when any tuple
    /// finished in the window.
    pub mean_sojourn_ms: Option<f64>,
    /// Tuples the shard fully processed during the window.
    pub completed: u64,
    /// The shard's model-operator allocation at the end of the window. A
    /// rebalance applied this window counts from this window (the same
    /// convention as `DrsDriver`'s timeline), even while the backend is
    /// still charging the rebalance pause.
    pub allocation: Vec<u32>,
    /// Total executors the shard's own single-topology schedule demanded
    /// this window (`None` during warmup or while the shard has no usable
    /// model).
    pub demand: Option<u64>,
    /// Whether the negotiator capped this shard below its demand.
    pub capped: bool,
    /// Whether a rebalance was applied to this shard during the window.
    pub rebalanced: bool,
    /// Whether the negotiator's grant differed from the running allocation
    /// but the cost/benefit gate kept the current one (noise damping).
    pub gated: bool,
    /// Shard-level error this window (model fit, scheduling or a backend
    /// refusal), if any.
    pub error: Option<String>,
}

impl ShardPoint {
    /// Total executors the shard runs at the end of the window.
    pub fn granted(&self) -> u64 {
        executor_total(&self.allocation)
    }
}

/// One fleet measurement window: every shard advanced once, one central
/// negotiation round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetWindow {
    /// Window index (0-based).
    pub window: u64,
    /// Whether demand exceeded the budget this window (some plan was
    /// capped).
    pub contended: bool,
    /// Total executors in force across the fleet at the end of the
    /// window, counting live shards only — a dead shard's executors are
    /// reclaimed (see [`ShardPoint::dead`]).
    pub total_granted: u64,
    /// Per-shard records, in shard index order (independent of the order
    /// shards were advanced in).
    pub shards: Vec<ShardPoint>,
    /// Fleet-level negotiation error, if the round could not be arbitrated
    /// (every shard keeps its previous allocation).
    pub error: Option<String>,
}

/// Per-shard loop state owned by the driver.
#[derive(Debug, Clone)]
struct ShardState<B> {
    name: String,
    t_max_secs: f64,
    backend: B,
    samples: SampleBuilder,
    measurer: Measurer,
    /// Last actuation epoch issued to this shard's backend (strictly
    /// increasing; stale/duplicate commands are rejected shard-side).
    epoch: u64,
    /// Capped-backoff retry state for unacknowledged actuations.
    retry: ActuationRetry,
    /// Liveness lease expired: no usable report for `lease_windows`
    /// consecutive windows.
    dead: bool,
    /// Placement metadata (when the fleet shares a machine pool).
    placement_info: Option<ShardPlacementInfo>,
    /// The machine assignment currently in force on the backend.
    placement: Option<Placement>,
    /// Reused buffer for this shard's raw sample (fed to the measurer).
    raw: RawSample,
    /// [`Measurer::epoch`] at the last model refit; `u64::MAX` forces one.
    /// While the epoch stands still the cached `demand`/`demand_error`
    /// below are authoritative and the (allocating) refit is skipped.
    demand_epoch: u64,
    /// The demand fitted at `demand_epoch` (`None`: no usable model).
    demand: Option<ShardDemand>,
    /// The fit error at `demand_epoch`, replayed into the timeline each
    /// window while the broken estimates stand still.
    demand_error: Option<String>,
}

/// Per-window working buffers, reused across windows so the fleet loop
/// allocates nothing per shard in steady state (the per-shard `Vec`s this
/// replaces dominated the loop's allocation profile). Per-window buffers
/// are cleared at the top of every [`FleetDriver::step_with_order`]; the
/// packed demand buffer (`demands`/`demand_idx`/`modeled`) deliberately
/// persists across windows, so unchanged shards hand the incremental
/// negotiator bitwise-identical slots — its no-op fast path.
#[derive(Debug, Clone, Default)]
struct FleetScratch {
    /// Permutation check for the caller-supplied advance order.
    seen: Vec<bool>,
    /// This window's measurement report per shard (buffers reused; every
    /// entry is overwritten by `advance_into` before it is read).
    samples: Vec<WindowSample>,
    /// Shard-level error per shard.
    errors: Vec<Option<String>>,
    /// Index into `demands` per shard (`None`: no usable model).
    /// Persists across windows together with `demands`/`modeled`.
    demand_idx: Vec<Option<usize>>,
    /// Packed negotiation demands, mirroring each modeled shard's cached
    /// fit (handed to the negotiator directly — no per-window clone).
    demands: Vec<ShardDemand>,
    /// Shard index per `demands` entry.
    modeled: Vec<usize>,
    /// Shards whose model was refitted this window.
    refit: Vec<usize>,
    capped: Vec<bool>,
    gated: Vec<bool>,
    /// Shrinks the gate-aware pass promoted to urgent (holding them would
    /// starve another shard): they bypass the actuation-time gate.
    urgent: Vec<bool>,
    rebalanced: Vec<bool>,
    /// Round-1 grant withdrawn by the gate-aware pass: ignore the
    /// negotiator's slot for this shard this window.
    suppressed: Vec<bool>,
    /// Index into `round2_grants` per shard, for shards the gate-aware
    /// second round re-granted.
    round2_idx: Vec<Option<usize>>,
    round2_grants: Vec<ShardGrant>,
    /// Whether this window's round-1 negotiation succeeded (the
    /// negotiator's published grants are usable).
    negotiated_ok: bool,
    /// The allocation a rebalance put in force this window.
    applied: Vec<Option<Vec<u32>>>,
    /// The allocation in force per shard, cached once per window (buffers
    /// reused; overwritten via `current_allocation_into` before use).
    current_allocs: Vec<Vec<u32>>,
    /// Executors currently in force per shard.
    current_totals: Vec<u64>,
    /// Executor total each shard is about to run (its grant where one
    /// stands, its current total otherwise) — the actuation sort key.
    target_totals: Vec<u64>,
    actuation_order: Vec<usize>,
    /// Shards held back by the gate-aware pass.
    held: Vec<usize>,
    /// Shard index per entry of the gate-aware re-offer round.
    round_shards: Vec<usize>,
    /// This window's solved machine assignment per shard, as a slot into
    /// the warm placement state (`place`) — the placement itself stays
    /// cached there and is cloned only when a command actually carries it.
    planned_slots: Vec<Option<usize>>,
    /// The warm-start placement cache (persists across windows): cached
    /// requests, solved placements, residual pool capacity, per-shard
    /// placement epochs. See [`placement::FleetPlacementState`].
    place: placement::FleetPlacementState,
    /// Shard index → warm-state slot, persisted across windows and
    /// re-validated by name each window (churn shifts shard indices).
    place_slots: Vec<Option<usize>>,
}

impl FleetScratch {
    /// Clears the per-window buffers and sizes the per-shard ones for `n`
    /// shards. The packed demand mirror survives untouched.
    fn reset(&mut self, n: usize) {
        self.seen.clear();
        self.seen.resize(n, false);
        self.samples.resize_with(n, WindowSample::default);
        self.errors.resize_with(n, || None);
        for e in &mut self.errors {
            *e = None;
        }
        self.refit.clear();
        self.capped.clear();
        self.capped.resize(n, false);
        self.gated.clear();
        self.gated.resize(n, false);
        self.urgent.clear();
        self.urgent.resize(n, false);
        self.rebalanced.clear();
        self.rebalanced.resize(n, false);
        self.suppressed.clear();
        self.suppressed.resize(n, false);
        self.round2_idx.clear();
        self.round2_idx.resize(n, None);
        self.round2_grants.clear();
        self.negotiated_ok = false;
        self.applied.resize_with(n, || None);
        for a in &mut self.applied {
            *a = None;
        }
        self.current_allocs.resize_with(n, Vec::new);
        self.current_totals.clear();
        self.target_totals.clear();
        self.actuation_order.clear();
        self.held.clear();
        self.round_shards.clear();
        self.planned_slots.clear();
        self.planned_slots.resize(n, None);
        // `place`/`place_slots` persist across windows (the warm-start
        // placement cache); slots are re-validated by name when used.
        if self.place_slots.len() != n {
            self.place_slots.clear();
            self.place_slots.resize(n, None);
        }
    }

    /// The grant shard `i` should actuate this window, resolved across the
    /// two negotiation rounds: `None` when negotiation failed, the shard
    /// has no usable model, or the gate-aware pass withdrew the grant;
    /// the round-2 re-offer where one stands; the negotiator's published
    /// round-1 slot otherwise. Borrow-split from the driver so callers can
    /// hold the negotiator and the scratch independently.
    fn grant<'a>(&'a self, negotiator: &'a FleetNegotiator, i: usize) -> Option<&'a ShardGrant> {
        if !self.negotiated_ok || self.suppressed[i] {
            return None;
        }
        if let Some(r2) = self.round2_idx[i] {
            return Some(&self.round2_grants[r2]);
        }
        self.demand_idx
            .get(i)
            .copied()
            .flatten()
            .map(|slot| &negotiator.grants()[slot])
    }
}

/// The fleet control loop: one DRS loop per shard, contention resolved
/// centrally each window by a [`FleetNegotiator`].
///
/// See the [module docs](self) for the scheme, the degraded-channel
/// contract, and a runnable example.
#[derive(Debug, Clone)]
pub struct FleetDriver<B: CspBackend> {
    shards: Vec<ShardState<B>>,
    /// Shared copy-on-write: [`FleetDriver::checkpoint`] clones the `Arc`,
    /// not the negotiator's warm state; [`Arc::make_mut`] at the negotiate
    /// site deep-clones lazily, only when a driver that still shares the
    /// state with a checkpoint (or a restored branch) next negotiates.
    negotiator: Arc<FleetNegotiator>,
    config: FleetDriverConfig,
    machine_pool: Option<PlacementPool>,
    wasted_grants: u64,
    scratch: FleetScratch,
    timeline: Vec<FleetWindow>,
    /// Windows completed so far — the window counter even when
    /// [`FleetDriverConfig::record_timeline`] keeps `timeline` empty.
    completed_windows: u64,
    /// The most recent window's record, maintained in place (no per-window
    /// allocation in steady state).
    last_window: FleetWindow,
    /// Reused index-order buffer backing [`FleetDriver::step`].
    order_buf: Vec<usize>,
}

/// A snapshot of the full fleet control plane — negotiator, per-shard
/// measurement/epoch/backoff state, timeline, and the backends themselves
/// (including any virtual clocks a simulator backend carries).
///
/// Taken with [`FleetDriver::checkpoint`]; a checkpoint can be restored
/// any number of times ([`FleetDriver::from_checkpoint`]) so long
/// scenario sweeps branch from a common prefix instead of replaying it.
/// Continuing from a restore is bit-identical to never having stopped —
/// the checkpoint round-trip tests lock this in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCheckpoint<B: CspBackend> {
    driver: FleetDriver<B>,
}

impl<B: CspBackend> FleetCheckpoint<B> {
    /// Consumes the checkpoint, yielding a driver positioned exactly
    /// where [`FleetDriver::checkpoint`] was called.
    pub fn into_driver(self) -> FleetDriver<B> {
        self.driver
    }

    /// The fleet window index the checkpoint was taken at (number of
    /// completed windows).
    pub fn window(&self) -> u64 {
        self.driver.completed_windows
    }
}

impl<B: CspBackend> FleetDriver<B> {
    /// Creates a fleet driver over `shards`.
    ///
    /// # Errors
    ///
    /// * [`FleetDriverError::NoShards`] — empty shard list.
    /// * [`FleetDriverError::InvalidWindow`] /
    ///   [`FleetDriverError::InvalidTarget`] — non-positive or non-finite
    ///   window length or latency target.
    /// * [`FleetDriverError::NoOperators`] — a backend exposes no bolts.
    /// * [`FleetDriverError::Smoothing`] — invalid smoothing parameters.
    pub fn new(
        config: FleetDriverConfig,
        shards: Vec<FleetShardSpec<B>>,
    ) -> Result<Self, FleetDriverError> {
        if shards.is_empty() {
            return Err(FleetDriverError::NoShards);
        }
        if !config.window_secs.is_finite() || config.window_secs <= 0.0 {
            return Err(FleetDriverError::InvalidWindow(config.window_secs));
        }
        let mut states = Vec::with_capacity(shards.len());
        for spec in shards {
            states.push(Self::shard_state(&config, spec)?);
        }
        Ok(FleetDriver {
            shards: states,
            negotiator: Arc::new(FleetNegotiator::new(config.k_max)),
            config,
            machine_pool: None,
            wasted_grants: 0,
            scratch: FleetScratch::default(),
            timeline: Vec::new(),
            completed_windows: 0,
            last_window: FleetWindow {
                window: 0,
                contended: false,
                total_granted: 0,
                shards: Vec::new(),
                error: None,
            },
            order_buf: Vec::new(),
        })
    }

    /// Validates a spec and builds its fresh loop state.
    fn shard_state(
        config: &FleetDriverConfig,
        spec: FleetShardSpec<B>,
    ) -> Result<ShardState<B>, FleetDriverError> {
        if !spec.t_max_secs.is_finite() || spec.t_max_secs <= 0.0 {
            return Err(FleetDriverError::InvalidTarget {
                shard: spec.name,
                t_max_secs: spec.t_max_secs,
            });
        }
        let n_ops = spec.backend.operator_names().len();
        if n_ops == 0 {
            return Err(FleetDriverError::NoOperators { shard: spec.name });
        }
        let measurer =
            Measurer::new(n_ops, config.smoothing).map_err(FleetDriverError::Smoothing)?;
        Ok(ShardState {
            name: spec.name,
            t_max_secs: spec.t_max_secs,
            backend: spec.backend,
            samples: SampleBuilder::new(),
            measurer,
            epoch: 0,
            retry: ActuationRetry::new(config.retry_backoff_cap),
            dead: false,
            placement_info: spec.placement,
            placement: None,
            raw: RawSample {
                external_rate: 0.0,
                operators: Vec::new(),
                mean_sojourn: None,
            },
            demand_epoch: u64::MAX,
            demand: None,
            demand_error: None,
        })
    }

    /// Joins a new topology to the running fleet (churn). The shard starts
    /// with fresh measurement state: until its model warms up it reserves
    /// its current allocation out of the budget like any unmodeled shard,
    /// then negotiates normally. Returns the new shard's index (indices of
    /// existing shards are unchanged by a join).
    ///
    /// # Errors
    ///
    /// The same per-shard validation as [`FleetDriver::new`]:
    /// [`FleetDriverError::InvalidTarget`] /
    /// [`FleetDriverError::NoOperators`] / [`FleetDriverError::Smoothing`].
    pub fn add_shard(&mut self, spec: FleetShardSpec<B>) -> Result<usize, FleetDriverError> {
        let state = Self::shard_state(&self.config, spec)?;
        self.shards.push(state);
        Ok(self.shards.len() - 1)
    }

    /// Removes shard `i` from the fleet (graceful leave), returning its
    /// backend. Its executors stop counting against the budget from the
    /// next window, so the freed capacity is re-offered on the next
    /// negotiation round. Indices of later shards shift down by one —
    /// correlate timelines across churn by [`ShardPoint::name`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the fleet would become empty.
    pub fn remove_shard(&mut self, i: usize) -> B {
        assert!(
            self.shards.len() > 1,
            "a fleet needs at least one shard; cannot remove the last one"
        );
        self.shards.remove(i).backend
    }

    /// The fleet timeline recorded so far (empty when
    /// [`FleetDriverConfig::record_timeline`] is off).
    pub fn timeline(&self) -> &[FleetWindow] {
        &self.timeline
    }

    /// The most recent window's record — available even when the timeline
    /// is not being recorded. Meaningless before the first step.
    pub fn last_window(&self) -> &FleetWindow {
        &self.last_window
    }

    /// Windows completed so far (the timeline length when recording).
    pub fn completed_windows(&self) -> u64 {
        self.completed_windows
    }

    /// Whether shard `i`'s liveness lease is currently expired (see
    /// [`FleetDriverConfig::lease_windows`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_dead(&self, i: usize) -> bool {
        self.shards[i].dead
    }

    /// Shard `i`'s capped-backoff retry state (see
    /// [`crate::driver::ActuationRetry`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actuation_retry(&self, i: usize) -> &ActuationRetry {
        &self.shards[i].retry
    }

    /// The negotiator (budget introspection).
    pub fn negotiator(&self) -> &FleetNegotiator {
        &self.negotiator
    }

    /// Installs a shared machine pool: from the next window on, the driver
    /// re-solves the fleet's machine assignment every round (over the live
    /// shards that declared [`ShardPlacementInfo`]) and threads it through
    /// the control plane — a shard that rebalances carries its assignment
    /// in [`RebalancePlan::placement`], and a shard whose executor counts
    /// are unchanged but whose assignment moved receives it via
    /// [`CspBackend::apply_placement`].
    pub fn set_machine_pool(&mut self, pool: PlacementPool) {
        self.machine_pool = Some(pool);
    }

    /// The shared machine pool, when one is installed.
    pub fn machine_pool(&self) -> Option<&PlacementPool> {
        self.machine_pool.as_ref()
    }

    /// Shard `i`'s machine assignment currently in force, when the fleet
    /// shares a machine pool and the shard declared placement metadata.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_placement(&self, i: usize) -> Option<&Placement> {
        self.shards[i].placement.as_ref()
    }

    /// Cumulative per-shard greedy solves the warm placement state has
    /// performed (see [`placement::FleetPlacementState::solver_calls`]).
    /// A settled window adds zero.
    pub fn placement_solver_calls(&self) -> u64 {
        self.scratch.place.solver_calls()
    }

    /// Cumulative batch re-solves of the whole fleet's placement — the
    /// first placement-enabled window, pool changes, drift-triggered
    /// anchor solves, and explicit invalidations.
    pub fn placement_full_solves(&self) -> u64 {
        self.scratch.place.full_solves()
    }

    /// Forces the next placement-enabled window to batch re-solve every
    /// shard from scratch (see
    /// [`placement::FleetPlacementState::invalidate`]).
    pub fn invalidate_placement_cache(&mut self) {
        self.scratch.place.invalidate();
    }

    /// Grant/refuse round-trips wasted at *actuation* time: a negotiated
    /// grant discarded by the shard-side decision gate, or a grow deferred
    /// because a refused shrink left the realized fleet total too high.
    /// The gate-aware negotiation pass exists to keep this counter flat —
    /// refusals are discovered while the budget is still being arbitrated,
    /// so the surplus lands with a shard that will actually actuate it.
    pub fn wasted_grants(&self) -> u64 {
        self.wasted_grants
    }

    /// The configuration.
    pub fn config(&self) -> &FleetDriverConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard names, in shard index order.
    pub fn shard_names(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.name.as_str()).collect()
    }

    /// Shard `i`'s backend.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn backend(&self, i: usize) -> &B {
        &self.shards[i].backend
    }

    /// Mutable access to shard `i`'s backend (e.g. to inject workload
    /// drift mid-run).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn backend_mut(&mut self, i: usize) -> &mut B {
        &mut self.shards[i].backend
    }

    /// Runs `windows` fleet windows (shards advanced in index order),
    /// returning the new timeline entries.
    pub fn run_windows(&mut self, windows: u64) -> &[FleetWindow] {
        let first_new = self.timeline.len();
        for _ in 0..windows {
            self.step();
        }
        &self.timeline[first_new..]
    }

    /// Runs one fleet window, advancing shards in index order.
    pub fn step(&mut self) -> &FleetWindow {
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend(0..self.shards.len());
        self.step_with_order(&order);
        self.order_buf = order;
        &self.last_window
    }

    /// Runs one fleet window, advancing the shard backends in the given
    /// order. Because every shard runs on its own isolated clock, the
    /// interleaving must not affect any shard's measurements — the
    /// determinism tests lock this in.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..shard_count()`.
    pub fn step_with_order(&mut self, order: &[usize]) -> &FleetWindow {
        let n = self.shards.len();
        // The scratch buffers live on the driver so the loop allocates
        // nothing per shard in steady state; taken out for the duration of
        // the step to keep the borrow checker happy, put back at the end.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.reset(n);
        assert_eq!(order.len(), n, "order must cover every shard exactly once");
        for &i in order {
            assert!(
                i < n && !scratch.seen[i],
                "order must be a permutation of 0..{n}, got {order:?}"
            );
            scratch.seen[i] = true;
        }

        // 1. Advance every shard one window, in the caller's order. The
        //    sample buffers are reused window over window.
        for &i in order {
            self.shards[i]
                .backend
                .advance_into(self.config.window_secs, &mut scratch.samples[i]);
        }

        // 2. Feed the measurers (shard index order; each stream is
        //    per-shard, so this is order-independent too). Stale evidence
        //    enters the smoother discounted by `stale_decay^age`, and a
        //    run of `lease_windows` fully-missed reports expires the
        //    shard's liveness lease; the first usable report renews it.
        for (shard, sample) in self.shards.iter_mut().zip(&scratch.samples) {
            let ShardState {
                samples,
                measurer,
                raw,
                ..
            } = shard;
            if samples.build_into(sample, raw) {
                let weight = samples.weight(self.config.stale_decay);
                measurer.observe_weighted(raw, weight);
            }
            shard.dead = self.config.lease_windows > 0
                && shard.samples.missed_windows() >= self.config.lease_windows;
        }

        // 2b. Cache each shard's running allocation once for the window
        //     (every later phase reads these instead of re-asking the
        //     backend and re-allocating the answer).
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .backend
                .current_allocation_into(&mut scratch.current_allocs[i]);
            scratch
                .current_totals
                .push(executor_total(&scratch.current_allocs[i]));
        }

        let window = self.completed_windows;
        let mut fleet_error = None;
        let mut contended = false;

        if window >= self.config.warmup_windows {
            // 3. Each shard's own single-topology demand. The (allocating)
            //    model refit runs only when the shard's smoothed estimates
            //    actually moved (`Measurer::epoch`); a steady shard reuses
            //    its cached fit, which also hands the negotiator a
            //    bitwise-identical demand — its no-op fast path. A dead
            //    shard submits none: its (stale) model must not keep
            //    claiming budget for a machine that is gone.
            for (i, shard) in self.shards.iter_mut().enumerate() {
                if shard.dead {
                    // Forget the cache so a revived shard refits at once.
                    shard.demand_epoch = u64::MAX;
                    shard.demand = None;
                    shard.demand_error = None;
                    continue;
                }
                let epoch = shard.measurer.epoch();
                if epoch != shard.demand_epoch {
                    shard.demand_epoch = epoch;
                    shard.demand_error = None;
                    scratch.refit.push(i);
                    shard.demand = match shard.measurer.estimates() {
                        None => None,
                        Some(est) => match PerformanceModel::new(&est.to_model_inputs()) {
                            Ok(model) => {
                                match shard_demand(&model, shard.t_max_secs, self.config.k_max) {
                                    Ok(desired) => Some(ShardDemand {
                                        network: model.network().clone(),
                                        desired,
                                    }),
                                    Err(e) => {
                                        shard.demand_error = Some(e.to_string());
                                        None
                                    }
                                }
                            }
                            Err(e) => {
                                shard.demand_error = Some(e.to_string());
                                None
                            }
                        },
                    };
                }
                if let Some(e) = &shard.demand_error {
                    scratch.errors[i] = Some(e.clone());
                }
            }

            // 3b. Mirror the per-shard caches into the persistent packed
            //     demand buffer. When the modeled set is unchanged, only
            //     the slots refitted this window are rewritten (in place);
            //     churn in the modeled set repacks, reusing the buffers.
            let mut stable = scratch.demand_idx.len() == n;
            if stable {
                let mut next = 0usize;
                for i in 0..n {
                    match (self.shards[i].demand.is_some(), scratch.demand_idx[i]) {
                        (true, Some(slot)) if slot == next => next += 1,
                        (false, None) => {}
                        _ => {
                            stable = false;
                            break;
                        }
                    }
                }
                stable = stable && next == scratch.modeled.len();
            }
            if stable {
                for idx in 0..scratch.refit.len() {
                    let i = scratch.refit[idx];
                    if let (Some(slot), Some(d)) =
                        (scratch.demand_idx[i], self.shards[i].demand.as_ref())
                    {
                        scratch.demands[slot].clone_from(d);
                    }
                }
            } else {
                scratch.modeled.clear();
                scratch.demand_idx.clear();
                scratch.demand_idx.resize(n, None);
                let mut slot = 0usize;
                for i in 0..n {
                    let Some(d) = self.shards[i].demand.as_ref() else {
                        continue;
                    };
                    if slot < scratch.demands.len() {
                        scratch.demands[slot].clone_from(d);
                    } else {
                        scratch.demands.push(d.clone());
                    }
                    scratch.demand_idx[i] = Some(slot);
                    scratch.modeled.push(i);
                    slot += 1;
                }
                scratch.demands.truncate(slot);
            }

            // 4. Central arbitration — warm-start incremental: per-window
            //    cost is O(changed slots + executor moves), zero heap
            //    allocations when nothing changed. Shards without a usable
            //    model keep their current allocation; their executors are
            //    reserved out of the budget before the others negotiate.
            //    Dead shards reserve nothing — lease expiry is precisely
            //    the signal that their grants are reclaimed and re-offered.
            if !scratch.modeled.is_empty() {
                let reserved: u64 = (0..n)
                    .filter(|&i| scratch.demand_idx[i].is_none() && !self.shards[i].dead)
                    .map(|i| scratch.current_totals[i])
                    .sum();
                let budget = u32::try_from(u64::from(self.config.k_max).saturating_sub(reserved))
                    .expect("reserved budget is clamped below k_max, which fits in u32");
                // `make_mut` only clones when a checkpoint still shares
                // the warm state; a driver that never branched mutates in
                // place with no per-window cost.
                match Arc::make_mut(&mut self.negotiator)
                    .negotiate_within_incremental(budget, &scratch.demands)
                {
                    Ok(()) => {
                        scratch.negotiated_ok = true;
                        let grants = self.negotiator.grants();
                        contended = grants.iter().any(|g| g.capped);
                        for (grant, &shard) in grants.iter().zip(&scratch.modeled) {
                            scratch.capped[shard] = grant.capped;
                        }
                        // 4b. Gate-aware wobble pass: consult each shard's
                        //     decision gate *now* and re-arbitrate around
                        //     refusals, instead of discovering them at
                        //     actuation time.
                        self.gate_aware_pass(&mut scratch, budget, contended);
                    }
                    Err(e) => fleet_error = Some(e.to_string()),
                }
            }

            // 4c. With a shared machine pool installed, solve the fleet's
            //     machine assignment from the allocations about to be run.
            self.plan_placements(&mut scratch, &mut fleet_error);

            // 5. Actuate: rebalance every shard whose grant differs from
            //    what it currently runs — shrinks before grows, and every
            //    grow is re-checked against the *realized* fleet total
            //    first, so a refused shrink (e.g. a shard still mid-pause)
            //    can never combine with a successful grow to push the
            //    fleet over `Kmax` against a real pool.
            //
            // Dead shards' executors are ghosts (the machine is gone):
            // they neither occupy the pool nor block grows.
            let mut fleet_total: u64 = scratch
                .current_totals
                .iter()
                .zip(&self.shards)
                .filter(|(_, s)| !s.dead)
                .map(|(&t, _)| t)
                .sum();
            {
                // Distinct from the caller's `order` (the measurement
                // interleaving): actuation always shrinks first. The
                // unstable sort is deterministic — every key ends in the
                // unique shard index — and, unlike the stable sort, does
                // not allocate its merge buffer.
                for i in 0..n {
                    let target = scratch
                        .grant(&self.negotiator, i)
                        .map_or(scratch.current_totals[i], ShardGrant::total);
                    scratch.target_totals.push(target);
                }
                let FleetScratch {
                    actuation_order,
                    target_totals,
                    current_totals,
                    ..
                } = &mut scratch;
                actuation_order.extend(0..n);
                actuation_order
                    .sort_unstable_by_key(|&i| (target_totals[i] > current_totals[i], i));
            }
            for slot in 0..n {
                let i = scratch.actuation_order[slot];
                {
                    let Some(grant) = scratch.grant(&self.negotiator, i) else {
                        continue;
                    };
                    if grant.allocation == scratch.current_allocs[i] {
                        continue;
                    }
                }
                // Channel in backoff after an unacknowledged actuation:
                // hold this window's command instead of spamming the
                // (evidently degraded) control channel.
                if !self.shards[i].retry.ready(window) {
                    scratch.errors[i] = Some(format!(
                        "actuation deferred: backoff after timeout (next attempt in {} windows)",
                        self.shards[i].retry.holdoff(window)
                    ));
                    continue;
                }
                // Per-shard cost/benefit gate (paper App. B-B), now a
                // safety net behind the gate-aware negotiation pass:
                // anything refused here is a wasted grant/refuse
                // round-trip the pass failed to predict. Contended and
                // promoted shrinks bypass the gate — capped shards are
                // starving and the freed capacity must actually flow.
                let urgent_shrink = (contended || scratch.urgent[i])
                    && scratch.target_totals[i] < scratch.current_totals[i];
                let refused = !urgent_shrink && {
                    let grant = scratch
                        .grant(&self.negotiator, i)
                        .expect("resolved just above");
                    self.gate_refuses(i, grant, &scratch.current_allocs[i], &scratch)
                };
                if refused {
                    scratch.gated[i] = true;
                    self.wasted_grants += 1;
                    continue;
                }
                if scratch.target_totals[i] > scratch.current_totals[i]
                    && fleet_total - scratch.current_totals[i] + scratch.target_totals[i]
                        > u64::from(self.config.k_max)
                {
                    // An earlier shrink was refused and its executors are
                    // still in force: defer this grow to a later window
                    // rather than over-commit the pool.
                    scratch.errors[i] = Some(format!(
                        "grow to {} deferred: a refused shrink left the fleet at {} of {} executors",
                        scratch.target_totals[i],
                        fleet_total,
                        self.config.k_max
                    ));
                    self.wasted_grants += 1;
                    continue;
                }
                // The grant leaves the negotiator's warm state by clone
                // exactly once, here — on a window that actually moves
                // this shard.
                let allocation = scratch
                    .grant(&self.negotiator, i)
                    .expect("resolved just above")
                    .allocation
                    .clone();
                let placement = scratch.planned_slots[i]
                    .take()
                    .map(|slot| scratch.place.placement(slot).clone());
                // Every command carries a fresh, strictly increasing
                // epoch: a backend behind a delaying/duplicating channel
                // rejects anything stale instead of double-applying it.
                let shard = &mut self.shards[i];
                shard.epoch += 1;
                let plan = RebalancePlan {
                    allocation,
                    pause_secs: self.config.pause_secs,
                    epoch: shard.epoch,
                    placement,
                };
                match shard.backend.apply(&plan) {
                    Ok(applied) => {
                        shard.retry.on_ack();
                        scratch.rebalanced[i] = true;
                        let applied_total = executor_total(&applied.allocation);
                        fleet_total = fleet_total - scratch.current_totals[i] + applied_total;
                        // The machine assignment rode the rebalance plan;
                        // it is in force only if the backend actually put
                        // the matching executor counts in force.
                        if let Some(p) = plan.placement {
                            if p.allocation_matches(&applied.allocation) {
                                shard.placement = Some(p);
                            }
                        }
                        // A backend may adjust what it puts in force (and a
                        // simulator defers the swap until its pause ends):
                        // the timeline must carry the allocation the
                        // rebalance put in force, as `DrsDriver` does —
                        // otherwise a contended window would pair this
                        // round's demand/capped flags with last round's
                        // allocations.
                        scratch.applied[i] = Some(applied.allocation);
                    }
                    Err(e) => {
                        // A timeout means the command or its ack vanished:
                        // back off before retrying. Any other error is an
                        // acknowledgement (the channel works, the shard
                        // refused), so the backoff resets. Either way the
                        // backend is believed to keep its previous
                        // allocation; the freed/claimed capacity is
                        // re-offered next window.
                        if matches!(e, BackendError::Timeout(_)) {
                            shard.retry.on_timeout(window);
                        } else {
                            shard.retry.on_ack();
                        }
                        scratch.errors[i] = Some(e.to_string());
                    }
                }
            }

            // 5b. Placement-only moves: a shard whose executor counts did
            //     not change this window can still need its machine
            //     assignment refreshed (fleet-wide traffic shifted the
            //     shared pool). Those assignments go through the dedicated
            //     control-plane call instead of a full rebalance.
            for i in 0..n {
                if scratch.rebalanced[i] {
                    continue;
                }
                let Some(slot) = scratch.planned_slots[i].take() else {
                    continue;
                };
                let p = scratch.place.placement(slot);
                let shard = &mut self.shards[i];
                if shard.dead || shard.placement.as_ref() == Some(p) {
                    continue;
                }
                // A deferred or refused grant leaves the assignment solved
                // for an allocation the backend never adopted: drop it and
                // re-solve next window. (Not rebalanced this window, so
                // the cached allocation is still what the backend runs.)
                if !p.allocation_matches(&scratch.current_allocs[i]) {
                    continue;
                }
                match shard.backend.apply_placement(p) {
                    Ok(()) => shard.placement = Some(p.clone()),
                    Err(e) => {
                        if scratch.errors[i].is_none() {
                            scratch.errors[i] = Some(format!("placement: {e}"));
                        }
                    }
                }
            }
        }

        // 6. Record the window in place: the applied allocation where a
        //    rebalance fired this window, the cached live allocation
        //    otherwise. `last_window` is updated field by field (steady
        //    state allocates nothing); the timeline, when recorded, takes
        //    a clone.
        self.last_window.window = window;
        self.last_window.contended = contended;
        self.last_window.error = fleet_error;
        self.last_window.shards.resize_with(n, || ShardPoint {
            name: String::new(),
            dead: false,
            mean_sojourn_ms: None,
            completed: 0,
            allocation: Vec::new(),
            demand: None,
            capped: false,
            rebalanced: false,
            gated: false,
            error: None,
        });
        let mut total_granted = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let point = &mut self.last_window.shards[i];
            point.name.clone_from(&shard.name);
            point.dead = shard.dead;
            let sample = &scratch.samples[i];
            point.mean_sojourn_ms = sample.mean_sojourn.map(|s| s * 1e3);
            point.completed = sample.completed;
            match scratch.applied[i].take() {
                Some(a) => point.allocation = a,
                None => point.allocation.clone_from(&scratch.current_allocs[i]),
            }
            point.demand = scratch
                .demand_idx
                .get(i)
                .copied()
                .flatten()
                .map(|slot| executor_total(&scratch.demands[slot].desired));
            point.capped = scratch.capped[i];
            point.rebalanced = scratch.rebalanced[i];
            point.gated = scratch.gated[i];
            point.error = scratch.errors[i].take();
            if !point.dead {
                // Dead shards' grants are reclaimed — only live executors
                // occupy the pool.
                total_granted += executor_total(&point.allocation);
            }
        }
        self.last_window.total_granted = total_granted;
        self.completed_windows += 1;
        self.scratch = scratch;
        if self.config.record_timeline {
            self.timeline.push(self.last_window.clone());
            self.timeline.last().expect("just pushed")
        } else {
            &self.last_window
        }
    }

    /// Whether shard `i`'s own cost/benefit gate (paper App. B-B) refuses
    /// `grant` given what it currently runs. `false` when the shard has no
    /// usable model this window.
    fn gate_refuses(
        &self,
        i: usize,
        grant: &ShardGrant,
        current: &[u32],
        scratch: &FleetScratch,
    ) -> bool {
        let Some(slot) = scratch.demand_idx[i] else {
            return false;
        };
        let network = &scratch.demands[slot].network;
        let sample = &scratch.samples[i];
        let verdict = decision::decide(
            &self.config.decision,
            &DecisionInputs {
                current_estimate: network.expected_sojourn(current).unwrap_or(f64::INFINITY),
                candidate_estimate: network
                    .expected_sojourn(&grant.allocation)
                    .unwrap_or(f64::INFINITY),
                current_allocation: current.to_vec(),
                candidate_allocation: grant.allocation.clone(),
                pause_secs: self.config.pause_secs,
                t_max: Some(self.shards[i].t_max_secs),
                measured_sojourn: sample.mean_sojourn,
            },
        );
        !verdict.is_rebalance()
    }

    /// The gate-aware wobble pass (phase 4b of the window): consult every
    /// modeled shard's decision gate on its freshly negotiated grant and
    /// arbitrate around the refusals *now*, instead of discovering them at
    /// actuation time and stranding the capacity for a window.
    ///
    /// Refused shards are held at their current allocation and the rest
    /// re-negotiate within the realized budget (what the held shards keep
    /// in force comes off the top). Two outcomes:
    ///
    /// * the re-negotiation is uncontended — the holds stand (`gated`),
    ///   and every remaining grant fits the realized pool, so nothing is
    ///   deferred at actuation;
    /// * the re-negotiation is capped or infeasible — the "wobble" was
    ///   load-bearing after all (holding it starves another shard), so the
    ///   round-1 grants stand and the held shrinks are promoted to urgent:
    ///   they bypass the actuation gate exactly like contended shrinks.
    fn gate_aware_pass(&self, scratch: &mut FleetScratch, budget: u32, contended: bool) {
        for slot in 0..scratch.modeled.len() {
            let i = scratch.modeled[slot];
            let grant = &self.negotiator.grants()[slot];
            if grant.allocation == scratch.current_allocs[i] {
                continue;
            }
            if contended && grant.total() < scratch.current_totals[i] {
                continue; // contended shrinks actuate unconditionally
            }
            if self.gate_refuses(i, grant, &scratch.current_allocs[i], scratch) {
                scratch.held.push(i);
            }
        }
        if scratch.held.is_empty() {
            return;
        }
        if scratch.held.len() == scratch.modeled.len() {
            for idx in 0..scratch.held.len() {
                let i = scratch.held[idx];
                scratch.gated[i] = true;
                scratch.suppressed[i] = true;
            }
            return;
        }
        let held_reserved: u64 = scratch
            .held
            .iter()
            .map(|&i| scratch.current_totals[i])
            .sum();
        let budget2 =
            u32::try_from(u64::from(budget).saturating_sub(held_reserved)).unwrap_or(u32::MAX);
        // The re-offer round runs over *borrowed* demands through the
        // stateless from-scratch path: a subset round must not disturb the
        // warm per-slot state the incremental negotiator carries for the
        // full fleet.
        let result = {
            let FleetScratch {
                demands,
                modeled,
                held,
                round_shards,
                ..
            } = &mut *scratch;
            let mut round_refs: Vec<&ShardDemand> = Vec::with_capacity(modeled.len() - held.len());
            for slot in 0..modeled.len() {
                let i = modeled[slot];
                if held.contains(&i) {
                    continue;
                }
                round_shards.push(i);
                round_refs.push(&demands[slot]);
            }
            FleetNegotiator::negotiate_scratch(budget2, &round_refs)
        };
        match result {
            Ok(granted) if granted.iter().all(|g| !g.capped) => {
                for idx in 0..scratch.held.len() {
                    let i = scratch.held[idx];
                    scratch.gated[i] = true;
                    scratch.suppressed[i] = true;
                }
                scratch.round2_grants = granted;
                for (r2, &i) in scratch.round_shards.iter().enumerate() {
                    scratch.capped[i] = scratch.round2_grants[r2].capped;
                    scratch.round2_idx[i] = Some(r2);
                }
            }
            _ => {
                for idx in 0..scratch.held.len() {
                    let i = scratch.held[idx];
                    scratch.urgent[i] = true;
                }
            }
        }
    }

    /// Phase 4c: with a shared machine pool installed, refresh the warm
    /// placement state ([`placement::FleetPlacementState`]) from the
    /// allocation each live metadata-carrying shard is about to run (its
    /// grant where one stands, its current executors otherwise) and this
    /// window's measured edge rates, then replan. Only shards whose
    /// inputs actually changed — executor counts, resource profiles, or
    /// edge rates beyond [`FleetDriverConfig::placement_rate_band`] — are
    /// re-solved, against the pool's residual capacity; a settled window
    /// performs zero solver calls and zero allocations. Solve order is
    /// sorted-name on every path, so the assignment stays independent of
    /// shard indices and advance order, and the drift-bounded batch
    /// re-solve inside `replan` keeps sequential repair anchored to what
    /// [`placement::plan`] would produce.
    fn plan_placements(&self, scratch: &mut FleetScratch, fleet_error: &mut Option<String>) {
        let Some(pool) = &self.machine_pool else {
            return;
        };
        // The warm state and its slot maps step out of the scratch so the
        // grant/sample lookups below can keep borrowing it immutably.
        let mut place = std::mem::take(&mut scratch.place);
        let mut place_slots = std::mem::take(&mut scratch.place_slots);
        let mut planned_slots = std::mem::take(&mut scratch.planned_slots);
        place.begin_window();
        place.sync_pool(pool);
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.dead {
                // Not marked seen: the sweep refunds its machine usage
                // (its executors are ghosts until the lease renews).
                continue;
            }
            let Some(info) = &shard.placement_info else {
                continue;
            };
            // Cached slot, re-validated by name (churn shifts indices);
            // lookup/insert only on mismatch.
            let slot = match place_slots[i] {
                Some(s) if place.slot_name(s) == shard.name => s,
                _ => place
                    .slot_of(&shard.name)
                    .unwrap_or_else(|| place.insert(&shard.name)),
            };
            place_slots[i] = Some(slot);
            let target: &[u32] = match scratch.grant(&self.negotiator, i) {
                Some(grant) => &grant.allocation,
                None => &scratch.current_allocs[i],
            };
            let sample = &scratch.samples[i];
            if !info.request_matches(
                place.request(slot),
                target,
                sample,
                self.config.placement_rate_band,
            ) {
                info.request_into(place.touch(slot), target, sample);
            }
            place.mark_seen(slot);
            planned_slots[i] = Some(slot);
        }
        if let Err(e) = place.replan() {
            // No assignment is trusted this window; the warm state batch
            // re-solves on the next one.
            for s in planned_slots.iter_mut() {
                *s = None;
            }
            if fleet_error.is_none() {
                *fleet_error = Some(format!("placement: {e}"));
            }
        }
        scratch.place = place;
        scratch.place_slots = place_slots;
        scratch.planned_slots = planned_slots;
    }
}

impl<B: CspBackend + Clone> FleetDriver<B> {
    /// Snapshots the full fleet state (see [`FleetCheckpoint`]). Cheap
    /// relative to re-running a scenario prefix: per-shard state and the
    /// backends clone, but the negotiator's warm state is shared
    /// copy-on-write — the checkpoint holds the same `Arc`, and whichever
    /// driver negotiates next pays the one lazy clone. A branching sweep
    /// that restores many times from one checkpoint clones the warm state
    /// once per *diverging* branch, not once per restore.
    pub fn checkpoint(&self) -> FleetCheckpoint<B> {
        FleetCheckpoint {
            driver: self.clone(),
        }
    }

    /// Restores a driver from a checkpoint without consuming it, so one
    /// common prefix can branch into many scenario continuations.
    /// Continuing from the restored driver is bit-identical to continuing
    /// from the original at the moment [`FleetDriver::checkpoint`] ran.
    pub fn from_checkpoint(checkpoint: &FleetCheckpoint<B>) -> Self {
        checkpoint.driver.clone()
    }
}

/// The M/M/k-consistent "measured" sojourn a mock shard backend should
/// report for its current rates and allocation — an unstable queue
/// measures "very slow" (5 s), never infinite. Mock backends feeding the
/// per-shard decision gate must use this (rather than a constant) or the
/// gate sees a world no live engine produces: a permanently violated
/// target freezes every scale-down behind the "never shrink a struggling
/// shard" rule. Test support, not part of the public API surface.
#[doc(hidden)]
pub fn mmk_measured_sojourn(rate: f64, mu: f64, servers: u32) -> f64 {
    let predicted = drs_queueing::erlang::MmKQueue::new(rate, mu)
        .map(|q| q.expected_sojourn(servers))
        .unwrap_or(f64::INFINITY);
    if predicted.is_finite() {
        predicted
    } else {
        5.0
    }
}

/// One shard's single-topology schedule: its Program 6 answer for `t_max`,
/// falling back to spending the whole budget (Algorithm 1) when the target
/// cannot be met within it.
fn shard_demand(
    model: &PerformanceModel,
    t_max: f64,
    k_max: u32,
) -> Result<Vec<u32>, ScheduleError> {
    match scheduler::min_processors_for_target(model.network(), t_max, k_max) {
        Ok(a) => Ok(a.into_vec()),
        Err(ScheduleError::CapExceeded { .. } | ScheduleError::TargetUnreachable { .. }) => {
            scheduler::assign_processors(model.network(), k_max).map(|a| a.into_vec())
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{AppliedRebalance, BackendError, CspBackend, OperatorSample, WindowSample};

    /// Fixed-rate mock shard; rate can be changed mid-run. Reports the
    /// M/M/k-consistent measured sojourn via [`mmk_measured_sojourn`] so
    /// the decision gate sees the same world a live engine would. Can be
    /// silenced (crash: reports stop) and can time out applies (lost
    /// command/ack); records every epoch it is commanded with.
    #[derive(Debug, Clone)]
    struct StaticShard {
        rate: f64,
        mu: f64,
        allocation: Vec<u32>,
        fail_applies: usize,
        timeout_applies: usize,
        silent: bool,
        seen_epochs: Vec<u64>,
        placement_calls: usize,
    }

    impl StaticShard {
        fn new(rate: f64, mu: f64, k: u32) -> Self {
            StaticShard {
                rate,
                mu,
                allocation: vec![k],
                fail_applies: 0,
                timeout_applies: 0,
                silent: false,
                seen_epochs: Vec::new(),
                placement_calls: 0,
            }
        }
    }

    impl CspBackend for StaticShard {
        fn backend_name(&self) -> &'static str {
            "static"
        }
        fn operator_names(&self) -> Vec<String> {
            vec!["work".to_owned()]
        }
        fn current_allocation(&self) -> Vec<u32> {
            self.allocation.clone()
        }
        fn advance(&mut self, _window_secs: f64) -> WindowSample {
            if self.silent {
                return WindowSample {
                    external_rate: None,
                    operators: vec![OperatorSample {
                        arrival_rate: None,
                        service_rate: None,
                    }],
                    mean_sojourn: None,
                    std_sojourn: None,
                    completed: 0,
                };
            }
            let measured = mmk_measured_sojourn(self.rate, self.mu, self.allocation[0]);
            WindowSample {
                external_rate: Some(self.rate),
                operators: vec![OperatorSample {
                    arrival_rate: Some(self.rate),
                    service_rate: Some(self.mu),
                }],
                mean_sojourn: Some(measured),
                std_sojourn: None,
                completed: 100,
            }
        }
        fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError> {
            self.seen_epochs.push(plan.epoch);
            if self.timeout_applies > 0 {
                self.timeout_applies -= 1;
                return Err(BackendError::Timeout("command lost".to_owned()));
            }
            if self.fail_applies > 0 {
                self.fail_applies -= 1;
                return Err(BackendError::RebalanceUnavailable(
                    "pause in progress".to_owned(),
                ));
            }
            self.allocation = plan.allocation.clone();
            Ok(AppliedRebalance {
                allocation: plan.allocation.clone(),
                pause_secs: plan.pause_secs,
            })
        }
        fn apply_placement(&mut self, _placement: &Placement) -> Result<(), BackendError> {
            self.placement_calls += 1;
            Ok(())
        }
    }

    fn net(lambda: f64, mu: f64) -> JacksonNetwork {
        JacksonNetwork::from_rates(lambda, &[(lambda, mu)]).unwrap()
    }

    fn demand(lambda: f64, mu: f64, desired: Vec<u32>) -> ShardDemand {
        ShardDemand {
            network: net(lambda, mu),
            desired,
        }
    }

    #[test]
    fn uncontended_grants_equal_single_topology_schedules() {
        let negotiator = FleetNegotiator::new(20);
        let demands = vec![demand(40.0, 10.0, vec![6]), demand(20.0, 10.0, vec![4])];
        let grants = negotiator.negotiate(&demands).unwrap();
        assert_eq!(grants[0].allocation, vec![6]);
        assert_eq!(grants[1].allocation, vec![4]);
        assert!(grants.iter().all(|g| !g.capped));
    }

    #[test]
    fn contended_grants_spend_exactly_the_budget() {
        let negotiator = FleetNegotiator::new(12);
        // Desired 9 + 7 = 16 > 12; min stable 5 + 3 = 8 ≤ 12.
        let demands = vec![demand(45.0, 10.0, vec![9]), demand(25.0, 10.0, vec![7])];
        let grants = negotiator.negotiate(&demands).unwrap();
        let total: u64 = grants.iter().map(ShardGrant::total).sum();
        assert_eq!(total, 12);
        // Nobody below the minimum stable allocation.
        assert!(grants[0].allocation[0] >= 5);
        assert!(grants[1].allocation[0] >= 3);
        // At least one shard fell short of its desire.
        assert!(grants.iter().any(|g| g.capped));
    }

    #[test]
    fn contention_favours_the_higher_marginal_benefit() {
        let negotiator = FleetNegotiator::new(10);
        // Same service law; shard 0 carries 3x the traffic, so its marginal
        // benefits dominate and it must end up with the bigger share.
        let demands = vec![demand(60.0, 10.0, vec![10]), demand(20.0, 10.0, vec![8])];
        let grants = negotiator.negotiate(&demands).unwrap();
        assert!(grants[0].allocation[0] > grants[1].allocation[0]);
    }

    #[test]
    fn insufficient_budget_detected() {
        let negotiator = FleetNegotiator::new(6);
        // Min stables: 5 + 3 = 8 > 6.
        let demands = vec![demand(45.0, 10.0, vec![9]), demand(25.0, 10.0, vec![7])];
        let err = negotiator.negotiate(&demands).unwrap_err();
        assert_eq!(
            err,
            FleetError::InsufficientBudget {
                required: 8,
                available: 6
            }
        );
    }

    #[test]
    fn desired_below_min_stable_is_raised_in_both_branches() {
        // λ/µ = 4.5 needs 5 executors; a demand of 1 is unstable and must
        // be floored at 5 — with room to spare (uncontended path)…
        let negotiator = FleetNegotiator::new(20);
        let grants = negotiator
            .negotiate(&[demand(45.0, 10.0, vec![1])])
            .unwrap();
        assert_eq!(grants[0].allocation, vec![5]);
        assert!(!grants[0].capped);
        // …and under contention (second shard forces the greedy branch).
        let negotiator = FleetNegotiator::new(9);
        let demands = vec![demand(45.0, 10.0, vec![1]), demand(25.0, 10.0, vec![7])];
        let grants = negotiator.negotiate(&demands).unwrap();
        assert!(grants[0].allocation[0] >= 5);
        let total: u64 = grants.iter().map(ShardGrant::total).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn demand_length_mismatch_detected() {
        let negotiator = FleetNegotiator::new(10);
        let demands = vec![demand(10.0, 10.0, vec![2, 2])];
        assert!(matches!(
            negotiator.negotiate(&demands).unwrap_err(),
            FleetError::DemandLength { shard: 0, .. }
        ));
    }

    #[test]
    fn negotiation_is_deterministic() {
        let negotiator = FleetNegotiator::new(14);
        let demands = vec![
            demand(45.0, 10.0, vec![9]),
            demand(45.0, 10.0, vec![9]),
            demand(25.0, 10.0, vec![7]),
        ];
        let a = negotiator.negotiate(&demands).unwrap();
        let b = negotiator.negotiate(&demands).unwrap();
        assert_eq!(a, b);
    }

    fn fleet(k_max: u32, shards: Vec<(&str, f64, StaticShard)>) -> FleetDriver<StaticShard> {
        let mut config = FleetDriverConfig::new(k_max);
        config.warmup_windows = 1;
        config.window_secs = 1.0;
        FleetDriver::new(
            config,
            shards
                .into_iter()
                .map(|(name, t_max, backend)| FleetShardSpec::new(name, t_max, backend))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn driver_arbitrates_within_budget_and_records_timeline() {
        let mut f = fleet(
            12,
            vec![
                ("hot", 0.11, StaticShard::new(60.0, 10.0, 7)),
                ("cold", 0.11, StaticShard::new(30.0, 10.0, 4)),
            ],
        );
        f.run_windows(4);
        assert_eq!(f.timeline().len(), 4);
        let last = f.timeline().last().unwrap();
        assert!(last.total_granted <= 12);
        assert!(last.contended, "0.11 s targets at these loads must contend");
        assert!(last.shards.iter().any(|s| s.capped));
        // The hot shard out-ranks the cold one under contention.
        assert!(last.shards[0].allocation[0] > last.shards[1].allocation[0]);
        // Demands are recorded once the model warms up.
        assert!(last.shards.iter().all(|s| s.demand.is_some()));
        assert_eq!(f.shard_names(), vec!["hot", "cold"]);
    }

    #[test]
    fn warmup_windows_do_not_negotiate() {
        let mut f = fleet(12, vec![("only", 0.5, StaticShard::new(30.0, 10.0, 4))]);
        f.step();
        let w = &f.timeline()[0];
        assert!(w.shards[0].demand.is_none());
        assert!(!w.shards[0].rebalanced);
        assert_eq!(w.shards[0].allocation, vec![4]);
    }

    #[test]
    fn freed_capacity_is_reoffered_when_demand_drops() {
        let mut f = fleet(
            12,
            vec![
                ("a", 0.11, StaticShard::new(60.0, 10.0, 7)),
                ("b", 0.11, StaticShard::new(30.0, 10.0, 5)),
            ],
        );
        f.run_windows(4);
        let before = f.timeline().last().unwrap().shards[1].granted();
        assert!(f.timeline().last().unwrap().contended);
        // Shard a's load collapses: its demand shrinks and the freed
        // executors flow to shard b on later windows (α-smoothing takes a
        // couple of rounds to fade the old rate out).
        f.backend_mut(0).rate = 5.0;
        f.run_windows(6);
        let last = f.timeline().last().unwrap();
        assert!(
            last.shards[1].granted() > before,
            "shard b should inherit freed capacity: {} vs {before}",
            last.shards[1].granted()
        );
        assert!(last.total_granted <= 12);
    }

    #[test]
    fn backend_refusal_is_recorded_and_retried() {
        let mut hot = StaticShard::new(60.0, 10.0, 7);
        hot.fail_applies = 1;
        let mut f = fleet(
            12,
            vec![
                ("hot", 0.11, hot),
                ("cold", 0.11, StaticShard::new(30.0, 10.0, 4)),
            ],
        );
        f.run_windows(4);
        let refused = f
            .timeline()
            .iter()
            .flat_map(|w| &w.shards)
            .find(|s| s.error.is_some())
            .expect("the refused apply must be recorded");
        assert!(refused
            .error
            .as_deref()
            .unwrap()
            .contains("rebalance unavailable"));
        // A later window retries and the fleet still lands within budget.
        assert!(f.timeline().last().unwrap().total_granted <= 12);
    }

    #[test]
    fn refused_shrink_defers_grows_instead_of_overcommitting() {
        // Shard a runs 8 but now only needs ~4; shard b runs 4 and wants 9.
        // a's shrink is refused (mid-pause): applying b's grow anyway would
        // put 17 executors on a 12-processor pool. The driver must defer
        // the grow and catch up once the shrink lands.
        let mut a = StaticShard::new(15.0, 10.0, 8);
        a.fail_applies = 1;
        let mut f = fleet(
            12,
            vec![("a", 0.11, a), ("b", 0.11, StaticShard::new(60.0, 10.0, 4))],
        );
        f.run_windows(2);
        let w = f.timeline().last().unwrap();
        assert!(
            w.total_granted <= 12,
            "fleet over budget after refused shrink: {w:?}"
        );
        assert!(w.shards[0]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("rebalance unavailable")));
        assert!(
            w.shards[1]
                .error
                .as_deref()
                .is_some_and(|e| e.contains("deferred")),
            "the grow must be deferred: {w:?}"
        );
        assert_eq!(w.shards[1].allocation, vec![4], "b must not grow yet");
        // Next window the shrink applies and the deferred grow catches up.
        f.run_windows(2);
        let w = f.timeline().last().unwrap();
        assert!(w.total_granted <= 12);
        assert!(w.shards[1].granted() > 4, "b grows once capacity is freed");
    }

    #[test]
    fn rebalanced_flag_tracks_actual_changes_only() {
        let mut f = fleet(
            20,
            vec![
                ("a", 0.5, StaticShard::new(40.0, 10.0, 7)),
                ("b", 0.5, StaticShard::new(20.0, 10.0, 5)),
            ],
        );
        f.run_windows(6);
        // Once converged, no shard keeps reporting rebalances.
        let last = f.timeline().last().unwrap();
        assert!(last.shards.iter().all(|s| !s.rebalanced));
        // But some earlier window did rebalance.
        assert!(f
            .timeline()
            .iter()
            .any(|w| w.shards.iter().any(|s| s.rebalanced)));
    }

    #[test]
    fn construction_errors() {
        let config = FleetDriverConfig::new(10);
        assert_eq!(
            FleetDriver::<StaticShard>::new(config, vec![]).unwrap_err(),
            FleetDriverError::NoShards
        );
        let mut bad = FleetDriverConfig::new(10);
        bad.window_secs = 0.0;
        assert_eq!(
            FleetDriver::new(
                bad,
                vec![FleetShardSpec::new(
                    "s",
                    1.0,
                    StaticShard::new(10.0, 10.0, 2)
                )]
            )
            .unwrap_err(),
            FleetDriverError::InvalidWindow(0.0)
        );
        assert!(matches!(
            FleetDriver::new(
                config,
                vec![FleetShardSpec::new(
                    "s",
                    -1.0,
                    StaticShard::new(10.0, 10.0, 2)
                )]
            )
            .unwrap_err(),
            FleetDriverError::InvalidTarget { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_interleaving_order_panics() {
        let mut f = fleet(
            12,
            vec![
                ("a", 0.5, StaticShard::new(10.0, 10.0, 2)),
                ("b", 0.5, StaticShard::new(10.0, 10.0, 2)),
            ],
        );
        f.step_with_order(&[0, 0]);
    }

    #[test]
    fn timeout_backs_off_then_retries_with_fresh_epochs() {
        // The shard needs to grow but its first two commands vanish.
        let mut shard = StaticShard::new(60.0, 10.0, 4);
        shard.timeout_applies = 2;
        let mut f = fleet(20, vec![("only", 0.11, shard)]);
        f.run_windows(10);

        let errors: Vec<String> = f
            .timeline()
            .iter()
            .filter_map(|w| w.shards[0].error.clone())
            .collect();
        let timeouts = errors
            .iter()
            .filter(|e| e.contains("unacknowledged"))
            .count();
        let deferred = errors
            .iter()
            .filter(|e| e.contains("deferred: backoff"))
            .count();
        assert_eq!(timeouts, 2, "both lost commands recorded: {errors:?}");
        assert!(
            deferred >= 1,
            "the doubled backoff must hold at least one window: {errors:?}"
        );
        // The third attempt lands and the shard converges.
        assert!(f.timeline().iter().any(|w| w.shards[0].rebalanced));
        assert!(f.backend(0).allocation[0] > 4);
        // Every command on the wire carried a fresh, strictly increasing
        // epoch — a replaying channel could never double-apply.
        let epochs = &f.backend(0).seen_epochs;
        assert_eq!(epochs.len(), 3, "two timeouts + one success: {epochs:?}");
        assert!(epochs.windows(2).all(|p| p[0] < p[1]), "{epochs:?}");
        // After the ack the backoff is fully reset.
        assert!(f.actuation_retry(0).ready(f.timeline().len() as u64));
    }

    #[test]
    fn refusal_acks_the_channel_and_resets_backoff() {
        let mut shard = StaticShard::new(60.0, 10.0, 4);
        shard.fail_applies = 1;
        let mut f = fleet(20, vec![("only", 0.11, shard)]);
        f.run_windows(6);
        // A refusal is an acknowledgement: no window is ever spent in
        // backoff, and the retry lands on the very next round.
        assert!(f.timeline().iter().all(|w| !w.shards[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("backoff")));
        assert!(f.timeline().iter().any(|w| w.shards[0].rebalanced));
    }

    #[test]
    fn dead_shard_budget_is_reclaimed_within_lease_windows() {
        // Contended: hot wants more than the remainder cold leaves it.
        let mut f = fleet(
            12,
            vec![
                ("hot", 0.11, StaticShard::new(60.0, 10.0, 7)),
                ("cold", 0.11, StaticShard::new(30.0, 10.0, 4)),
            ],
        );
        f.run_windows(5);
        let before = f.timeline().last().unwrap();
        assert!(before.contended);
        let hot_before = before.shards[0].granted();

        // Cold's machine dies: reports stop. Within lease_windows (3) +
        // one negotiation round, the lease expires and hot inherits the
        // reclaimed budget.
        f.backend_mut(1).silent = true;
        let lease = f.config().lease_windows;
        f.run_windows(lease + 2);
        let after = f.timeline().last().unwrap();
        assert!(after.shards[1].dead, "cold's lease must expire: {after:?}");
        assert!(f.shard_dead(1));
        assert!(
            after.shards[0].granted() > hot_before,
            "hot must inherit reclaimed budget: {} vs {hot_before}",
            after.shards[0].granted()
        );
        // Live-only accounting keeps the pool within budget.
        assert!(after.total_granted <= 12);

        // The shard heals: the first report renews the lease and it
        // negotiates again; grows elsewhere defer until the fleet
        // re-converges under Kmax.
        f.backend_mut(1).silent = false;
        f.run_windows(6);
        let healed = f.timeline().last().unwrap();
        assert!(!healed.shards[1].dead);
        assert!(
            healed.total_granted <= 12,
            "over budget after heal: {healed:?}"
        );
    }

    #[test]
    fn checkpoint_restore_continue_is_bit_identical() {
        let build = || {
            fleet(
                12,
                vec![
                    ("hot", 0.11, StaticShard::new(60.0, 10.0, 7)),
                    ("cold", 0.11, StaticShard::new(30.0, 10.0, 4)),
                ],
            )
        };
        // Uninterrupted run.
        let mut straight = build();
        straight.run_windows(12);

        // Same run, checkpointed mid-way and branched twice.
        let mut prefix = build();
        prefix.run_windows(5);
        let ckpt = prefix.checkpoint();
        assert_eq!(ckpt.window(), 5);
        // The checkpoint shares the negotiator's warm state copy-on-write:
        // no deep clone until one of the branches actually negotiates.
        assert!(
            Arc::ptr_eq(&prefix.negotiator, &ckpt.driver.negotiator),
            "checkpoint must share, not clone, the negotiator"
        );
        let mut branch_a = FleetDriver::from_checkpoint(&ckpt);
        assert!(Arc::ptr_eq(&prefix.negotiator, &branch_a.negotiator));
        let mut branch_b = ckpt.into_driver();
        // The original keeps running past the checkpoint too: its lazy
        // clone at the negotiate site must not leak into the branches.
        prefix.run_windows(7);
        branch_a.run_windows(7);
        branch_b.run_windows(7);
        assert!(
            !Arc::ptr_eq(&prefix.negotiator, &branch_a.negotiator),
            "diverging branches must have unshared after negotiating"
        );

        assert_eq!(straight.timeline(), prefix.timeline());
        assert_eq!(straight.timeline(), branch_a.timeline());
        assert_eq!(straight.timeline(), branch_b.timeline());
    }

    #[test]
    fn churn_add_and_remove_shards_mid_run() {
        let mut f = fleet(
            20,
            vec![
                ("a", 0.11, StaticShard::new(40.0, 10.0, 5)),
                ("b", 0.11, StaticShard::new(30.0, 10.0, 4)),
            ],
        );
        f.run_windows(3);
        assert_eq!(f.timeline().last().unwrap().shards.len(), 2);

        // A topology joins mid-run…
        let joined = f
            .add_shard(FleetShardSpec::new(
                "c",
                0.11,
                StaticShard::new(20.0, 10.0, 3),
            ))
            .unwrap();
        assert_eq!(joined, 2);
        f.run_windows(4);
        let w = f.timeline().last().unwrap();
        assert_eq!(w.shards.len(), 3);
        assert_eq!(w.shards[2].name, "c");
        assert!(w.shards[2].demand.is_some(), "joined shard negotiates");
        assert!(w.total_granted <= 20);

        // …and another leaves. Names keep the timeline correlatable.
        let removed = f.remove_shard(0);
        assert_eq!(removed.rate, 40.0);
        f.run_windows(2);
        let w = f.timeline().last().unwrap();
        assert_eq!(w.shards.len(), 2);
        assert_eq!(
            w.shards.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        assert!(w.total_granted <= 20);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn removing_the_last_shard_panics() {
        let mut f = fleet(10, vec![("only", 0.5, StaticShard::new(10.0, 10.0, 2))]);
        f.remove_shard(0);
    }

    /// The gate-aware pass: shard a's −1 wobble shrink is refused by its
    /// gate at *negotiation* time, so shard b's grow is sized to the
    /// realized pool (a keeps its 8) and actuates without a deferral. The
    /// old flow discovered a's refusal at actuation and granted b a grow
    /// that could only bounce off the over-commit guard — one wasted
    /// grant/refuse round-trip per window, forever. Churn (a third shard
    /// joining and leaving) must not reintroduce any.
    #[test]
    fn gate_aware_negotiation_avoids_wasted_round_trips_under_churn() {
        let mut f = fleet(
            13,
            vec![
                ("a", 0.2, StaticShard::new(55.0, 10.0, 8)),
                ("b", 0.2, StaticShard::new(25.0, 10.0, 3)),
            ],
        );
        f.run_windows(5);
        let w = f.timeline().last().unwrap();
        // a's shrink 8→7 saves one executor: held by its gate, visibly.
        assert!(w.shards[0].gated, "a's wobble shrink must be held: {w:?}");
        assert_eq!(w.shards[0].allocation, vec![8]);
        // b still actuated its grow out of the free budget.
        assert_eq!(w.shards[1].allocation, vec![4], "b must reach its demand");
        assert_eq!(f.wasted_grants(), 0, "no refusal discovered at actuation");

        // Churn: a third shard joins (the pool tightens, a's held surplus
        // becomes load-bearing and must flow), then leaves again.
        f.add_shard(FleetShardSpec::new(
            "c",
            0.2,
            StaticShard::new(25.0, 10.0, 3),
        ))
        .unwrap();
        f.run_windows(6);
        assert!(f.timeline().last().unwrap().total_granted <= 13);
        f.remove_shard(2);
        f.run_windows(4);
        let w = f.timeline().last().unwrap();
        assert!(w.total_granted <= 13);
        assert_eq!(
            f.wasted_grants(),
            0,
            "churn must not reintroduce wasted grant/refuse round-trips"
        );
        assert!(
            f.timeline()
                .iter()
                .all(|w| w.shards.iter().all(|s| s.error.is_none())),
            "no deferrals anywhere: {:?}",
            f.timeline()
                .iter()
                .flat_map(|w| &w.shards)
                .filter_map(|s| s.error.clone())
                .collect::<Vec<_>>()
        );
    }

    /// The revert arm of the gate-aware pass: holding a's refused shrink
    /// would starve b below its minimum stable allocation, so the wobble
    /// is load-bearing — a's shrink is promoted past the gate and b's grow
    /// follows in the same window. The old flow livelocked here: a gated
    /// every window, b deferred every window.
    #[test]
    fn load_bearing_wobble_is_promoted_instead_of_stranded() {
        let mut f = fleet(
            12,
            vec![
                ("a", 0.2, StaticShard::new(55.0, 10.0, 8)),
                ("b", 0.2, StaticShard::new(42.0, 10.0, 4)),
            ],
        );
        f.run_windows(6);
        let w = f.timeline().last().unwrap();
        assert_eq!(w.shards[0].allocation, vec![7], "a's shrink must land");
        assert_eq!(w.shards[1].allocation, vec![5], "b's grow must land");
        assert_eq!(f.wasted_grants(), 0);
        assert!(
            f.timeline().iter().all(|w| w.shards.iter().all(|s| !s
                .error
                .as_deref()
                .unwrap_or("")
                .contains("deferred"))),
            "nothing may bounce off the over-commit guard: {:?}",
            f.timeline().last()
        );
    }

    /// End-to-end machine placement in the fleet: with a shared pool
    /// installed, every live shard with metadata gets a machine assignment
    /// (via `apply_placement` when its executor counts are unchanged),
    /// the assignment matches the running allocation, and the combined
    /// usage respects every machine's capacity vector.
    #[test]
    fn machine_pool_threads_placement_end_to_end() {
        let pool = PlacementPool::uniform(2, ResourceProfile::uniform(16.0)).unwrap();
        let profile = ResourceProfile::uniform(2.0);
        let info = ShardPlacementInfo {
            profiles: vec![profile],
            edges: vec![],
        };
        // Both shards already run their demanded allocation: no rebalance
        // ever fires, so the assignment must travel via `apply_placement`.
        let mut config = FleetDriverConfig::new(20);
        config.warmup_windows = 1;
        config.window_secs = 1.0;
        let mut f = FleetDriver::new(
            config,
            vec![
                FleetShardSpec::new("a", 0.2, StaticShard::new(40.0, 10.0, 5))
                    .with_placement(info.clone()),
                FleetShardSpec::new("b", 0.2, StaticShard::new(25.0, 10.0, 4))
                    .with_placement(info.clone()),
            ],
        )
        .unwrap();
        f.set_machine_pool(pool);
        f.run_windows(4);

        let mut usage = vec![ResourceProfile::uniform(0.0); 2];
        for i in 0..2 {
            let p = f.shard_placement(i).expect("placement in force");
            assert_eq!(p.allocation(), f.backend(i).allocation, "shard {i}");
            for (m, u) in p.usage(&info.profiles).iter().enumerate() {
                usage[m].cpu += u.cpu;
                usage[m].mem += u.mem;
                usage[m].net += u.net;
            }
            assert!(
                f.backend(i).placement_calls >= 1,
                "assignment must go through apply_placement"
            );
        }
        for u in &usage {
            assert!(u.cpu <= 16.0 && u.mem <= 16.0 && u.net <= 16.0, "{u}");
        }
        // In-force assignments are stable: re-solving an unchanged fleet
        // must not keep issuing placement commands.
        let calls: Vec<usize> = (0..2).map(|i| f.backend(i).placement_calls).collect();
        f.run_windows(3);
        assert_eq!(
            calls,
            (0..2)
                .map(|i| f.backend(i).placement_calls)
                .collect::<Vec<_>>(),
            "converged fleet must not re-issue identical assignments"
        );
    }

    /// Regression: a settled placement-enabled fleet performs *zero*
    /// per-shard solver calls per window — the warm state sees every
    /// request unchanged and replans nothing.
    #[test]
    fn unchanged_fleet_performs_zero_placement_solver_calls() {
        let pool = PlacementPool::uniform(2, ResourceProfile::uniform(16.0)).unwrap();
        let info = ShardPlacementInfo {
            profiles: vec![ResourceProfile::uniform(2.0)],
            edges: vec![],
        };
        let mut config = FleetDriverConfig::new(20);
        config.warmup_windows = 1;
        config.window_secs = 1.0;
        let mut f = FleetDriver::new(
            config,
            vec![
                FleetShardSpec::new("a", 0.2, StaticShard::new(40.0, 10.0, 5))
                    .with_placement(info.clone()),
                FleetShardSpec::new("b", 0.2, StaticShard::new(25.0, 10.0, 4)).with_placement(info),
            ],
        )
        .unwrap();
        f.set_machine_pool(pool);
        f.run_windows(6);
        let solver_calls = f.placement_solver_calls();
        let full_solves = f.placement_full_solves();
        assert!(full_solves >= 1, "the first window batch-solves");
        f.run_windows(10);
        assert_eq!(
            f.placement_solver_calls(),
            solver_calls,
            "settled windows must not touch the placement solver"
        );
        assert_eq!(f.placement_full_solves(), full_solves);
        // An explicit invalidation forces exactly one batch re-solve.
        f.invalidate_placement_cache();
        f.run_windows(1);
        assert_eq!(f.placement_full_solves(), full_solves + 1);
    }

    /// The placement rate band: edge-rate wobble inside
    /// [`FleetDriverConfig::placement_rate_band`] must not dirty a shard
    /// (no solver call), while a shift beyond the band must.
    #[test]
    fn placement_rate_band_absorbs_wobble_but_tracks_real_shifts() {
        let pool = PlacementPool::uniform(2, ResourceProfile::uniform(16.0)).unwrap();
        let info = ShardPlacementInfo {
            profiles: vec![ResourceProfile::uniform(2.0)],
            // A self-loop edge whose rate is the operator's measured
            // arrival rate — the only input that wobbles below.
            edges: vec![(0, 0, 1.0)],
        };
        let mut config = FleetDriverConfig::new(20);
        config.warmup_windows = 1;
        config.window_secs = 1.0;
        // Generous latency target: rate wobble in (40, 49] keeps the
        // demanded allocation at the minimum stable 5, so only the edge
        // rate moves.
        let mut f = FleetDriver::new(
            config,
            vec![
                FleetShardSpec::new("a", 0.5, StaticShard::new(40.0, 10.0, 5)).with_placement(info),
            ],
        )
        .unwrap();
        f.set_machine_pool(pool);
        f.run_windows(6);
        let settled = f.placement_solver_calls();

        // +2.5% wobble: inside the 5% band, absorbed.
        f.backend_mut(0).rate = 41.0;
        f.run_windows(3);
        assert_eq!(
            f.placement_solver_calls(),
            settled,
            "in-band rate wobble must not re-solve placement"
        );

        // +20%: outside the band, the shard goes dirty and re-solves.
        f.backend_mut(0).rate = 48.0;
        f.run_windows(3);
        assert!(
            f.placement_solver_calls() > settled,
            "an out-of-band rate shift must reach the solver"
        );
    }
}
