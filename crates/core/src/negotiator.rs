//! The resource negotiator: machine-level provisioning below the CSP
//! resource manager (paper App. B-B and §V, Fig. 10).
//!
//! The scheduler reasons in *executors*; the cloud bills in *machines*
//! (workers / VMs), each hosting a bounded number of executors — the paper
//! caps 5 executors per machine to avoid co-location interference. The
//! negotiator translates a target executor count into machine launch/stop
//! actions and reports the pause cost those actions impose on the running
//! topology: launching machines is expensive (JVM re-use does not help —
//! ExpA measured a ~4.8 s spike) while stopping machines is cheap (~1.1 s).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Static description of the machine pool economics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachinePoolConfig {
    /// Executors hosted per machine (the paper uses 5).
    pub executors_per_machine: u32,
    /// Machines that must always stay up (the paper keeps spouts + DRS on
    /// dedicated executors).
    pub min_machines: u32,
    /// Upper bound on machines the budget allows.
    pub max_machines: u32,
    /// Rebalance pause when adding machines (seconds): machine boot +
    /// topology restart. ExpA observed ≈ 4.8 s.
    pub grow_pause: f64,
    /// Rebalance pause when only removing machines (seconds). ExpB observed
    /// ≈ 1.1 s.
    pub shrink_pause: f64,
    /// Rebalance pause when the machine set is unchanged (seconds) — the
    /// improved DRS re-balancing that re-uses JVMs.
    pub steady_pause: f64,
}

impl Default for MachinePoolConfig {
    fn default() -> Self {
        MachinePoolConfig {
            executors_per_machine: 5,
            min_machines: 1,
            max_machines: 64,
            grow_pause: 4.8,
            shrink_pause: 1.1,
            steady_pause: 0.5,
        }
    }
}

/// Error from negotiator operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NegotiatorError {
    /// The configuration is internally inconsistent.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The requested executor count cannot be served within
    /// `max_machines`.
    CapacityExceeded {
        /// Executors requested.
        requested: u64,
        /// Maximum executors the pool can ever provide.
        capacity: u64,
    },
}

impl fmt::Display for NegotiatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiatorError::InvalidConfig { reason } => {
                write!(f, "invalid machine pool config: {reason}")
            }
            NegotiatorError::CapacityExceeded {
                requested,
                capacity,
            } => write!(
                f,
                "requested {requested} executors exceeds pool capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for NegotiatorError {}

/// A provisioning step computed by [`MachinePool::plan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegotiationPlan {
    /// Machines to launch (0 when shrinking or steady).
    pub add_machines: u32,
    /// Machines to stop (0 when growing or steady).
    pub remove_machines: u32,
    /// Machine count after applying the plan.
    pub target_machines: u32,
    /// Executor capacity after applying the plan.
    pub target_executors: u32,
    /// Pause the combined provisioning + rebalance will impose (seconds).
    pub pause_secs: f64,
}

impl NegotiationPlan {
    /// Whether the plan changes the machine set.
    pub fn changes_machines(&self) -> bool {
        self.add_machines > 0 || self.remove_machines > 0
    }
}

/// The machine pool: tracks active machines and plans provisioning.
///
/// # Examples
///
/// ```
/// use drs_core::negotiator::{MachinePool, MachinePoolConfig};
///
/// // Paper setup: 5 executors per machine, 4 machines running (Kmax=17 with
/// // 3 executors reserved elsewhere is modelled by the caller).
/// let mut pool = MachinePool::new(MachinePoolConfig::default(), 4)?;
/// assert_eq!(pool.executor_capacity(), 20);
///
/// // Needing 22 executors forces a 5th machine and a costly pause.
/// let plan = pool.plan(22)?;
/// assert_eq!(plan.add_machines, 1);
/// assert!(plan.pause_secs >= 4.0);
/// pool.apply(&plan);
/// assert_eq!(pool.active_machines(), 5);
/// # Ok::<(), drs_core::negotiator::NegotiatorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePool {
    config: MachinePoolConfig,
    active: u32,
}

impl MachinePool {
    /// Creates a pool with `active` machines already running.
    ///
    /// # Errors
    ///
    /// * [`NegotiatorError::InvalidConfig`] — zero executors per machine,
    ///   `min > max`, negative pauses, or `active` outside `[min, max]`.
    pub fn new(config: MachinePoolConfig, active: u32) -> Result<Self, NegotiatorError> {
        if config.executors_per_machine == 0 {
            return Err(NegotiatorError::InvalidConfig {
                reason: "executors_per_machine must be >= 1".to_owned(),
            });
        }
        if config.min_machines > config.max_machines {
            return Err(NegotiatorError::InvalidConfig {
                reason: format!(
                    "min_machines {} > max_machines {}",
                    config.min_machines, config.max_machines
                ),
            });
        }
        for (name, v) in [
            ("grow_pause", config.grow_pause),
            ("shrink_pause", config.shrink_pause),
            ("steady_pause", config.steady_pause),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(NegotiatorError::InvalidConfig {
                    reason: format!("{name} must be finite and >= 0, got {v}"),
                });
            }
        }
        if active < config.min_machines || active > config.max_machines {
            return Err(NegotiatorError::InvalidConfig {
                reason: format!(
                    "active machines {} outside [{}, {}]",
                    active, config.min_machines, config.max_machines
                ),
            });
        }
        Ok(MachinePool { config, active })
    }

    /// The pool configuration.
    pub fn config(&self) -> &MachinePoolConfig {
        &self.config
    }

    /// Machines currently running.
    pub fn active_machines(&self) -> u32 {
        self.active
    }

    /// Executors currently available.
    pub fn executor_capacity(&self) -> u32 {
        self.active * self.config.executors_per_machine
    }

    /// Largest executor count the pool could ever provide.
    pub fn max_executor_capacity(&self) -> u32 {
        self.config.max_machines * self.config.executors_per_machine
    }

    /// Fewest machines that can host `executors` executors, clamped to
    /// `min_machines`.
    pub fn machines_for(&self, executors: u32) -> u32 {
        let per = self.config.executors_per_machine;
        executors.div_ceil(per).max(self.config.min_machines)
    }

    /// Plans the machine changes needed to host exactly `executors`
    /// executors (shrinking when fewer machines suffice).
    ///
    /// # Errors
    ///
    /// * [`NegotiatorError::CapacityExceeded`] — `executors` above
    ///   [`MachinePool::max_executor_capacity`].
    pub fn plan(&self, executors: u32) -> Result<NegotiationPlan, NegotiatorError> {
        if executors > self.max_executor_capacity() {
            return Err(NegotiatorError::CapacityExceeded {
                requested: u64::from(executors),
                capacity: u64::from(self.max_executor_capacity()),
            });
        }
        let target = self.machines_for(executors);
        let (add, remove) = if target > self.active {
            (target - self.active, 0)
        } else {
            (0, self.active - target)
        };
        let pause = if add > 0 {
            self.config.grow_pause
        } else if remove > 0 {
            self.config.shrink_pause
        } else {
            self.config.steady_pause
        };
        Ok(NegotiationPlan {
            add_machines: add,
            remove_machines: remove,
            target_machines: target,
            target_executors: target * self.config.executors_per_machine,
            pause_secs: pause,
        })
    }

    /// Applies a plan, updating the active machine count.
    pub fn apply(&mut self, plan: &NegotiationPlan) {
        self.active = plan.target_machines;
    }

    /// Reverts a previously applied plan, restoring the pre-plan machine
    /// count — used when the CSP layer rejects the rebalance the plan was
    /// provisioned for, so the pool does not track phantom machines.
    pub fn revert(&mut self, plan: &NegotiationPlan) {
        self.active = plan.target_machines + plan.remove_machines - plan.add_machines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(active: u32) -> MachinePool {
        MachinePool::new(MachinePoolConfig::default(), active).unwrap()
    }

    #[test]
    fn capacity_accounting() {
        let p = pool(4);
        assert_eq!(p.executor_capacity(), 20);
        assert_eq!(p.max_executor_capacity(), 320);
        assert_eq!(p.machines_for(17), 4);
        assert_eq!(p.machines_for(20), 4);
        assert_eq!(p.machines_for(21), 5);
        assert_eq!(p.machines_for(0), 1); // min_machines floor
    }

    #[test]
    fn grow_plan_has_expensive_pause() {
        // ExpA: 17 -> 22 executors needs a 5th machine; pause ≈ grow_pause.
        let p = pool(4);
        let plan = p.plan(22).unwrap();
        assert_eq!(plan.add_machines, 1);
        assert_eq!(plan.remove_machines, 0);
        assert_eq!(plan.target_executors, 25);
        assert!((plan.pause_secs - 4.8).abs() < 1e-12);
        assert!(plan.changes_machines());
    }

    #[test]
    fn shrink_plan_has_cheap_pause() {
        // ExpB: 22 -> 17 executors frees a machine; pause ≈ shrink_pause.
        let p = pool(5);
        let plan = p.plan(17).unwrap();
        assert_eq!(plan.add_machines, 0);
        assert_eq!(plan.remove_machines, 1);
        assert!((plan.pause_secs - 1.1).abs() < 1e-12);
    }

    #[test]
    fn steady_plan_costs_least() {
        let p = pool(5);
        let plan = p.plan(22).unwrap();
        assert!(!plan.changes_machines());
        assert!((plan.pause_secs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn apply_updates_active_count() {
        let mut p = pool(4);
        let plan = p.plan(22).unwrap();
        p.apply(&plan);
        assert_eq!(p.active_machines(), 5);
        let plan = p.plan(8).unwrap();
        p.apply(&plan);
        assert_eq!(p.active_machines(), 2);
    }

    #[test]
    fn capacity_exceeded_detected() {
        let p = pool(4);
        assert!(matches!(
            p.plan(10_000),
            Err(NegotiatorError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = MachinePoolConfig {
            executors_per_machine: 0,
            ..Default::default()
        };
        assert!(MachinePool::new(cfg, 1).is_err());

        let cfg = MachinePoolConfig {
            min_machines: 10,
            max_machines: 2,
            ..Default::default()
        };
        assert!(MachinePool::new(cfg, 1).is_err());

        let cfg = MachinePoolConfig {
            grow_pause: -1.0,
            ..Default::default()
        };
        assert!(MachinePool::new(cfg, 1).is_err());

        assert!(MachinePool::new(MachinePoolConfig::default(), 0).is_err());
        assert!(MachinePool::new(MachinePoolConfig::default(), 1000).is_err());
    }
}
