//! The DRS performance model (paper §III-B).
//!
//! [`PerformanceModel`] packages the measured quantities — external rate
//! `λ̂0` and per-operator `(λ̂_i, µ̂_i)` — into the Jackson/Erlang estimator
//! of Eq. 1–3 and exposes the queries the controller needs: expected sojourn
//! under an allocation, per-operator breakdowns and stability boundaries.
//!
//! The model deliberately ignores network delay (paper §III-A/B): when
//! transfer costs dominate — as in the FPD application — estimates are
//! systematically low but remain *rank-correlated* with the truth, which is
//! all the optimiser needs (shown in paper Figs. 7–8 and reproduced by the
//! `fig7`/`fig8` benches).

use drs_queueing::jackson::{JacksonError, JacksonNetwork, OperatorSojourn};
use serde::{Deserialize, Serialize};

/// Measured rates of one operator, as produced by the measurer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorRates {
    /// Mean aggregate arrival rate `λ̂_i` (tuples/second).
    pub arrival_rate: f64,
    /// Mean per-executor service rate `µ̂_i` (tuples/second).
    pub service_rate: f64,
}

/// The model inputs for one scheduling round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInputs {
    /// External arrival rate `λ̂0` into the whole application.
    pub external_rate: f64,
    /// Per-operator measured rates in model index order.
    pub operators: Vec<OperatorRates>,
}

/// The DRS performance model: estimates `E[T]` for arbitrary allocations.
///
/// # Examples
///
/// ```
/// use drs_core::model::{ModelInputs, OperatorRates, PerformanceModel};
///
/// let model = PerformanceModel::new(&ModelInputs {
///     external_rate: 13.0,
///     operators: vec![
///         OperatorRates { arrival_rate: 13.0, service_rate: 1.6 },
///         OperatorRates { arrival_rate: 390.0, service_rate: 40.0 },
///         OperatorRates { arrival_rate: 390.0, service_rate: 450.0 },
///     ],
/// })?;
/// let t = model.expected_sojourn(&[10, 11, 1])?;
/// assert!(t.is_finite());
/// # Ok::<(), drs_core::model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceModel {
    network: JacksonNetwork,
}

/// Error raised when the model inputs are invalid; see
/// [`drs_queueing::jackson::JacksonError`] for the cases.
pub type ModelError = JacksonError;

impl PerformanceModel {
    /// Builds the model from measured inputs.
    ///
    /// # Errors
    ///
    /// Rejects non-positive `external_rate`, negative arrival rates or
    /// non-positive service rates.
    pub fn new(inputs: &ModelInputs) -> Result<Self, ModelError> {
        let pairs: Vec<(f64, f64)> = inputs
            .operators
            .iter()
            .map(|r| (r.arrival_rate, r.service_rate))
            .collect();
        Ok(PerformanceModel {
            network: JacksonNetwork::from_rates(inputs.external_rate, &pairs)?,
        })
    }

    /// The underlying Jackson network (for direct use by the scheduler).
    pub fn network(&self) -> &JacksonNetwork {
        &self.network
    }

    /// Number of modelled operators.
    pub fn len(&self) -> usize {
        self.network.len()
    }

    /// Whether the model has no operators.
    pub fn is_empty(&self) -> bool {
        self.network.is_empty()
    }

    /// Expected total sojourn time (seconds) under `allocation` (Eq. 3).
    /// Infinite if any operator would be unstable.
    ///
    /// # Errors
    ///
    /// Returns an error when `allocation.len()` differs from the number of
    /// operators.
    pub fn expected_sojourn(&self, allocation: &[u32]) -> Result<f64, ModelError> {
        self.network.expected_sojourn(allocation)
    }

    /// Per-operator contributions to the expected sojourn time.
    ///
    /// # Errors
    ///
    /// Returns an error when `allocation.len()` differs from the number of
    /// operators.
    pub fn sojourn_breakdown(
        &self,
        allocation: &[u32],
    ) -> Result<Vec<OperatorSojourn>, ModelError> {
        self.network.sojourn_breakdown(allocation)
    }

    /// The minimum allocation keeping every operator stable.
    pub fn min_stable_allocation(&self) -> Vec<u32> {
        self.network.min_stable_allocation()
    }

    /// Whether `allocation` keeps every operator stable.
    ///
    /// # Errors
    ///
    /// Returns an error when `allocation.len()` differs from the number of
    /// operators.
    pub fn is_stable(&self, allocation: &[u32]) -> Result<bool, ModelError> {
        self.network.is_stable(allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vld_inputs() -> ModelInputs {
        ModelInputs {
            external_rate: 13.0,
            operators: vec![
                OperatorRates {
                    arrival_rate: 13.0,
                    service_rate: 1.6,
                },
                OperatorRates {
                    arrival_rate: 390.0,
                    service_rate: 40.0,
                },
                OperatorRates {
                    arrival_rate: 390.0,
                    service_rate: 450.0,
                },
            ],
        }
    }

    #[test]
    fn model_estimates_finite_sojourn_for_stable_allocations() {
        let model = PerformanceModel::new(&vld_inputs()).unwrap();
        let t = model.expected_sojourn(&[10, 11, 1]).unwrap();
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn unstable_allocation_is_infinite() {
        let model = PerformanceModel::new(&vld_inputs()).unwrap();
        // Operator 0 needs ceil(13/1.6)=9 executors; 8 is unstable.
        let t = model.expected_sojourn(&[8, 13, 1]).unwrap();
        assert!(t.is_infinite());
        assert!(!model.is_stable(&[8, 13, 1]).unwrap());
    }

    #[test]
    fn breakdown_identifies_bottleneck() {
        let model = PerformanceModel::new(&vld_inputs()).unwrap();
        let breakdown = model.sojourn_breakdown(&[10, 11, 1]).unwrap();
        assert_eq!(breakdown.len(), 3);
        // The SIFT stage (slowest per-tuple service) dominates.
        let weights: Vec<f64> = breakdown.iter().map(|b| b.weighted).collect();
        assert!(weights[0] > weights[2]);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut bad = vld_inputs();
        bad.external_rate = 0.0;
        assert!(PerformanceModel::new(&bad).is_err());

        let mut bad = vld_inputs();
        bad.operators[1].service_rate = 0.0;
        assert!(PerformanceModel::new(&bad).is_err());
    }

    #[test]
    fn exposes_min_allocation_and_len() {
        let model = PerformanceModel::new(&vld_inputs()).unwrap();
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
        let min = model.min_stable_allocation();
        assert!(model.is_stable(&min).unwrap());
    }
}
