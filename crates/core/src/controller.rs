//! The DRS decision core: measurements in, rebalance actions out.
//!
//! One [`DrsController`] instance supervises one streaming application. Each
//! measurement window a [`RawSample`] is fed to
//! [`DrsController::on_window`], which:
//!
//! 1. smooths the metrics through the [`Measurer`];
//! 2. fits the [`PerformanceModel`] (Eq. 1–3 of the paper);
//! 3. computes the candidate allocation for the configured goal — Algorithm 1
//!    for [`OptimizationGoal::MinLatency`], the Program 6 greedy plus machine
//!    negotiation for [`OptimizationGoal::MinResources`];
//! 4. passes the candidate through the cost/benefit [`decision`] gate;
//! 5. when *active*, emits a [`ControlAction::Rebalance`] for the CSP layer
//!    to execute; when *passive* (paper §V-C, "re-balancing disabled"), it
//!    only records the recommendation.
//!
//! Every round is appended to an inspectable log, which the experiment
//! harness uses to reproduce the paper's figures.
//!
//! The controller is engine-agnostic: it never touches a simulator or a
//! runtime directly. In almost every case you do not call `on_window`
//! yourself — a [`crate::driver::DrsDriver`] owns the loop, pulling
//! windows from a [`crate::driver::CspBackend`] (the `drs-sim` simulator,
//! the `drs-runtime` threaded engine, or your own adapter), building the
//! [`RawSample`] with last-known-rates fallback, and actuating the returned
//! [`ControlAction`] against the backend. Call `on_window` directly only
//! when you are wiring a custom loop by hand.

use crate::config::{DrsConfig, OptimizationGoal};
use crate::decision::{self, Decision, DecisionInputs};
use crate::measurer::{Measurer, RawSample, SmoothedEstimates};
use crate::model::PerformanceModel;
use crate::negotiator::{MachinePool, NegotiationPlan};
use crate::scheduler::{self, Allocation, ScheduleError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the CSP layer should do after a measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlAction {
    /// No change.
    None,
    /// Re-balance to `allocation`, pausing the topology for `pause_secs`;
    /// `plan` carries machine changes when the goal is resource
    /// minimisation.
    Rebalance {
        /// Target executors per operator (model index order).
        allocation: Vec<u32>,
        /// Pause the CSP layer should charge for the transition (seconds).
        pause_secs: f64,
        /// Machine provisioning accompanying the rebalance, if any.
        plan: Option<NegotiationPlan>,
    },
}

impl ControlAction {
    /// Whether the action changes the system.
    pub fn is_rebalance(&self) -> bool {
        matches!(self, ControlAction::Rebalance { .. })
    }
}

/// One record of the controller's reasoning for a window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Window sequence number (1-based).
    pub window: u64,
    /// Smoothed estimates used this round, if the measurer had data.
    pub estimates: Option<SmoothedEstimates>,
    /// Model estimate of the *current* allocation's expected sojourn.
    pub current_estimate: Option<f64>,
    /// The optimiser's recommendation.
    pub recommendation: Option<Allocation>,
    /// The decision gate's verdict.
    pub decision: Option<Decision>,
    /// The action actually taken (always `None` while passive).
    pub action: ControlAction,
    /// Any scheduling error (e.g. insufficient processors).
    pub error: Option<String>,
}

/// Error from controller construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// The configuration failed validation.
    Config(crate::config::InvalidConfig),
    /// The smoothing parameters were rejected by the measurer.
    Smoothing(crate::measurer::InvalidSmoothing),
    /// The initial allocation is empty.
    EmptyAllocation,
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::Config(e) => write!(f, "{e}"),
            ControllerError::Smoothing(e) => write!(f, "{e}"),
            ControllerError::EmptyAllocation => write!(f, "initial allocation is empty"),
        }
    }
}

impl std::error::Error for ControllerError {}

/// The DRS controller. See the module docs for the per-window pipeline.
///
/// # Examples
///
/// Passive monitoring (the paper's "re-balancing disabled" mode):
///
/// ```
/// use drs_core::config::DrsConfig;
/// use drs_core::controller::DrsController;
/// use drs_core::measurer::RawSample;
/// use drs_core::model::OperatorRates;
/// use drs_core::negotiator::{MachinePool, MachinePoolConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pool = MachinePool::new(MachinePoolConfig::default(), 5)?;
/// let mut drs = DrsController::new(
///     DrsConfig::min_latency(22),
///     vec![8, 12, 2],
///     pool,
/// )?;
/// drs.set_active(false); // monitor only
///
/// for _ in 0..3 {
///     let action = drs.on_window(&RawSample {
///         external_rate: 13.0,
///         operators: vec![
///             OperatorRates { arrival_rate: 13.0, service_rate: 1.6 },
///             OperatorRates { arrival_rate: 390.0, service_rate: 40.0 },
///             OperatorRates { arrival_rate: 390.0, service_rate: 450.0 },
///         ],
///         mean_sojourn: Some(0.8),
///     });
///     assert!(!action.is_rebalance()); // passive: never acts
/// }
/// // ... but it still recommends the optimal allocation:
/// assert!(drs.last_recommendation().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DrsController {
    config: DrsConfig,
    measurer: Measurer,
    pool: MachinePool,
    current_allocation: Vec<u32>,
    active: bool,
    log: Vec<LogEntry>,
    /// Windows remaining in the post-rebalance hold.
    cooldown_remaining: u64,
}

impl DrsController {
    /// Creates a controller supervising `initial_allocation.len()` operators.
    ///
    /// # Errors
    ///
    /// * [`ControllerError::Config`] — invalid [`DrsConfig`].
    /// * [`ControllerError::EmptyAllocation`] — no operators to supervise.
    pub fn new(
        config: DrsConfig,
        initial_allocation: Vec<u32>,
        pool: MachinePool,
    ) -> Result<Self, ControllerError> {
        config.validate().map_err(ControllerError::Config)?;
        if initial_allocation.is_empty() {
            return Err(ControllerError::EmptyAllocation);
        }
        let measurer = Measurer::new(initial_allocation.len(), config.smoothing)
            .map_err(ControllerError::Smoothing)?;
        Ok(DrsController {
            config,
            measurer,
            pool,
            current_allocation: initial_allocation,
            active: true,
            log: Vec::new(),
            cooldown_remaining: 0,
        })
    }

    /// Enables or disables re-balancing. While passive, the controller still
    /// monitors and recommends (paper §V-C experiments).
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Whether re-balancing is enabled.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The allocation the controller believes is currently running.
    pub fn current_allocation(&self) -> &[u32] {
        &self.current_allocation
    }

    /// The machine pool state.
    pub fn pool(&self) -> &MachinePool {
        &self.pool
    }

    /// The configuration.
    pub fn config(&self) -> &DrsConfig {
        &self.config
    }

    /// The full decision log.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// The most recent recommendation, if any round produced one.
    pub fn last_recommendation(&self) -> Option<&Allocation> {
        self.log
            .iter()
            .rev()
            .find_map(|e| e.recommendation.as_ref())
    }

    /// Informs the controller of an externally applied allocation (e.g. an
    /// operator manually re-balanced the topology).
    pub fn sync_allocation(&mut self, allocation: Vec<u32>) {
        self.current_allocation = allocation;
    }

    /// Informs the controller that the CSP layer rejected the rebalance it
    /// just issued: reverts the machine plan provisioned for it (the
    /// machines were never actually used), resynchronises the allocation
    /// view to what the backend really runs, and lifts the post-rebalance
    /// cooldown so the next window may retry.
    pub fn rebalance_rejected(
        &mut self,
        plan: Option<&NegotiationPlan>,
        actual_allocation: Vec<u32>,
    ) {
        if let Some(p) = plan {
            self.pool.revert(p);
        }
        self.current_allocation = actual_allocation;
        self.cooldown_remaining = 0;
    }

    /// Ingests one measurement window and returns the action to execute.
    ///
    /// # Panics
    ///
    /// Panics if `raw.operators.len()` differs from the operator count fixed
    /// at construction (wiring error).
    pub fn on_window(&mut self, raw: &RawSample) -> ControlAction {
        self.measurer.observe(raw);
        let window = self.measurer.windows_seen();

        let mut entry = LogEntry {
            window,
            estimates: None,
            current_estimate: None,
            recommendation: None,
            decision: None,
            action: ControlAction::None,
            error: None,
        };

        if window <= self.config.warmup_windows {
            self.log.push(entry);
            return ControlAction::None;
        }
        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            self.log.push(entry);
            return ControlAction::None;
        }
        let Some(estimates) = self.measurer.estimates() else {
            self.log.push(entry);
            return ControlAction::None;
        };
        entry.estimates = Some(estimates.clone());

        let model = match PerformanceModel::new(&estimates.to_model_inputs()) {
            Ok(m) => m,
            Err(e) => {
                entry.error = Some(e.to_string());
                self.log.push(entry);
                return ControlAction::None;
            }
        };
        let current_estimate = model
            .expected_sojourn(&self.current_allocation)
            .unwrap_or(f64::INFINITY);
        entry.current_estimate = Some(current_estimate);

        let outcome = self.optimize(&model);
        let (candidate, plan) = match outcome {
            Ok(pair) => pair,
            Err(e) => {
                entry.error = Some(e.to_string());
                self.log.push(entry);
                return ControlAction::None;
            }
        };
        entry.recommendation = Some(candidate.clone());

        let pause_secs = plan.map_or(self.pool.config().steady_pause, |p| p.pause_secs);
        let inputs = DecisionInputs {
            current_allocation: self.current_allocation.clone(),
            current_estimate,
            candidate_allocation: candidate.per_operator().to_vec(),
            candidate_estimate: candidate.expected_sojourn(),
            pause_secs,
            t_max: self.config.goal.t_max(),
            measured_sojourn: estimates.mean_sojourn,
        };
        let verdict = decision::decide(&self.config.policy, &inputs);
        entry.decision = Some(verdict.clone());

        let action = if self.active && verdict.is_rebalance() {
            if let Some(p) = plan {
                self.pool.apply(&p);
            }
            self.current_allocation = candidate.per_operator().to_vec();
            self.cooldown_remaining = self.config.cooldown_windows;
            ControlAction::Rebalance {
                allocation: self.current_allocation.clone(),
                pause_secs,
                plan,
            }
        } else {
            ControlAction::None
        };
        entry.action = action.clone();
        self.log.push(entry);
        action
    }

    /// Computes the candidate allocation (and machine plan, for the
    /// resource-minimisation goal) from the fitted model.
    fn optimize(
        &self,
        model: &PerformanceModel,
    ) -> Result<(Allocation, Option<NegotiationPlan>), ScheduleError> {
        match self.config.goal {
            OptimizationGoal::MinLatency { k_max } => {
                let allocation = scheduler::assign_processors(model.network(), k_max)?;
                Ok((allocation, None))
            }
            OptimizationGoal::MinResources { t_max_secs } => {
                let cap = self.pool.max_executor_capacity();
                let allocation =
                    scheduler::min_processors_for_target(model.network(), t_max_secs, cap)?;
                // The search is capped at the pool's maximum capacity, so
                // the plan cannot exceed it.
                let total = u32::try_from(allocation.total()).unwrap_or(u32::MAX);
                let plan = self
                    .pool
                    .plan(total)
                    .expect("allocation total bounded by pool capacity");
                Ok((allocation, Some(plan)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OperatorRates;
    use crate::negotiator::MachinePoolConfig;

    fn vld_sample(sojourn: f64) -> RawSample {
        RawSample {
            external_rate: 13.0,
            operators: vec![
                OperatorRates {
                    arrival_rate: 13.0,
                    service_rate: 1.6,
                },
                OperatorRates {
                    arrival_rate: 390.0,
                    service_rate: 40.0,
                },
                OperatorRates {
                    arrival_rate: 390.0,
                    service_rate: 450.0,
                },
            ],
            mean_sojourn: Some(sojourn),
        }
    }

    fn pool(machines: u32) -> MachinePool {
        MachinePool::new(MachinePoolConfig::default(), machines).unwrap()
    }

    fn feed(drs: &mut DrsController, n: usize, sojourn: f64) -> Vec<ControlAction> {
        (0..n)
            .map(|_| drs.on_window(&vld_sample(sojourn)))
            .collect()
    }

    #[test]
    fn warmup_windows_produce_no_action() {
        let mut drs =
            DrsController::new(DrsConfig::min_latency(22), vec![8, 12, 2], pool(5)).unwrap();
        let actions = feed(&mut drs, 2, 0.9);
        assert!(actions.iter().all(|a| !a.is_rebalance()));
        assert!(drs.log()[0].recommendation.is_none());
    }

    #[test]
    fn active_controller_rebalances_to_optimum() {
        let mut drs =
            DrsController::new(DrsConfig::min_latency(22), vec![8, 12, 2], pool(5)).unwrap();
        let actions = feed(&mut drs, 5, 0.9);
        let rebalance = actions.iter().find(|a| a.is_rebalance());
        assert!(rebalance.is_some(), "controller should rebalance");
        if let Some(ControlAction::Rebalance { allocation, .. }) = rebalance {
            let total: u32 = allocation.iter().sum();
            assert_eq!(total, 22);
            // The optimum differs from the deliberately bad start.
            assert_ne!(allocation.as_slice(), &[8, 12, 2]);
        }
        // After converging, no further rebalances.
        let more = feed(&mut drs, 3, 0.5);
        assert!(more.iter().all(|a| !a.is_rebalance()));
    }

    #[test]
    fn passive_controller_never_acts_but_recommends() {
        let mut drs =
            DrsController::new(DrsConfig::min_latency(22), vec![8, 12, 2], pool(5)).unwrap();
        drs.set_active(false);
        assert!(!drs.is_active());
        let actions = feed(&mut drs, 6, 0.9);
        assert!(actions.iter().all(|a| !a.is_rebalance()));
        assert_eq!(drs.current_allocation(), &[8, 12, 2]);
        let rec = drs.last_recommendation().unwrap();
        assert_eq!(rec.total(), 22);
    }

    #[test]
    fn optimal_start_stays_put() {
        // First find the optimum passively, then start a fresh controller on
        // it: no rebalance should occur.
        let mut probe =
            DrsController::new(DrsConfig::min_latency(22), vec![8, 12, 2], pool(5)).unwrap();
        probe.set_active(false);
        feed(&mut probe, 4, 0.7);
        let optimal = probe.last_recommendation().unwrap().per_operator().to_vec();

        let mut drs =
            DrsController::new(DrsConfig::min_latency(22), optimal.clone(), pool(5)).unwrap();
        let actions = feed(&mut drs, 6, 0.7);
        assert!(actions.iter().all(|a| !a.is_rebalance()));
        assert_eq!(drs.current_allocation(), optimal.as_slice());
    }

    #[test]
    fn min_resources_scales_up_on_violation() {
        // ExpA shape: a tight Tmax (just above the 1.44 s no-queueing bound
        // of this network) while running the under-provisioned (8:8:1) on 4
        // machines. The measured sojourn violates the target, so DRS must
        // grow the allocation and add a machine.
        let cfg = DrsConfig::min_resources(2.1);
        let mut drs = DrsController::new(cfg, vec![8, 8, 1], pool(4)).unwrap();
        let actions = feed(&mut drs, 5, 3.5);
        let rebalance = actions.iter().find_map(|a| match a {
            ControlAction::Rebalance {
                allocation, plan, ..
            } => Some((allocation.clone(), *plan)),
            ControlAction::None => None,
        });
        let (allocation, plan) = rebalance.expect("should scale up");
        let total: u32 = allocation.iter().sum();
        assert!(total > 20, "needs more executors, got {total}");
        let plan = plan.expect("resource goal negotiates machines");
        assert!(plan.add_machines > 0);
        assert!(drs.pool().active_machines() > 4);
    }

    #[test]
    fn min_resources_scales_down_when_overprovisioned() {
        // ExpB shape: a loose Tmax while running the 22-executor optimum on
        // 5 machines; DRS frees a machine while still meeting the target.
        // (The minimum stable allocation of this network is 20 executors
        // with E[T] ≈ 5.2 s, so Tmax = 6 s fits in 4 machines.)
        let cfg = DrsConfig::min_resources(6.0);
        let mut drs = DrsController::new(cfg, vec![10, 11, 1], pool(5)).unwrap();
        let actions = feed(&mut drs, 5, 2.0);
        let rebalance = actions.iter().find_map(|a| match a {
            ControlAction::Rebalance {
                allocation, plan, ..
            } => Some((allocation.clone(), *plan)),
            ControlAction::None => None,
        });
        let (allocation, plan) = rebalance.expect("should scale down");
        let total: u32 = allocation.iter().sum();
        assert!(total < 22, "should free executors, got {total}");
        let plan = plan.expect("resource goal negotiates machines");
        assert!(plan.remove_machines > 0);
        assert!(drs.pool().active_machines() < 5);
    }

    #[test]
    fn insufficient_budget_is_logged_not_fatal() {
        // Kmax far below the stability requirement.
        let mut drs =
            DrsController::new(DrsConfig::min_latency(5), vec![2, 2, 1], pool(1)).unwrap();
        let actions = feed(&mut drs, 4, 2.0);
        assert!(actions.iter().all(|a| !a.is_rebalance()));
        assert!(drs.log().iter().any(|e| e
            .error
            .as_deref()
            .is_some_and(|s| s.contains("insufficient"))));
    }

    #[test]
    fn sync_allocation_updates_view() {
        let mut drs =
            DrsController::new(DrsConfig::min_latency(22), vec![8, 12, 2], pool(5)).unwrap();
        drs.sync_allocation(vec![10, 11, 1]);
        assert_eq!(drs.current_allocation(), &[10, 11, 1]);
    }

    #[test]
    fn empty_allocation_rejected() {
        assert!(matches!(
            DrsController::new(DrsConfig::min_latency(22), vec![], pool(1)),
            Err(ControllerError::EmptyAllocation)
        ));
    }

    #[test]
    fn cooldown_holds_after_rebalance() {
        let mut cfg = DrsConfig::min_latency(22);
        cfg.cooldown_windows = 3;
        let mut drs = DrsController::new(cfg, vec![8, 12, 2], pool(5)).unwrap();
        let actions = feed(&mut drs, 10, 0.9);
        // Exactly one rebalance: the first active window acts, the next
        // three are held, and by then the system is at the optimum.
        let idx: Vec<usize> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_rebalance())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(idx.len(), 1, "actions: {idx:?}");
        // The windows during cooldown carry no recommendation in the log.
        let first = idx[0];
        for e in &drs.log()[first + 1..first + 4] {
            assert!(
                e.recommendation.is_none(),
                "window {} acted in cooldown",
                e.window
            );
        }
    }

    #[test]
    fn log_records_every_window() {
        let mut drs =
            DrsController::new(DrsConfig::min_latency(22), vec![8, 12, 2], pool(5)).unwrap();
        feed(&mut drs, 7, 0.8);
        assert_eq!(drs.log().len(), 7);
        assert!(drs.log()[6].estimates.is_some());
        assert!(drs.log()[6].current_estimate.is_some());
    }
}
