//! Operator state migration planning (the paper's future work, §VI,
//! pursuing its reference 42: *Optimal Operator State Migration for
//! Elastic Data Stream Processing*).
//!
//! Storm partitions each operator into a fixed set of *tasks* (paper
//! App. C); re-scaling reassigns tasks to a different number of executors.
//! Stateful tasks carry state that must move with them, so the re-balance
//! pause grows with the amount of state crossing executors. This module
//! computes task reassignments that (a) keep the load balanced — at most
//! one task difference between executors, matching Storm's contract — and
//! (b) move as few tasks as possible, then estimates the resulting pause.
//!
//! The plan feeds [`crate::decision`]'s pause input, replacing the constant
//! pause assumption with a state-aware one.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from migration planning.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationError {
    /// Executor counts must be positive and no larger than the task count.
    InvalidExecutors {
        /// Description of the violation.
        what: String,
    },
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::InvalidExecutors { what } => {
                write!(f, "invalid migration request: {what}")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// A task-to-executor assignment for one operator.
///
/// `assignment[t]` is the executor index owning task `t`. Executors are
/// `0..executors`; Storm's balanced contract holds: every executor owns
/// `⌊tasks/executors⌋` or `⌈tasks/executors⌉` tasks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskAssignment {
    executors: u32,
    assignment: Vec<u32>,
}

impl TaskAssignment {
    /// The canonical balanced assignment of `tasks` tasks to `executors`
    /// executors: tasks are dealt round-robin, the layout Storm's default
    /// scheduler produces.
    ///
    /// # Errors
    ///
    /// Rejects zero executors and `executors > tasks` (an executor would
    /// idle; Storm caps parallelism at the task count).
    pub fn balanced(tasks: usize, executors: u32) -> Result<Self, MigrationError> {
        validate(tasks, executors)?;
        Ok(TaskAssignment {
            executors,
            assignment: (0..tasks).map(|t| (t as u32) % executors).collect(),
        })
    }

    /// Number of executors.
    pub fn executors(&self) -> u32 {
        self.executors
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.assignment.len()
    }

    /// The executor owning task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.tasks()`.
    pub fn owner(&self, t: usize) -> u32 {
        self.assignment[t]
    }

    /// Tasks owned by executor `e`.
    pub fn tasks_of(&self, e: u32) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(t, &owner)| (owner == e).then_some(t))
            .collect()
    }

    /// Whether the balanced-load contract holds (executor loads differ by
    /// at most one task and every executor owns at least one).
    pub fn is_balanced(&self) -> bool {
        let mut counts = vec![0usize; self.executors as usize];
        for &owner in &self.assignment {
            counts[owner as usize] += 1;
        }
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        min >= 1 && max - min <= 1
    }
}

/// A migration plan between two executor counts for one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The source assignment.
    pub from: TaskAssignment,
    /// The destination assignment.
    pub to: TaskAssignment,
    /// Tasks whose owning executor changes (state that must move).
    pub moved_tasks: Vec<usize>,
}

impl MigrationPlan {
    /// Number of tasks that move.
    pub fn moved(&self) -> usize {
        self.moved_tasks.len()
    }

    /// Fraction of tasks that move.
    pub fn moved_fraction(&self) -> f64 {
        if self.from.tasks() == 0 {
            0.0
        } else {
            self.moved() as f64 / self.from.tasks() as f64
        }
    }

    /// Estimates the pause (seconds) this migration imposes:
    /// `base_pause + moved_state_bytes / bandwidth`, where moved state is
    /// `moved · state_bytes_per_task`.
    ///
    /// Returns `base_pause` when nothing moves.
    pub fn pause_estimate(
        &self,
        state_bytes_per_task: f64,
        bandwidth_bytes_per_sec: f64,
        base_pause_secs: f64,
    ) -> f64 {
        if self.moved() == 0 {
            return base_pause_secs;
        }
        base_pause_secs
            + (self.moved() as f64 * state_bytes_per_task) / bandwidth_bytes_per_sec.max(1.0)
    }
}

fn validate(tasks: usize, executors: u32) -> Result<(), MigrationError> {
    if executors == 0 {
        return Err(MigrationError::InvalidExecutors {
            what: "zero executors".to_owned(),
        });
    }
    if executors as usize > tasks {
        return Err(MigrationError::InvalidExecutors {
            what: format!("{executors} executors exceed {tasks} tasks"),
        });
    }
    Ok(())
}

/// Plans a minimal-movement migration of `from`'s tasks onto `executors`
/// executors.
///
/// The algorithm keeps every task on its current executor when that
/// executor survives (`e < executors`) and still has quota, then assigns
/// the remainder — tasks of removed executors plus overflow of shrunk
/// quotas — to executors with spare quota. The result is balanced and moves
/// the minimum possible number of tasks: no balanced target can keep more
/// tasks in place than each surviving executor's quota allows.
///
/// # Errors
///
/// Rejects zero `executors` or `executors > tasks` (see
/// [`TaskAssignment::balanced`]).
pub fn plan_migration(
    from: &TaskAssignment,
    executors: u32,
) -> Result<MigrationPlan, MigrationError> {
    let tasks = from.tasks();
    validate(tasks, executors)?;

    // Quotas: the first `tasks % executors` executors own one extra task.
    let base = tasks / executors as usize;
    let extra = tasks % executors as usize;
    let quota = |e: u32| -> usize { base + usize::from((e as usize) < extra) };

    let mut assignment: Vec<Option<u32>> = vec![None; tasks];
    let mut remaining: Vec<usize> = (0..executors).map(quota).collect();

    // Pass 1: retain tasks whose executor survives and has quota left.
    for (t, slot) in assignment.iter_mut().enumerate() {
        let owner = from.owner(t);
        if owner < executors && remaining[owner as usize] > 0 {
            *slot = Some(owner);
            remaining[owner as usize] -= 1;
        }
    }
    // Pass 2: place displaced tasks into spare quota, lowest executor
    // first (total quota equals the task count, so every task finds a
    // slot).
    let mut next_exec: u32 = 0;
    let mut moved_tasks = Vec::new();
    for (t, slot) in assignment.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        while remaining[next_exec as usize] == 0 {
            next_exec += 1;
        }
        *slot = Some(next_exec);
        remaining[next_exec as usize] -= 1;
        moved_tasks.push(t);
    }

    let to = TaskAssignment {
        executors,
        assignment: assignment
            .into_iter()
            .map(|a| a.expect("every task assigned"))
            .collect(),
    };
    Ok(MigrationPlan {
        from: from.clone(),
        to,
        moved_tasks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_assignment_satisfies_contract() {
        for (tasks, execs) in [(12usize, 4u32), (13, 4), (25, 5), (7, 7), (8, 1)] {
            let a = TaskAssignment::balanced(tasks, execs).unwrap();
            assert!(a.is_balanced(), "{tasks} tasks on {execs}");
            assert_eq!(a.tasks(), tasks);
            assert_eq!(a.executors(), execs);
        }
    }

    #[test]
    fn invalid_executor_counts_rejected() {
        assert!(TaskAssignment::balanced(8, 0).is_err());
        assert!(TaskAssignment::balanced(4, 5).is_err());
        let a = TaskAssignment::balanced(8, 4).unwrap();
        assert!(plan_migration(&a, 0).is_err());
        assert!(plan_migration(&a, 9).is_err());
    }

    #[test]
    fn identity_migration_moves_nothing() {
        let a = TaskAssignment::balanced(12, 4).unwrap();
        let plan = plan_migration(&a, 4).unwrap();
        assert_eq!(plan.moved(), 0);
        assert_eq!(plan.to, a);
    }

    #[test]
    fn scale_out_moves_only_the_new_executors_share() {
        // 20 tasks: 4 executors own 5 each; going to 5 executors each must
        // own 4, so exactly 4 tasks move (one from each old executor).
        let a = TaskAssignment::balanced(20, 4).unwrap();
        let plan = plan_migration(&a, 5).unwrap();
        assert_eq!(plan.moved(), 4, "moved {:?}", plan.moved_tasks);
        assert!(plan.to.is_balanced());
        // All moved tasks land on the new executor.
        for &t in &plan.moved_tasks {
            assert_eq!(plan.to.owner(t), 4);
        }
    }

    #[test]
    fn scale_in_moves_only_the_removed_executors_tasks() {
        // 20 tasks on 5 executors (4 each) down to 4 executors (5 each):
        // exactly the removed executor's 4 tasks move.
        let a = TaskAssignment::balanced(20, 5).unwrap();
        let plan = plan_migration(&a, 4).unwrap();
        assert_eq!(plan.moved(), 4);
        for &t in &plan.moved_tasks {
            assert_eq!(a.owner(t), 4, "only executor 4's tasks should move");
        }
        assert!(plan.to.is_balanced());
    }

    #[test]
    fn naive_rebuild_moves_more_than_planned() {
        // Contrast with rebuilding the round-robin layout from scratch.
        let a = TaskAssignment::balanced(24, 4).unwrap();
        let plan = plan_migration(&a, 6).unwrap();
        let naive = TaskAssignment::balanced(24, 6).unwrap();
        let naive_moves = (0..24).filter(|&t| naive.owner(t) != a.owner(t)).count();
        assert!(
            plan.moved() < naive_moves,
            "planned {} vs naive {naive_moves}",
            plan.moved()
        );
        // Lower bound: 24 tasks must shed 4 per old executor (6->4 quota):
        // 8 moves minimum.
        assert_eq!(plan.moved(), 8);
    }

    #[test]
    fn pause_estimate_scales_with_state() {
        let a = TaskAssignment::balanced(20, 4).unwrap();
        let plan = plan_migration(&a, 5).unwrap();
        let small = plan.pause_estimate(1e6, 1e9, 0.5); // 4 MB over 1 GB/s
        let large = plan.pause_estimate(1e9, 1e9, 0.5); // 4 GB over 1 GB/s
        assert!((small - 0.504).abs() < 1e-9, "{small}");
        assert!((large - 4.5).abs() < 1e-9, "{large}");
        let idle = plan_migration(&a, 4).unwrap();
        assert_eq!(idle.pause_estimate(1e9, 1e9, 0.5), 0.5);
    }

    #[test]
    fn moved_fraction_reported() {
        let a = TaskAssignment::balanced(20, 4).unwrap();
        let plan = plan_migration(&a, 5).unwrap();
        assert!((plan.moved_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tasks_of_lists_ownership() {
        let a = TaskAssignment::balanced(6, 3).unwrap();
        assert_eq!(a.tasks_of(0), vec![0, 3]);
        assert_eq!(a.tasks_of(2), vec![2, 5]);
        assert_eq!(a.owner(4), 1);
    }
}
