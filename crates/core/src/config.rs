//! DRS configuration (paper App. B-C: the configuration reader).
//!
//! [`DrsConfig`] gathers every tunable the paper exposes: the optimisation
//! goal (Program 4 vs Program 6), measurement sampling and smoothing
//! parameters, the rebalance decision policy and the warm-up horizon.

use crate::decision::DecisionPolicy;
use crate::measurer::{InvalidSmoothing, Smoothing};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which optimisation problem DRS solves each round (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizationGoal {
    /// Program 4: minimise expected sojourn given at most `k_max`
    /// processors.
    MinLatency {
        /// The processor budget `Kmax`.
        k_max: u32,
    },
    /// Program 6: minimise processors subject to `E[T] ≤ t_max` seconds;
    /// machines are grown/shrunk through the negotiator.
    MinResources {
        /// The real-time constraint `Tmax` in seconds.
        t_max_secs: f64,
    },
}

impl OptimizationGoal {
    /// The latency target, when the goal has one.
    pub fn t_max(&self) -> Option<f64> {
        match *self {
            OptimizationGoal::MinLatency { .. } => None,
            OptimizationGoal::MinResources { t_max_secs } => Some(t_max_secs),
        }
    }
}

impl fmt::Display for OptimizationGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizationGoal::MinLatency { k_max } => {
                write!(f, "min-latency(Kmax={k_max})")
            }
            OptimizationGoal::MinResources { t_max_secs } => {
                write!(f, "min-resources(Tmax={t_max_secs}s)")
            }
        }
    }
}

/// Measurement sampling parameters (paper App. B-A: bi-layer sampling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Each executor records the metric of one tuple every `sample_every`
    /// local inputs (`Nm`).
    pub sample_every: u32,
    /// The central measurement operator pulls updates every
    /// `pull_interval_secs` seconds (`Tm`).
    pub pull_interval_secs: f64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            sample_every: 20,
            pull_interval_secs: 60.0,
        }
    }
}

/// Full DRS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrsConfig {
    /// The optimisation goal.
    pub goal: OptimizationGoal,
    /// Metric smoothing strategy.
    pub smoothing: Smoothing,
    /// Sampling parameters.
    pub sampling: SamplingConfig,
    /// Rebalance cost/benefit policy.
    pub policy: DecisionPolicy,
    /// Number of initial measurement windows to observe before acting
    /// (estimates are unreliable while queues fill).
    pub warmup_windows: u64,
    /// Windows to hold after executing a rebalance before considering
    /// another. The pause pollutes the next window's sojourn measurements
    /// (queued tuples carry the pause in their latency); holding lets the
    /// queues drain and the smoothed metrics recover, preventing
    /// flap-chains after a scaling action.
    pub cooldown_windows: u64,
}

impl DrsConfig {
    /// A sensible configuration for Program 4 with the given budget.
    pub fn min_latency(k_max: u32) -> Self {
        DrsConfig {
            goal: OptimizationGoal::MinLatency { k_max },
            smoothing: Smoothing::Alpha { alpha: 0.5 },
            sampling: SamplingConfig::default(),
            policy: DecisionPolicy::default(),
            warmup_windows: 2,
            cooldown_windows: 1,
        }
    }

    /// A sensible configuration for Program 6 with the given target
    /// (seconds).
    pub fn min_resources(t_max_secs: f64) -> Self {
        DrsConfig {
            goal: OptimizationGoal::MinResources { t_max_secs },
            smoothing: Smoothing::Alpha { alpha: 0.5 },
            sampling: SamplingConfig::default(),
            policy: DecisionPolicy::default(),
            warmup_windows: 2,
            cooldown_windows: 1,
        }
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Rejects invalid smoothing parameters, non-positive `Tmax`,
    /// non-positive pull interval, or zero `sample_every`.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        self.smoothing
            .validate()
            .map_err(InvalidConfig::Smoothing)?;
        if let OptimizationGoal::MinResources { t_max_secs } = self.goal {
            if !t_max_secs.is_finite() || t_max_secs <= 0.0 {
                return Err(InvalidConfig::Other(format!(
                    "Tmax must be finite and positive, got {t_max_secs}"
                )));
            }
        }
        if self.sampling.sample_every == 0 {
            return Err(InvalidConfig::Other("sample_every must be >= 1".to_owned()));
        }
        if !self.sampling.pull_interval_secs.is_finite() || self.sampling.pull_interval_secs <= 0.0
        {
            return Err(InvalidConfig::Other(format!(
                "pull interval must be positive, got {}",
                self.sampling.pull_interval_secs
            )));
        }
        Ok(())
    }
}

/// Error from [`DrsConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidConfig {
    /// The smoothing parameters are invalid.
    Smoothing(InvalidSmoothing),
    /// Another constraint failed.
    Other(String),
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidConfig::Smoothing(e) => write!(f, "{e}"),
            InvalidConfig::Other(s) => write!(f, "invalid DRS config: {s}"),
        }
    }
}

impl std::error::Error for InvalidConfig {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InvalidConfig::Smoothing(e) => Some(e),
            InvalidConfig::Other(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DrsConfig::min_latency(22).validate().unwrap();
        DrsConfig::min_resources(0.5).validate().unwrap();
    }

    #[test]
    fn goal_exposes_t_max() {
        assert_eq!(OptimizationGoal::MinLatency { k_max: 22 }.t_max(), None);
        assert_eq!(
            OptimizationGoal::MinResources { t_max_secs: 0.5 }.t_max(),
            Some(0.5)
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = DrsConfig::min_resources(-1.0);
        assert!(c.validate().is_err());
        c = DrsConfig::min_latency(22);
        c.smoothing = Smoothing::Alpha { alpha: 2.0 };
        assert!(c.validate().is_err());
        c = DrsConfig::min_latency(22);
        c.sampling.sample_every = 0;
        assert!(c.validate().is_err());
        c = DrsConfig::min_latency(22);
        c.sampling.pull_interval_secs = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn goals_display() {
        assert!(OptimizationGoal::MinLatency { k_max: 22 }
            .to_string()
            .contains("Kmax=22"));
        assert!(OptimizationGoal::MinResources { t_max_secs: 0.5 }
            .to_string()
            .contains("Tmax=0.5"));
    }
}
