//! Machine-granular, resource-aware executor placement (R-Storm style).
//!
//! DRS (the paper) schedules executor *counts* `k = (k_1, …, k_N)`; real
//! clusters hand those executors out *on machines* with finite CPU, memory
//! and network budgets. This module closes that gap:
//!
//! * a [`MachinePool`] describes the machines — per-machine capacity
//!   vectors ([`drs_topology::ResourceProfile`] reused as the capacity
//!   type), shared across fleet shards;
//! * a [`PlacementRequest`] carries each operator's executor count, its
//!   per-executor resource demand, and the measured tuple rate on every
//!   edge (from `WindowSample`-derived rates);
//! * [`solve`] maps executors onto machines to minimise expected
//!   **cross-machine traffic** subject to per-machine capacity.
//!
//! # Objective
//!
//! Under shuffle grouping, an edge `u → v` carrying `r` tuples/s crosses
//! machines with probability `1 − Σ_m (c_u[m]/k_u)·(c_v[m]/k_v)` where
//! `c_i[m]` is the number of `i`-executors placed on machine `m`. The
//! solver minimises `Σ_edges r_e · crossprob_e` subject to
//! `Σ_i c_i[m] · profile_i ≤ capacity_m` componentwise on every machine.
//!
//! # Solvers
//!
//! [`solve`] dispatches between two strategies:
//!
//! * **exhaustive oracle** — a pruned depth-first search over per-operator
//!   machine compositions, exact, used when the enumeration size
//!   `Π_i C(k_i+m−1, m−1)` is small (≤ [`EXACT_LIMIT`]). Ties are broken
//!   lexicographically so the result is deterministic.
//! * **greedy by resource distance** — R-Storm style: operators in
//!   descending order of adjacent traffic, each executor placed on the
//!   feasible machine with the highest co-location affinity to
//!   already-placed neighbours, ties broken by smallest resource distance
//!   (best fit), then lowest machine index.
//!
//! The greedy heuristic equals the oracle on small instances (enforced by
//! proptests in `tests/placement_properties.rs`) and stays within capacity
//! always; on large instances only the oracle guarantee is dropped.
//!
//! # Fleet sharing
//!
//! [`plan`] places *several* topologies (fleet shards) into one shared
//! pool. Shards are processed in sorted-name order regardless of argument
//! order, so the outcome is deterministic across shard-advance orders.
//! It re-solves every shard from an empty pool — correct, but at 10⁵+
//! shards a settled window would pay full placement cost for zero demand
//! change. The fleet driver therefore plans through the warm-start state
//! below and uses [`plan`] only as the from-scratch reference.
//!
//! # Warm-start protocol ([`FleetPlacementState`])
//!
//! [`FleetPlacementState`] persists across windows what [`plan`] rebuilds
//! each call: every shard's cached [`PlacementRequest`] and solved
//! [`Placement`], the usage each placement charges per machine, and the
//! pool's **residual capacity**. Each shard carries a **placement epoch**
//! that the owner bumps (via [`FleetPlacementState::touch`]) only when the
//! shard's inputs actually changed — its allocation, its operator resource
//! loads, or (rate-banded by the caller, to absorb measurement wobble) its
//! edge traffic. The per-window protocol:
//!
//! 1. [`begin_window`](FleetPlacementState::begin_window), then
//!    [`sync_pool`](FleetPlacementState::sync_pool) — a capacity change
//!    invalidates everything;
//! 2. per shard: look the slot up
//!    ([`slot_of`](FleetPlacementState::slot_of) /
//!    [`insert`](FleetPlacementState::insert)), compare the cached
//!    [`request`](FleetPlacementState::request) against this window's
//!    inputs, rewrite it in place via
//!    [`touch`](FleetPlacementState::touch) only on a real change, and
//!    [`mark_seen`](FleetPlacementState::mark_seen);
//! 3. [`replan`](FleetPlacementState::replan) — shards not seen this
//!    window are swept out (their usage refunded to the residual), and
//!    then only **dirty** shards are re-placed: each one's stale usage is
//!    released delta-style and the shard re-solved via [`solve_into`]
//!    against the residual capacity, in sorted-name order. No fresh pool
//!    build, no untouched shard re-solved; an unchanged fleet performs
//!    zero solver calls and zero heap allocations.
//!
//! Sequential repair can stray from the batch greedy optimum (later
//! shards re-solve against capacity fragmented by earlier history), so
//! the state tracks a **drift score** — the fraction of the fleet
//! repaired or removed since the last batch solve. When it reaches 1.0,
//! `replan` runs a bounded full re-solve: residual reset to the full
//! capacities, every shard solved in sorted-name order — **bit-for-bit
//! what [`plan`] returns** for the same requests (the property tests in
//! `tests/placement_properties.rs` pin this, along with capacity safety
//! on every path). At churn fraction `c` this amortizes one batch solve
//! over ~`1/c` windows of O(changed shards) repairs.
//!
//! [`round_robin`] provides the locality-blind baseline the `repro place`
//! bench compares against: same executor counts, machines cycled.

use drs_topology::ResourceProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Above this estimated enumeration size, [`solve`] switches from the
/// exhaustive oracle to the greedy heuristic.
pub const EXACT_LIMIT: u64 = 50_000;

/// Slack tolerance for floating-point capacity comparisons.
const EPS: f64 = 1e-9;

/// One machine: a name and a capacity vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable machine name (unique within a pool by convention).
    pub name: String,
    /// Total resource capacity of this machine.
    pub capacity: ResourceProfile,
}

/// A set of machines with per-machine CPU/mem/network capacity, shared by
/// every shard of a fleet.
///
/// The pool itself is immutable during solving; remaining capacity is
/// tracked per [`solve`]/[`plan`] call so concurrent planners cannot
/// interfere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePool {
    machines: Vec<MachineSpec>,
}

impl MachinePool {
    /// Creates a pool from explicit machine specs.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidPool`] if the pool is empty or any capacity
    /// component is negative/non-finite.
    pub fn new(machines: Vec<MachineSpec>) -> Result<Self, PlacementError> {
        if machines.is_empty() {
            return Err(PlacementError::InvalidPool {
                what: "pool has no machines".into(),
            });
        }
        for m in &machines {
            if !m.capacity.is_valid() {
                return Err(PlacementError::InvalidPool {
                    what: format!("machine {} has an invalid capacity vector", m.name),
                });
            }
        }
        Ok(MachinePool { machines })
    }

    /// A homogeneous pool of `count` machines named `m0, m1, …`, each with
    /// the same capacity.
    ///
    /// # Errors
    ///
    /// See [`MachinePool::new`].
    pub fn uniform(count: usize, capacity: ResourceProfile) -> Result<Self, PlacementError> {
        MachinePool::new(
            (0..count)
                .map(|i| MachineSpec {
                    name: format!("m{i}"),
                    capacity,
                })
                .collect(),
        )
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the pool is empty (never true for constructed pools).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machine specs, in index order.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    fn capacities(&self) -> Vec<ResourceProfile> {
        self.machines.iter().map(|m| m.capacity).collect()
    }
}

/// One operator's placement inputs: how many executors it runs and what
/// each executor demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorLoad {
    /// Executor count `k_i` (model order — the caller decides which
    /// operators participate; spouts may be included with `k = 1`).
    pub executors: u32,
    /// Per-executor resource demand.
    pub profile: ResourceProfile,
}

/// Measured traffic on one operator edge, used as the cross-machine cost
/// weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeTraffic {
    /// Source operator index (into [`PlacementRequest::operators`]).
    pub from: usize,
    /// Destination operator index.
    pub to: usize,
    /// Measured tuple rate on this edge (tuples/s, from `WindowSample`
    /// arrival rates × gains).
    pub rate: f64,
}

/// Everything the solver needs for one topology: operator loads plus
/// rate-weighted edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlacementRequest {
    /// Operator loads, indexed by the operator indices used in `edges`.
    pub operators: Vec<OperatorLoad>,
    /// Rate-weighted edges between the operators.
    pub edges: Vec<EdgeTraffic>,
}

impl PlacementRequest {
    fn validate(&self, machines: usize) -> Result<(), PlacementError> {
        for (i, op) in self.operators.iter().enumerate() {
            if !op.profile.is_valid() {
                return Err(PlacementError::InvalidRequest {
                    what: format!("operator {i} has an invalid resource profile"),
                });
            }
        }
        for e in &self.edges {
            if e.from >= self.operators.len() || e.to >= self.operators.len() {
                return Err(PlacementError::InvalidRequest {
                    what: format!("edge {} -> {} references an unknown operator", e.from, e.to),
                });
            }
            if !e.rate.is_finite() || e.rate < 0.0 {
                return Err(PlacementError::InvalidRequest {
                    what: format!("edge {} -> {} has invalid rate {}", e.from, e.to, e.rate),
                });
            }
        }
        if machines == 0 {
            return Err(PlacementError::InvalidPool {
                what: "pool has no machines".into(),
            });
        }
        Ok(())
    }
}

/// A machine assignment: `counts[op][machine]` executors of `op` run on
/// `machine`. Produced by [`solve`]/[`plan`]/[`round_robin`]; carried by
/// `RebalancePlan` through the control plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    counts: Vec<Vec<u32>>,
}

impl Placement {
    /// Builds a placement from raw per-operator, per-machine counts.
    /// Intended for tests and backends reconstructing state; solver output
    /// is always capacity-checked.
    pub fn from_counts(counts: Vec<Vec<u32>>) -> Self {
        Placement { counts }
    }

    /// `counts()[op][machine]` = executors of `op` on `machine`.
    pub fn counts(&self) -> &[Vec<u32>] {
        &self.counts
    }

    /// Number of operators covered.
    pub fn operators(&self) -> usize {
        self.counts.len()
    }

    /// Number of machines covered (0 for an empty placement).
    pub fn machines(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Total executors of one operator.
    pub fn executors_of(&self, op: usize) -> u32 {
        self.counts[op].iter().sum()
    }

    /// Per-operator totals, i.e. the allocation vector this placement
    /// realises.
    pub fn allocation(&self) -> Vec<u32> {
        (0..self.counts.len())
            .map(|i| self.executors_of(i))
            .collect()
    }

    /// Whether this placement realises exactly `allocation` — the
    /// allocation-free form of `placement.allocation() == allocation`,
    /// for comparisons on the steady-state fleet path.
    pub fn allocation_matches(&self, allocation: &[u32]) -> bool {
        self.counts.len() == allocation.len()
            && self
                .counts
                .iter()
                .zip(allocation)
                .all(|(row, &k)| row.iter().sum::<u32>() == k)
    }

    /// Resource usage per machine given the operators' demand profiles.
    pub fn usage(&self, profiles: &[ResourceProfile]) -> Vec<ResourceProfile> {
        let machines = self.machines();
        let mut usage = vec![ResourceProfile::uniform(0.0); machines];
        for (op, per_machine) in self.counts.iter().enumerate() {
            let p = profiles[op];
            for (m, &c) in per_machine.iter().enumerate() {
                let c = c as f64;
                usage[m].cpu += c * p.cpu;
                usage[m].mem += c * p.mem;
                usage[m].net += c * p.net;
            }
        }
        usage
    }

    /// Probability that a tuple on edge `from → to` crosses machines under
    /// shuffle grouping: `1 − Σ_m (c_from[m]/k_from)·(c_to[m]/k_to)`.
    ///
    /// Edges touching an operator with zero executors contribute 0.
    pub fn cross_probability(&self, from: usize, to: usize) -> f64 {
        let kf = self.executors_of(from) as f64;
        let kt = self.executors_of(to) as f64;
        if kf == 0.0 || kt == 0.0 {
            return 0.0;
        }
        let mut colocated = 0.0;
        for m in 0..self.machines() {
            colocated += (self.counts[from][m] as f64 / kf) * (self.counts[to][m] as f64 / kt);
        }
        (1.0 - colocated).max(0.0)
    }

    /// Expected cross-machine tuple rate: `Σ_e rate_e · crossprob_e`.
    pub fn cross_rate(&self, edges: &[EdgeTraffic]) -> f64 {
        edges
            .iter()
            .map(|e| e.rate * self.cross_probability(e.from, e.to))
            .sum()
    }

    /// Expected fraction of edge traffic that crosses machines (0 when the
    /// edges carry no traffic).
    pub fn cross_fraction(&self, edges: &[EdgeTraffic]) -> f64 {
        let total: f64 = edges.iter().map(|e| e.rate).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.cross_rate(edges) / total
    }
}

/// Errors produced by the placement solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The machine pool was empty or carried invalid capacities.
    InvalidPool {
        /// Description of the problem.
        what: String,
    },
    /// The request referenced unknown operators or invalid rates/profiles.
    InvalidRequest {
        /// Description of the problem.
        what: String,
    },
    /// No machine had room for one more executor of `op` — the demand does
    /// not fit the pool.
    Infeasible {
        /// Operator index that could not be placed.
        op: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InvalidPool { what } => write!(f, "invalid machine pool: {what}"),
            PlacementError::InvalidRequest { what } => {
                write!(f, "invalid placement request: {what}")
            }
            PlacementError::Infeasible { op } => {
                write!(f, "no machine has capacity for operator {op}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

fn fits(remaining: &ResourceProfile, demand: &ResourceProfile) -> bool {
    remaining.cpu + EPS >= demand.cpu
        && remaining.mem + EPS >= demand.mem
        && remaining.net + EPS >= demand.net
}

fn charge(remaining: &mut ResourceProfile, demand: &ResourceProfile) {
    remaining.cpu -= demand.cpu;
    remaining.mem -= demand.mem;
    remaining.net -= demand.net;
}

fn refund(remaining: &mut ResourceProfile, demand: &ResourceProfile) {
    remaining.cpu += demand.cpu;
    remaining.mem += demand.mem;
    remaining.net += demand.net;
}

/// R-Storm's resource distance: Euclidean distance between what the
/// executor demands and what the machine still has. Smaller = tighter fit.
fn resource_distance(remaining: &ResourceProfile, demand: &ResourceProfile) -> f64 {
    let d = |r: f64, w: f64| (r - w) * (r - w);
    (d(remaining.cpu, demand.cpu) + d(remaining.mem, demand.mem) + d(remaining.net, demand.net))
        .sqrt()
}

/// Places one topology into the pool, minimising cross-machine traffic.
///
/// Dispatches to the exhaustive oracle when the instance is small (see
/// [`EXACT_LIMIT`]) and to the greedy heuristic otherwise. Both respect
/// per-machine capacity exactly; both are deterministic.
///
/// # Errors
///
/// [`PlacementError::Infeasible`] when the executors do not fit,
/// [`PlacementError::InvalidRequest`]/[`PlacementError::InvalidPool`] for
/// malformed inputs.
pub fn solve(pool: &MachinePool, request: &PlacementRequest) -> Result<Placement, PlacementError> {
    let mut remaining = pool.capacities();
    solve_into(&mut remaining, request)
}

/// Like [`solve`], but draws from (and updates) externally tracked
/// remaining capacities — the building block [`plan`] and
/// [`FleetPlacementState`] use to share one pool across shards.
///
/// # Errors
///
/// Same conditions as [`solve`]; `remaining.len() == 0` reports
/// [`PlacementError::InvalidPool`].
pub fn solve_into(
    remaining: &mut [ResourceProfile],
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    request.validate(remaining.len())?;
    if enumeration_size(request, remaining.len()) <= EXACT_LIMIT {
        oracle_into(remaining, request)
    } else {
        greedy_into(remaining, request)
    }
}

/// Estimated exhaustive-search size: `Π_i C(k_i+m−1, m−1)`, saturating.
fn enumeration_size(request: &PlacementRequest, machines: usize) -> u64 {
    let mut size: u64 = 1;
    for op in &request.operators {
        let comps = compositions_count(op.executors as u64, machines as u64);
        size = size.saturating_mul(comps);
        if size > EXACT_LIMIT {
            return u64::MAX;
        }
    }
    size
}

/// `C(k+m−1, m−1)`: number of ways to split `k` identical executors over
/// `m` machines. Saturating.
fn compositions_count(k: u64, m: u64) -> u64 {
    let n = k + m - 1;
    let r = (m - 1).min(k);
    let mut acc: u64 = 1;
    for i in 0..r {
        acc = acc.saturating_mul(n - i) / (i + 1);
        if acc > EXACT_LIMIT {
            return u64::MAX;
        }
    }
    acc
}

/// Greedy solver: operators in descending adjacent-traffic order; each
/// executor goes to the feasible machine with the best
/// (affinity, −resource distance, −index) score.
fn greedy_into(
    remaining: &mut [ResourceProfile],
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    let machines = remaining.len();
    let n = request.operators.len();
    let mut counts = vec![vec![0u32; machines]; n];

    // Adjacent traffic per operator decides placement order: the heaviest
    // communicators choose machines first, so their neighbours can follow.
    let mut traffic = vec![0.0f64; n];
    for e in &request.edges {
        traffic[e.from] += e.rate;
        traffic[e.to] += e.rate;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        traffic[b]
            .partial_cmp(&traffic[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    for &op in &order {
        let load = &request.operators[op];
        for _ in 0..load.executors {
            let mut best: Option<(f64, f64, usize)> = None; // (affinity, dist, machine)
            for (m, rem) in remaining.iter().enumerate() {
                if !fits(rem, &load.profile) {
                    continue;
                }
                // Affinity: traffic to executors already sitting on m,
                // normalised by the neighbour's executor count so one
                // co-located neighbour executor is worth rate/k.
                let mut affinity = 0.0;
                for e in &request.edges {
                    let other = if e.from == op {
                        e.to
                    } else if e.to == op {
                        e.from
                    } else {
                        continue;
                    };
                    let k_other = request.operators[other].executors.max(1) as f64;
                    affinity += e.rate * counts[other][m] as f64 / k_other;
                }
                let dist = resource_distance(rem, &load.profile);
                let better = match &best {
                    None => true,
                    Some((ba, bd, _)) => {
                        affinity > ba + EPS || ((affinity - ba).abs() <= EPS && dist < bd - EPS)
                    }
                };
                if better {
                    best = Some((affinity, dist, m));
                }
            }
            let (_, _, m) = best.ok_or(PlacementError::Infeasible { op })?;
            counts[op][m] += 1;
            charge(&mut remaining[m], &load.profile);
        }
    }
    Ok(Placement { counts })
}

/// Exhaustive oracle: pruned DFS over per-executor machine choices, exact
/// on the objective, deterministic (lexicographically smallest optimum).
fn oracle_into(
    remaining: &mut [ResourceProfile],
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    let machines = remaining.len();
    let n = request.operators.len();
    let mut counts = vec![vec![0u32; machines]; n];
    let mut best: Option<(f64, Vec<Vec<u32>>)> = None;

    // DFS over operators; within an operator, enumerate non-increasing-free
    // compositions via per-executor choices m >= previous machine to avoid
    // revisiting permutations of identical executors.
    fn dfs(
        op: usize,
        exec: u32,
        min_machine: usize,
        request: &PlacementRequest,
        remaining: &mut [ResourceProfile],
        counts: &mut Vec<Vec<u32>>,
        best: &mut Option<(f64, Vec<Vec<u32>>)>,
    ) {
        let n = request.operators.len();
        if op == n {
            let placement = Placement {
                counts: counts.clone(),
            };
            let cost = placement.cross_rate(&request.edges);
            let better = match best {
                None => true,
                Some((bc, bcounts)) => {
                    cost < *bc - EPS || ((cost - *bc).abs() <= EPS && counts < bcounts)
                }
            };
            if better {
                *best = Some((cost, counts.clone()));
            }
            return;
        }
        let load = &request.operators[op];
        if exec == load.executors {
            // Prune: cost of edges fully placed so far already exceeds best.
            if let Some((bc, _)) = best {
                let placement = Placement {
                    counts: counts.clone(),
                };
                let mut partial = 0.0;
                for e in &request.edges {
                    if e.from <= op && e.to <= op {
                        partial += e.rate * placement.cross_probability(e.from, e.to);
                    }
                }
                if partial > *bc + EPS {
                    return;
                }
            }
            dfs(op + 1, 0, 0, request, remaining, counts, best);
            return;
        }
        for m in min_machine..remaining.len() {
            if !fits(&remaining[m], &load.profile) {
                continue;
            }
            charge(&mut remaining[m], &load.profile);
            counts[op][m] += 1;
            dfs(op, exec + 1, m, request, remaining, counts, best);
            counts[op][m] -= 1;
            refund(&mut remaining[m], &load.profile);
        }
    }

    dfs(0, 0, 0, request, remaining, &mut counts, &mut best);
    match best {
        Some((_, counts)) => {
            // Commit the winning placement's resource usage to `remaining`
            // so fleet-shared solving stays consistent.
            for (op, per_machine) in counts.iter().enumerate() {
                let profile = request.operators[op].profile;
                for (m, &c) in per_machine.iter().enumerate() {
                    for _ in 0..c {
                        charge(&mut remaining[m], &profile);
                    }
                }
            }
            Ok(Placement { counts })
        }
        None => {
            // Report the first operator that cannot fit anywhere as the
            // infeasible one (operator 0 if even it has no machine).
            let op = request
                .operators
                .iter()
                .position(|load| {
                    load.executors > 0 && !remaining.iter().any(|r| fits(r, &load.profile))
                })
                .unwrap_or(0);
            Err(PlacementError::Infeasible { op })
        }
    }
}

/// The greedy heuristic on its own, regardless of instance size. Mainly
/// for tests and benchmarks comparing it against [`oracle`].
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn greedy(pool: &MachinePool, request: &PlacementRequest) -> Result<Placement, PlacementError> {
    request.validate(pool.len())?;
    let mut remaining = pool.capacities();
    greedy_into(&mut remaining, request)
}

/// The exhaustive oracle on its own. Exponential — only call on small
/// instances (guard with [`EXACT_LIMIT`]-sized problems).
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn oracle(pool: &MachinePool, request: &PlacementRequest) -> Result<Placement, PlacementError> {
    request.validate(pool.len())?;
    let mut remaining = pool.capacities();
    oracle_into(&mut remaining, request)
}

/// Round-robin baseline: executors cycled over machines, skipping machines
/// without capacity. Locality-blind by construction — the control the
/// `repro place` bench compares [`solve`] against.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn round_robin(
    pool: &MachinePool,
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    request.validate(pool.len())?;
    let machines = pool.len();
    let mut remaining = pool.capacities();
    let mut counts = vec![vec![0u32; machines]; request.operators.len()];
    let mut cursor = 0usize;
    for (op, load) in request.operators.iter().enumerate() {
        for _ in 0..load.executors {
            let mut placed = false;
            for probe in 0..machines {
                let m = (cursor + probe) % machines;
                if fits(&remaining[m], &load.profile) {
                    counts[op][m] += 1;
                    charge(&mut remaining[m], &load.profile);
                    cursor = (m + 1) % machines;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(PlacementError::Infeasible { op });
            }
        }
    }
    Ok(Placement { counts })
}

/// Places several shards into one shared pool.
///
/// Shards are solved in sorted-`name` order (ties by argument index are
/// impossible for unique names; duplicate names fall back to argument
/// order), each drawing down the same remaining capacity, so the result is
/// independent of the order shards advanced or reported. Returns
/// placements aligned with the *argument* order.
///
/// # Errors
///
/// Fails with the first shard (in sorted order) whose executors do not
/// fit in what the earlier shards left behind.
pub fn plan(
    pool: &MachinePool,
    shards: &[(String, PlacementRequest)],
) -> Result<Vec<Placement>, PlacementError> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by(|&a, &b| shards[a].0.cmp(&shards[b].0).then(a.cmp(&b)));
    let mut remaining = pool.capacities();
    let mut out: Vec<Option<Placement>> = vec![None; shards.len()];
    for &i in &order {
        out[i] = Some(solve_into(&mut remaining, &shards[i].1)?);
    }
    Ok(out
        .into_iter()
        .map(|p| p.expect("all shards solved"))
        .collect())
}

/// Outcome of one [`FleetPlacementState::replan`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanOutcome {
    /// Nothing was dirty, removed, or invalidated: every cached placement
    /// stands and no solver call was made.
    Unchanged,
    /// Only the dirty shards (count attached) were re-solved against the
    /// residual capacity; everything else kept its cached placement.
    Repaired(usize),
    /// Accumulated drift, a pool change, or an explicit invalidation
    /// triggered a batch re-solve of every shard from the full capacities
    /// — bit-for-bit what [`plan`] returns for the same requests.
    FullSolve,
}

/// One shard's warm placement state (see [`FleetPlacementState`]).
/// Entries live at stable slot indices; a removed shard's slot is
/// tombstoned and recycled so surviving slots never shift.
#[derive(Debug, Clone)]
struct WarmEntry {
    name: String,
    live: bool,
    /// Placement epoch: bumped by [`FleetPlacementState::touch`] exactly
    /// when the shard's placement inputs actually changed.
    epoch: u64,
    /// Window stamp of the last [`FleetPlacementState::mark_seen`].
    seen: u64,
    dirty: bool,
    /// The cached placement inputs (buffers rewritten in place on change).
    request: PlacementRequest,
    /// The solved assignment for `request`.
    placement: Placement,
    /// What `placement` charges each machine — recorded at solve time, so
    /// the refund stays correct even after `request` is rewritten.
    usage: Vec<ResourceProfile>,
}

/// Warm-start fleet placement: the epoch-stamped, residual-capacity cache
/// the fleet driver persists across windows so a settled window performs
/// zero solver calls and a drifting one re-places only the shards that
/// changed. See the [module docs](self) for the per-window protocol and
/// the drift-bounded full re-solve that keeps sequential repair honest
/// against the batch optimum.
#[derive(Debug, Clone, Default)]
pub struct FleetPlacementState {
    entries: Vec<WarmEntry>,
    /// Live slots in sorted-name order — the solve order, identical to
    /// [`plan`]'s.
    order: Vec<usize>,
    /// Tombstoned slots available for reuse.
    free: Vec<usize>,
    /// The pool's full capacities, snapshotted by
    /// [`FleetPlacementState::sync_pool`].
    capacities: Vec<ResourceProfile>,
    /// Residual capacity: `capacities` minus every live entry's `usage`.
    remaining: Vec<ResourceProfile>,
    /// Fraction of the fleet repaired or removed since the last batch
    /// solve; `>= 1.0` triggers one.
    drift: f64,
    /// Window stamp (bumped by [`FleetPlacementState::begin_window`]).
    stamp: u64,
    seen_count: usize,
    dirty_count: usize,
    /// Sticky full-solve request: set by pool changes, repair dead ends,
    /// solver errors, and [`FleetPlacementState::invalidate`]; cleared
    /// only by a completed batch solve.
    needs_full: bool,
    solver_calls: u64,
    full_solves: u64,
}

impl FleetPlacementState {
    /// An empty warm state (no shards, no pool snapshot).
    pub fn new() -> Self {
        FleetPlacementState::default()
    }

    /// Starts a window: bumps the stamp that
    /// [`mark_seen`](FleetPlacementState::mark_seen) records, so
    /// [`replan`](FleetPlacementState::replan) can sweep out shards that
    /// were not presented this window.
    pub fn begin_window(&mut self) {
        self.stamp += 1;
        self.seen_count = 0;
    }

    /// Adopts `pool`'s capacities. A change (count or any capacity
    /// component) invalidates every cached placement — the next
    /// [`replan`](FleetPlacementState::replan) runs a full re-solve.
    /// Allocation-free when the pool is unchanged.
    pub fn sync_pool(&mut self, pool: &MachinePool) {
        let same = self.capacities.len() == pool.machines().len()
            && self
                .capacities
                .iter()
                .zip(pool.machines())
                .all(|(c, m)| *c == m.capacity);
        if !same {
            self.capacities.clear();
            self.capacities
                .extend(pool.machines().iter().map(|m| m.capacity));
            self.needs_full = true;
        }
    }

    /// Number of live shards in the state.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the state holds no live shards.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The slot of the shard named `name`, if present (binary search over
    /// the sorted live set; allocation-free).
    pub fn slot_of(&self, name: &str) -> Option<usize> {
        self.order
            .binary_search_by(|&s| self.entries[s].name.as_str().cmp(name))
            .ok()
            .map(|pos| self.order[pos])
    }

    /// The name of the shard at `slot` (for validating a cached slot
    /// across churn without a lookup).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_name(&self, slot: usize) -> &str {
        &self.entries[slot].name
    }

    /// Inserts a shard named `name` (or returns its existing slot),
    /// recycling a tombstoned slot when one is free. A new shard starts
    /// dirty with an empty request — the caller fills it via
    /// [`touch`](FleetPlacementState::touch). Slot indices of existing
    /// shards are never disturbed.
    pub fn insert(&mut self, name: &str) -> usize {
        let pos = match self
            .order
            .binary_search_by(|&s| self.entries[s].name.as_str().cmp(name))
        {
            Ok(pos) => return self.order[pos],
            Err(pos) => pos,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                let e = &mut self.entries[slot];
                e.name.clear();
                e.name.push_str(name);
                e.live = true;
                e.epoch = 0;
                e.seen = 0;
                e.dirty = true;
                e.request.operators.clear();
                e.request.edges.clear();
                e.placement.counts.clear();
                e.usage.clear();
                slot
            }
            None => {
                self.entries.push(WarmEntry {
                    name: name.to_owned(),
                    live: true,
                    epoch: 0,
                    seen: 0,
                    dirty: true,
                    request: PlacementRequest::default(),
                    placement: Placement { counts: Vec::new() },
                    usage: Vec::new(),
                });
                self.entries.len() - 1
            }
        };
        self.dirty_count += 1;
        self.order.insert(pos, slot);
        slot
    }

    /// Marks the shard at `slot` as presented this window, shielding it
    /// from [`replan`](FleetPlacementState::replan)'s removal sweep.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn mark_seen(&mut self, slot: usize) {
        let e = &mut self.entries[slot];
        if e.seen != self.stamp {
            e.seen = self.stamp;
            self.seen_count += 1;
        }
    }

    /// The cached placement inputs of the shard at `slot` — compare this
    /// window's inputs against it and call
    /// [`touch`](FleetPlacementState::touch) only on a real change.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn request(&self, slot: usize) -> &PlacementRequest {
        &self.entries[slot].request
    }

    /// Declares the shard at `slot` changed: bumps its placement epoch,
    /// marks it dirty for the next [`replan`](FleetPlacementState::replan),
    /// and hands back the cached request buffers to rewrite in place.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn touch(&mut self, slot: usize) -> &mut PlacementRequest {
        let e = &mut self.entries[slot];
        if !e.dirty {
            e.dirty = true;
            self.dirty_count += 1;
        }
        e.epoch += 1;
        &mut e.request
    }

    /// The shard's placement epoch: bumped by
    /// [`touch`](FleetPlacementState::touch) exactly when its placement
    /// inputs actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn epoch(&self, slot: usize) -> u64 {
        self.entries[slot].epoch
    }

    /// The solved assignment of the shard at `slot`, valid after the last
    /// successful [`replan`](FleetPlacementState::replan).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn placement(&self, slot: usize) -> &Placement {
        &self.entries[slot].placement
    }

    /// Forces the next [`replan`](FleetPlacementState::replan) to run the
    /// batch re-solve regardless of drift (the from-scratch cross-check
    /// hook, also useful after external state surgery).
    pub fn invalidate(&mut self) {
        self.needs_full = true;
    }

    /// Total [`solve_into`] invocations so far (one per shard actually
    /// re-placed — the "unchanged fleet performs zero solver calls"
    /// regression counter).
    pub fn solver_calls(&self) -> u64 {
        self.solver_calls
    }

    /// Batch re-solves performed so far.
    pub fn full_solves(&self) -> u64 {
        self.full_solves
    }

    /// The current drift score: fraction of the fleet repaired or removed
    /// since the last batch solve (`0.0` right after one).
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// The residual capacity per machine (capacities minus every live
    /// shard's solved usage).
    pub fn remaining(&self) -> &[ResourceProfile] {
        &self.remaining
    }

    /// Ends the window: sweeps out shards not
    /// [`mark_seen`](FleetPlacementState::mark_seen) since
    /// [`begin_window`](FleetPlacementState::begin_window) (refunding
    /// their usage), then re-places exactly the dirty shards against the
    /// residual capacity — or the whole fleet, batch-style, when the pool
    /// changed, drift reached 1.0, or a repair hit a dead end the batch
    /// solver might escape. Sorted-name solve order on both paths keeps
    /// the outcome independent of presentation order.
    ///
    /// On [`ReplanOutcome::Unchanged`] the call performs no solver work
    /// and no heap allocation.
    ///
    /// # Errors
    ///
    /// Any [`PlacementError`] from the underlying solver. After an error
    /// the cached placements are not trusted (the caller should plan no
    /// moves this window); the state heals itself by batch re-solving on
    /// the next call.
    pub fn replan(&mut self) -> Result<ReplanOutcome, PlacementError> {
        // Removal sweep: live entries not presented this window left the
        // fleet — refund their usage, tombstone their slots.
        let mut removed = 0usize;
        if self.seen_count < self.order.len() {
            let FleetPlacementState {
                entries,
                order,
                free,
                remaining,
                dirty_count,
                stamp,
                ..
            } = self;
            order.retain(|&slot| {
                let e = &mut entries[slot];
                if e.seen == *stamp {
                    return true;
                }
                for (m, u) in e.usage.iter().enumerate() {
                    refund(&mut remaining[m], u);
                }
                e.usage.clear();
                e.live = false;
                if e.dirty {
                    *dirty_count -= 1;
                    e.dirty = false;
                }
                free.push(slot);
                removed += 1;
                false
            });
        }
        if removed == 0 && self.dirty_count == 0 && !self.needs_full {
            return Ok(ReplanOutcome::Unchanged);
        }
        self.drift += (self.dirty_count + removed) as f64 / self.order.len().max(1) as f64;
        if self.needs_full || self.drift >= 1.0 {
            self.full_solve()?;
            return Ok(ReplanOutcome::FullSolve);
        }
        // Repair: release every dirty shard's stale usage first (so one
        // dirty shard's freed capacity is visible to another's re-solve),
        // then re-place them in sorted-name order against the residual.
        let repaired = self.dirty_count;
        {
            let FleetPlacementState {
                entries,
                order,
                remaining,
                ..
            } = self;
            for &slot in order.iter() {
                let e = &mut entries[slot];
                if !e.dirty {
                    continue;
                }
                for (m, u) in e.usage.iter().enumerate() {
                    refund(&mut remaining[m], u);
                }
                e.usage.clear();
            }
        }
        for idx in 0..self.order.len() {
            let slot = self.order[idx];
            if !self.entries[slot].dirty {
                continue;
            }
            match solve_into(&mut self.remaining, &self.entries[slot].request) {
                Ok(p) => {
                    self.solver_calls += 1;
                    let machines = self.remaining.len();
                    let e = &mut self.entries[slot];
                    usage_into(&p, &e.request.operators, machines, &mut e.usage);
                    e.placement = p;
                    e.dirty = false;
                }
                Err(PlacementError::Infeasible { .. }) => {
                    // Sequential repair painted itself into a corner the
                    // batch solver might escape (capacity fragmented by
                    // history): fall back to the full re-solve.
                    self.full_solve()?;
                    return Ok(ReplanOutcome::FullSolve);
                }
                Err(e) => {
                    // Malformed request: heal by batch re-solving once the
                    // caller fixes its inputs.
                    self.needs_full = true;
                    return Err(e);
                }
            }
        }
        self.dirty_count = 0;
        Ok(ReplanOutcome::Repaired(repaired))
    }

    /// Batch re-solve: residual reset to the full capacities, every live
    /// shard solved in sorted-name order — bit-for-bit [`plan`] on the
    /// cached requests. `needs_full` stays sticky until this completes,
    /// so a failed attempt retries batch-style next window.
    fn full_solve(&mut self) -> Result<(), PlacementError> {
        self.needs_full = true;
        self.remaining.clear();
        self.remaining.extend_from_slice(&self.capacities);
        for idx in 0..self.order.len() {
            let slot = self.order[idx];
            let p = solve_into(&mut self.remaining, &self.entries[slot].request)?;
            self.solver_calls += 1;
            let machines = self.remaining.len();
            let e = &mut self.entries[slot];
            usage_into(&p, &e.request.operators, machines, &mut e.usage);
            e.placement = p;
        }
        for idx in 0..self.order.len() {
            let slot = self.order[idx];
            self.entries[slot].dirty = false;
        }
        self.dirty_count = 0;
        self.drift = 0.0;
        self.needs_full = false;
        self.full_solves += 1;
        Ok(())
    }
}

/// `placement.usage(profiles)` into a reused buffer (the warm state's
/// per-entry usage record).
fn usage_into(
    placement: &Placement,
    operators: &[OperatorLoad],
    machines: usize,
    out: &mut Vec<ResourceProfile>,
) {
    out.clear();
    out.resize(machines, ResourceProfile::uniform(0.0));
    for (op, per_machine) in placement.counts.iter().enumerate() {
        let p = operators[op].profile;
        for (m, &c) in per_machine.iter().enumerate() {
            let c = c as f64;
            out[m].cpu += c * p.cpu;
            out[m].mem += c * p.mem;
            out[m].net += c * p.net;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_request(ks: &[u32]) -> PlacementRequest {
        PlacementRequest {
            operators: ks
                .iter()
                .map(|&k| OperatorLoad {
                    executors: k,
                    profile: ResourceProfile::default(),
                })
                .collect(),
            edges: Vec::new(),
        }
    }

    fn chain_edges(rates: &[f64]) -> Vec<EdgeTraffic> {
        rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| EdgeTraffic {
                from: i,
                to: i + 1,
                rate,
            })
            .collect()
    }

    #[test]
    fn pool_validation() {
        assert!(matches!(
            MachinePool::new(Vec::new()),
            Err(PlacementError::InvalidPool { .. })
        ));
        assert!(matches!(
            MachinePool::new(vec![MachineSpec {
                name: "bad".into(),
                capacity: ResourceProfile {
                    cpu: -1.0,
                    ..Default::default()
                },
            }]),
            Err(PlacementError::InvalidPool { .. })
        ));
        let pool = MachinePool::uniform(3, ResourceProfile::uniform(4.0)).unwrap();
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.machines()[2].name, "m2");
    }

    #[test]
    fn chain_colocates_on_one_machine_when_it_fits() {
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(10.0)).unwrap();
        let mut request = uniform_request(&[2, 2, 2]);
        request.edges = chain_edges(&[100.0, 100.0]);
        let p = solve(&pool, &request).unwrap();
        assert_eq!(p.allocation(), vec![2, 2, 2]);
        assert!(
            p.cross_fraction(&request.edges) < 1e-9,
            "chain that fits one machine should be fully co-located: {:?}",
            p.counts()
        );
    }

    #[test]
    fn capacity_forces_spread_but_is_respected() {
        // 6 executors of unit demand, machines hold 2 each: must use 3.
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(2.0)).unwrap();
        let mut request = uniform_request(&[3, 3]);
        request.edges = chain_edges(&[50.0]);
        let p = solve(&pool, &request).unwrap();
        assert_eq!(p.allocation(), vec![3, 3]);
        for usage in p.usage(
            &request
                .operators
                .iter()
                .map(|o| o.profile)
                .collect::<Vec<_>>(),
        ) {
            assert!(usage.cpu <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn infeasible_demand_reported() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(1.0)).unwrap();
        let request = uniform_request(&[3]);
        assert_eq!(
            solve(&pool, &request),
            Err(PlacementError::Infeasible { op: 0 })
        );
    }

    #[test]
    fn solver_beats_round_robin_on_a_hot_chain() {
        let pool = MachinePool::uniform(8, ResourceProfile::uniform(16.0)).unwrap();
        let mut request = uniform_request(&[1, 8, 8, 2]);
        request.edges = chain_edges(&[13.0, 390.0, 195.0]);
        let solved = solve(&pool, &request).unwrap();
        let rr = round_robin(&pool, &request).unwrap();
        assert_eq!(solved.allocation(), rr.allocation());
        let sf = solved.cross_fraction(&request.edges);
        let rf = rr.cross_fraction(&request.edges);
        assert!(
            sf < 0.7 * rf,
            "solver cross fraction {sf:.3} should be well below round-robin {rf:.3}"
        );
    }

    #[test]
    fn greedy_large_instance_stays_within_capacity() {
        // Force the greedy path: enumeration size far above EXACT_LIMIT.
        let pool = MachinePool::uniform(8, ResourceProfile::uniform(40.0)).unwrap();
        let mut request = uniform_request(&[1, 24, 24, 12, 8, 16]);
        request.edges = chain_edges(&[10.0, 500.0, 250.0, 100.0, 50.0]);
        assert!(enumeration_size(&request, pool.len()) > EXACT_LIMIT);
        let p = solve(&pool, &request).unwrap();
        assert_eq!(p.allocation(), vec![1, 24, 24, 12, 8, 16]);
        let profiles: Vec<_> = request.operators.iter().map(|o| o.profile).collect();
        for usage in p.usage(&profiles) {
            assert!(usage.cpu <= 40.0 + 1e-9);
        }
    }

    #[test]
    fn resource_profiles_steer_heavy_ops_apart() {
        // Two CPU-hungry operators cannot share the small machine.
        let pool = MachinePool::new(vec![
            MachineSpec {
                name: "big".into(),
                capacity: ResourceProfile {
                    cpu: 8.0,
                    mem: 8.0,
                    net: 8.0,
                },
            },
            MachineSpec {
                name: "small".into(),
                capacity: ResourceProfile {
                    cpu: 2.0,
                    mem: 8.0,
                    net: 8.0,
                },
            },
        ])
        .unwrap();
        let request = PlacementRequest {
            operators: vec![
                OperatorLoad {
                    executors: 2,
                    profile: ResourceProfile {
                        cpu: 4.0,
                        mem: 1.0,
                        net: 1.0,
                    },
                },
                OperatorLoad {
                    executors: 2,
                    profile: ResourceProfile {
                        cpu: 1.0,
                        mem: 1.0,
                        net: 1.0,
                    },
                },
            ],
            edges: vec![EdgeTraffic {
                from: 0,
                to: 1,
                rate: 10.0,
            }],
        };
        let p = solve(&pool, &request).unwrap();
        // Both cpu-heavy executors must land on "big" (index 0).
        assert_eq!(p.counts()[0][0], 2);
        let profiles: Vec<_> = request.operators.iter().map(|o| o.profile).collect();
        let usage = p.usage(&profiles);
        assert!(usage[1].cpu <= 2.0 + 1e-9);
    }

    #[test]
    fn plan_is_order_independent_across_shards() {
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(8.0)).unwrap();
        let mut ra = uniform_request(&[2, 3]);
        ra.edges = chain_edges(&[40.0]);
        let mut rb = uniform_request(&[3, 2]);
        rb.edges = chain_edges(&[60.0]);
        let fwd = plan(&pool, &[("a".into(), ra.clone()), ("b".into(), rb.clone())]).unwrap();
        let rev = plan(&pool, &[("b".into(), rb), ("a".into(), ra)]).unwrap();
        assert_eq!(fwd[0], rev[1], "shard a placement must not depend on order");
        assert_eq!(fwd[1], rev[0], "shard b placement must not depend on order");
    }

    #[test]
    fn round_robin_skips_full_machines() {
        let pool = MachinePool::new(vec![
            MachineSpec {
                name: "tiny".into(),
                capacity: ResourceProfile::uniform(1.0),
            },
            MachineSpec {
                name: "roomy".into(),
                capacity: ResourceProfile::uniform(10.0),
            },
        ])
        .unwrap();
        let request = uniform_request(&[4]);
        let p = round_robin(&pool, &request).unwrap();
        assert_eq!(p.counts()[0][0], 1);
        assert_eq!(p.counts()[0][1], 3);
    }

    #[test]
    fn cross_probability_math() {
        // 2 executors each, perfectly split across 2 machines.
        let p = Placement::from_counts(vec![vec![1, 1], vec![1, 1]]);
        let prob = p.cross_probability(0, 1);
        assert!((prob - 0.5).abs() < 1e-12);
        // Fully co-located.
        let p = Placement::from_counts(vec![vec![2, 0], vec![2, 0]]);
        assert!(p.cross_probability(0, 1) < 1e-12);
        // Fully separated.
        let p = Placement::from_counts(vec![vec![2, 0], vec![0, 2]]);
        assert!((p.cross_probability(0, 1) - 1.0).abs() < 1e-12);
        // Zero-executor edge contributes nothing.
        let p = Placement::from_counts(vec![vec![0, 0], vec![1, 0]]);
        assert_eq!(p.cross_probability(0, 1), 0.0);
        assert_eq!(p.cross_fraction(&[]), 0.0);
    }

    #[test]
    fn errors_display() {
        assert!(!PlacementError::Infeasible { op: 3 }.to_string().is_empty());
        assert!(!PlacementError::InvalidPool { what: "x".into() }
            .to_string()
            .is_empty());
        assert!(!PlacementError::InvalidRequest { what: "x".into() }
            .to_string()
            .is_empty());
    }

    /// Drives one warm-state window the way the fleet driver does:
    /// present every shard, rewrite requests that changed, replan.
    fn warm_window(
        state: &mut FleetPlacementState,
        pool: &MachinePool,
        shards: &[(&str, PlacementRequest)],
    ) -> Result<ReplanOutcome, PlacementError> {
        state.begin_window();
        state.sync_pool(pool);
        for (name, req) in shards {
            let slot = state.slot_of(name).unwrap_or_else(|| state.insert(name));
            if state.request(slot) != req {
                state.touch(slot).clone_from(req);
            }
            state.mark_seen(slot);
        }
        state.replan()
    }

    fn warm_placements<'a>(
        state: &'a FleetPlacementState,
        shards: &[(&str, PlacementRequest)],
    ) -> Vec<&'a Placement> {
        shards
            .iter()
            .map(|(name, _)| state.placement(state.slot_of(name).unwrap()))
            .collect()
    }

    #[test]
    fn warm_state_first_window_is_a_full_solve_matching_plan() {
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(8.0)).unwrap();
        let mut ra = uniform_request(&[2, 3]);
        ra.edges = chain_edges(&[40.0]);
        let mut rb = uniform_request(&[3, 2]);
        rb.edges = chain_edges(&[60.0]);
        let shards = [("a", ra.clone()), ("b", rb.clone())];

        let mut state = FleetPlacementState::new();
        assert_eq!(
            warm_window(&mut state, &pool, &shards).unwrap(),
            ReplanOutcome::FullSolve
        );
        let reference = plan(&pool, &[("a".into(), ra), ("b".into(), rb)]).unwrap();
        for (got, want) in warm_placements(&state, &shards).iter().zip(&reference) {
            assert_eq!(*got, want, "first warm solve must equal plan()");
        }
        assert_eq!(state.len(), 2);
        assert_eq!(state.full_solves(), 1);
        assert_eq!(state.drift(), 0.0);

        // Second window, nothing changed: zero solver calls, placements
        // and epochs stand.
        let calls = state.solver_calls();
        let epoch_a = state.epoch(state.slot_of("a").unwrap());
        assert_eq!(
            warm_window(&mut state, &pool, &shards).unwrap(),
            ReplanOutcome::Unchanged
        );
        assert_eq!(state.solver_calls(), calls);
        assert_eq!(state.epoch(state.slot_of("a").unwrap()), epoch_a);
        for (got, want) in warm_placements(&state, &shards).iter().zip(&reference) {
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn warm_repair_resolves_only_dirty_shards_and_respects_capacity() {
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(8.0)).unwrap();
        let mut ra = uniform_request(&[2, 3]);
        ra.edges = chain_edges(&[40.0]);
        let mut rb = uniform_request(&[3, 2]);
        rb.edges = chain_edges(&[60.0]);
        let mut rc = uniform_request(&[1, 1]);
        rc.edges = chain_edges(&[5.0]);
        let mut shards = [("a", ra), ("b", rb), ("c", rc)];

        let mut state = FleetPlacementState::new();
        warm_window(&mut state, &pool, &shards).unwrap();
        let calls = state.solver_calls();
        let epoch_b = state.epoch(state.slot_of("b").unwrap());
        let placement_a = state.placement(state.slot_of("a").unwrap()).clone();

        // Only b changes (one more executor on operator 1).
        shards[1].1.operators[1].executors = 3;
        assert_eq!(
            warm_window(&mut state, &pool, &shards).unwrap(),
            ReplanOutcome::Repaired(1)
        );
        assert_eq!(state.solver_calls(), calls + 1, "only b re-solved");
        assert_eq!(state.epoch(state.slot_of("b").unwrap()), epoch_b + 1);
        assert_eq!(
            state.placement(state.slot_of("a").unwrap()),
            &placement_a,
            "untouched shard keeps its cached placement"
        );
        let b = state.placement(state.slot_of("b").unwrap());
        assert!(b.allocation_matches(&[3, 3]));
        // Residual capacity never goes negative.
        for r in state.remaining() {
            assert!(r.cpu >= -EPS && r.mem >= -EPS && r.net >= -EPS, "{r:?}");
        }
    }

    #[test]
    fn warm_sweep_refunds_removed_shards() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(10.0)).unwrap();
        let ra = uniform_request(&[4]);
        let rb = uniform_request(&[3]);
        let mut state = FleetPlacementState::new();
        warm_window(&mut state, &pool, &[("a", ra.clone()), ("b", rb)]).unwrap();
        assert_eq!(state.len(), 2);

        // b leaves the fleet: its usage must flow back to the residual.
        warm_window(&mut state, &pool, &[("a", ra)]).unwrap();
        assert_eq!(state.len(), 1);
        assert!(state.slot_of("b").is_none());
        let total_remaining: f64 = state.remaining().iter().map(|r| r.cpu).sum();
        // 2 machines x 10 capacity - 4 executors x 1 cpu.
        assert!((total_remaining - 16.0).abs() < 1e-9, "{total_remaining}");

        // A recycled slot serves a newcomer without disturbing survivors.
        let slot_a = state.slot_of("a").unwrap();
        warm_window(
            &mut state,
            &pool,
            &[("a", uniform_request(&[4])), ("z", uniform_request(&[2]))],
        )
        .unwrap();
        assert_eq!(state.slot_of("a").unwrap(), slot_a);
        assert_eq!(state.slot_name(state.slot_of("z").unwrap()), "z");
    }

    #[test]
    fn warm_drift_triggers_a_batch_resolve() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(20.0)).unwrap();
        let names = ["a", "b", "c", "d"];
        let mut shards: Vec<(&str, PlacementRequest)> =
            names.iter().map(|&n| (n, uniform_request(&[2]))).collect();
        let mut state = FleetPlacementState::new();
        warm_window(&mut state, &pool, &shards).unwrap();
        let full_before = state.full_solves();

        // One shard of four wobbles every window: drift grows by 1/4 per
        // window, so the 4th dirty window must trigger the batch solve.
        let mut outcomes = Vec::new();
        for w in 0..4 {
            shards[0].1.operators[0].executors = 2 + (w as u32 % 2) + 1;
            outcomes.push(warm_window(&mut state, &pool, &shards).unwrap());
        }
        assert_eq!(
            outcomes,
            vec![
                ReplanOutcome::Repaired(1),
                ReplanOutcome::Repaired(1),
                ReplanOutcome::Repaired(1),
                ReplanOutcome::FullSolve,
            ]
        );
        assert_eq!(state.full_solves(), full_before + 1);
        assert_eq!(state.drift(), 0.0, "batch solve resets drift");
    }

    #[test]
    fn warm_pool_change_invalidates_everything() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(10.0)).unwrap();
        let shards = [("a", uniform_request(&[2])), ("b", uniform_request(&[2]))];
        let mut state = FleetPlacementState::new();
        warm_window(&mut state, &pool, &shards).unwrap();

        let grown = MachinePool::uniform(3, ResourceProfile::uniform(10.0)).unwrap();
        assert_eq!(
            warm_window(&mut state, &grown, &shards).unwrap(),
            ReplanOutcome::FullSolve
        );
        let reference = plan(
            &grown,
            &[
                ("a".into(), shards[0].1.clone()),
                ("b".into(), shards[1].1.clone()),
            ],
        )
        .unwrap();
        for (got, want) in warm_placements(&state, &shards).iter().zip(&reference) {
            assert_eq!(*got, want);
        }
        // An explicit invalidation forces the batch path too.
        state.invalidate();
        assert_eq!(
            warm_window(&mut state, &grown, &shards).unwrap(),
            ReplanOutcome::FullSolve
        );
    }

    #[test]
    fn warm_infeasible_heals_by_batch_resolving() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(4.0)).unwrap();
        let mut shards = vec![("a", uniform_request(&[3])), ("b", uniform_request(&[3]))];
        let mut state = FleetPlacementState::new();
        warm_window(&mut state, &pool, &shards).unwrap();

        // a grows beyond what the pool can hold at all: repair falls back
        // to the batch solve, which also fails — the error surfaces.
        shards[0].1.operators[0].executors = 9;
        assert!(matches!(
            warm_window(&mut state, &pool, &shards),
            Err(PlacementError::Infeasible { .. })
        ));

        // The demand relaxes: the sticky full-solve request heals the
        // state with one batch solve, matching plan() bit-for-bit.
        shards[0].1.operators[0].executors = 4;
        assert_eq!(
            warm_window(&mut state, &pool, &shards).unwrap(),
            ReplanOutcome::FullSolve
        );
        let reference = plan(
            &pool,
            &[
                ("a".into(), shards[0].1.clone()),
                ("b".into(), shards[1].1.clone()),
            ],
        )
        .unwrap();
        for (got, want) in warm_placements(&state, &shards).iter().zip(&reference) {
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn allocation_matches_agrees_with_allocation() {
        let p = Placement::from_counts(vec![vec![1, 2], vec![0, 3]]);
        assert!(p.allocation_matches(&[3, 3]));
        assert!(!p.allocation_matches(&[3, 2]));
        assert!(!p.allocation_matches(&[3]));
        assert!(!p.allocation_matches(&[3, 3, 0]));
        assert_eq!(p.allocation(), vec![3, 3]);
    }

    #[test]
    fn invalid_request_rejected() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(4.0)).unwrap();
        let mut request = uniform_request(&[1, 1]);
        request.edges = vec![EdgeTraffic {
            from: 0,
            to: 5,
            rate: 1.0,
        }];
        assert!(matches!(
            solve(&pool, &request),
            Err(PlacementError::InvalidRequest { .. })
        ));
        request.edges = vec![EdgeTraffic {
            from: 0,
            to: 1,
            rate: f64::NAN,
        }];
        assert!(matches!(
            solve(&pool, &request),
            Err(PlacementError::InvalidRequest { .. })
        ));
    }
}
