//! Machine-granular, resource-aware executor placement (R-Storm style).
//!
//! DRS (the paper) schedules executor *counts* `k = (k_1, …, k_N)`; real
//! clusters hand those executors out *on machines* with finite CPU, memory
//! and network budgets. This module closes that gap:
//!
//! * a [`MachinePool`] describes the machines — per-machine capacity
//!   vectors ([`drs_topology::ResourceProfile`] reused as the capacity
//!   type), shared across fleet shards;
//! * a [`PlacementRequest`] carries each operator's executor count, its
//!   per-executor resource demand, and the measured tuple rate on every
//!   edge (from `WindowSample`-derived rates);
//! * [`solve`] maps executors onto machines to minimise expected
//!   **cross-machine traffic** subject to per-machine capacity.
//!
//! # Objective
//!
//! Under shuffle grouping, an edge `u → v` carrying `r` tuples/s crosses
//! machines with probability `1 − Σ_m (c_u[m]/k_u)·(c_v[m]/k_v)` where
//! `c_i[m]` is the number of `i`-executors placed on machine `m`. The
//! solver minimises `Σ_edges r_e · crossprob_e` subject to
//! `Σ_i c_i[m] · profile_i ≤ capacity_m` componentwise on every machine.
//!
//! # Solvers
//!
//! [`solve`] dispatches between two strategies:
//!
//! * **exhaustive oracle** — a pruned depth-first search over per-operator
//!   machine compositions, exact, used when the enumeration size
//!   `Π_i C(k_i+m−1, m−1)` is small (≤ [`EXACT_LIMIT`]). Ties are broken
//!   lexicographically so the result is deterministic.
//! * **greedy by resource distance** — R-Storm style: operators in
//!   descending order of adjacent traffic, each executor placed on the
//!   feasible machine with the highest co-location affinity to
//!   already-placed neighbours, ties broken by smallest resource distance
//!   (best fit), then lowest machine index.
//!
//! The greedy heuristic equals the oracle on small instances (enforced by
//! proptests in `tests/placement_properties.rs`) and stays within capacity
//! always; on large instances only the oracle guarantee is dropped.
//!
//! # Fleet sharing
//!
//! [`plan`] places *several* topologies (fleet shards) into one shared
//! pool. Shards are processed in sorted-name order regardless of argument
//! order, so the outcome is deterministic across shard-advance orders —
//! the property the fleet driver relies on when re-planning each window.
//!
//! [`round_robin`] provides the locality-blind baseline the `repro place`
//! bench compares against: same executor counts, machines cycled.

use drs_topology::ResourceProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Above this estimated enumeration size, [`solve`] switches from the
/// exhaustive oracle to the greedy heuristic.
pub const EXACT_LIMIT: u64 = 50_000;

/// Slack tolerance for floating-point capacity comparisons.
const EPS: f64 = 1e-9;

/// One machine: a name and a capacity vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable machine name (unique within a pool by convention).
    pub name: String,
    /// Total resource capacity of this machine.
    pub capacity: ResourceProfile,
}

/// A set of machines with per-machine CPU/mem/network capacity, shared by
/// every shard of a fleet.
///
/// The pool itself is immutable during solving; remaining capacity is
/// tracked per [`solve`]/[`plan`] call so concurrent planners cannot
/// interfere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePool {
    machines: Vec<MachineSpec>,
}

impl MachinePool {
    /// Creates a pool from explicit machine specs.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidPool`] if the pool is empty or any capacity
    /// component is negative/non-finite.
    pub fn new(machines: Vec<MachineSpec>) -> Result<Self, PlacementError> {
        if machines.is_empty() {
            return Err(PlacementError::InvalidPool {
                what: "pool has no machines".into(),
            });
        }
        for m in &machines {
            if !m.capacity.is_valid() {
                return Err(PlacementError::InvalidPool {
                    what: format!("machine {} has an invalid capacity vector", m.name),
                });
            }
        }
        Ok(MachinePool { machines })
    }

    /// A homogeneous pool of `count` machines named `m0, m1, …`, each with
    /// the same capacity.
    ///
    /// # Errors
    ///
    /// See [`MachinePool::new`].
    pub fn uniform(count: usize, capacity: ResourceProfile) -> Result<Self, PlacementError> {
        MachinePool::new(
            (0..count)
                .map(|i| MachineSpec {
                    name: format!("m{i}"),
                    capacity,
                })
                .collect(),
        )
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the pool is empty (never true for constructed pools).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machine specs, in index order.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    fn capacities(&self) -> Vec<ResourceProfile> {
        self.machines.iter().map(|m| m.capacity).collect()
    }
}

/// One operator's placement inputs: how many executors it runs and what
/// each executor demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorLoad {
    /// Executor count `k_i` (model order — the caller decides which
    /// operators participate; spouts may be included with `k = 1`).
    pub executors: u32,
    /// Per-executor resource demand.
    pub profile: ResourceProfile,
}

/// Measured traffic on one operator edge, used as the cross-machine cost
/// weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeTraffic {
    /// Source operator index (into [`PlacementRequest::operators`]).
    pub from: usize,
    /// Destination operator index.
    pub to: usize,
    /// Measured tuple rate on this edge (tuples/s, from `WindowSample`
    /// arrival rates × gains).
    pub rate: f64,
}

/// Everything the solver needs for one topology: operator loads plus
/// rate-weighted edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlacementRequest {
    /// Operator loads, indexed by the operator indices used in `edges`.
    pub operators: Vec<OperatorLoad>,
    /// Rate-weighted edges between the operators.
    pub edges: Vec<EdgeTraffic>,
}

impl PlacementRequest {
    fn validate(&self, machines: usize) -> Result<(), PlacementError> {
        for (i, op) in self.operators.iter().enumerate() {
            if !op.profile.is_valid() {
                return Err(PlacementError::InvalidRequest {
                    what: format!("operator {i} has an invalid resource profile"),
                });
            }
        }
        for e in &self.edges {
            if e.from >= self.operators.len() || e.to >= self.operators.len() {
                return Err(PlacementError::InvalidRequest {
                    what: format!("edge {} -> {} references an unknown operator", e.from, e.to),
                });
            }
            if !e.rate.is_finite() || e.rate < 0.0 {
                return Err(PlacementError::InvalidRequest {
                    what: format!("edge {} -> {} has invalid rate {}", e.from, e.to, e.rate),
                });
            }
        }
        if machines == 0 {
            return Err(PlacementError::InvalidPool {
                what: "pool has no machines".into(),
            });
        }
        Ok(())
    }
}

/// A machine assignment: `counts[op][machine]` executors of `op` run on
/// `machine`. Produced by [`solve`]/[`plan`]/[`round_robin`]; carried by
/// `RebalancePlan` through the control plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    counts: Vec<Vec<u32>>,
}

impl Placement {
    /// Builds a placement from raw per-operator, per-machine counts.
    /// Intended for tests and backends reconstructing state; solver output
    /// is always capacity-checked.
    pub fn from_counts(counts: Vec<Vec<u32>>) -> Self {
        Placement { counts }
    }

    /// `counts()[op][machine]` = executors of `op` on `machine`.
    pub fn counts(&self) -> &[Vec<u32>] {
        &self.counts
    }

    /// Number of operators covered.
    pub fn operators(&self) -> usize {
        self.counts.len()
    }

    /// Number of machines covered (0 for an empty placement).
    pub fn machines(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Total executors of one operator.
    pub fn executors_of(&self, op: usize) -> u32 {
        self.counts[op].iter().sum()
    }

    /// Per-operator totals, i.e. the allocation vector this placement
    /// realises.
    pub fn allocation(&self) -> Vec<u32> {
        (0..self.counts.len())
            .map(|i| self.executors_of(i))
            .collect()
    }

    /// Resource usage per machine given the operators' demand profiles.
    pub fn usage(&self, profiles: &[ResourceProfile]) -> Vec<ResourceProfile> {
        let machines = self.machines();
        let mut usage = vec![ResourceProfile::uniform(0.0); machines];
        for (op, per_machine) in self.counts.iter().enumerate() {
            let p = profiles[op];
            for (m, &c) in per_machine.iter().enumerate() {
                let c = c as f64;
                usage[m].cpu += c * p.cpu;
                usage[m].mem += c * p.mem;
                usage[m].net += c * p.net;
            }
        }
        usage
    }

    /// Probability that a tuple on edge `from → to` crosses machines under
    /// shuffle grouping: `1 − Σ_m (c_from[m]/k_from)·(c_to[m]/k_to)`.
    ///
    /// Edges touching an operator with zero executors contribute 0.
    pub fn cross_probability(&self, from: usize, to: usize) -> f64 {
        let kf = self.executors_of(from) as f64;
        let kt = self.executors_of(to) as f64;
        if kf == 0.0 || kt == 0.0 {
            return 0.0;
        }
        let mut colocated = 0.0;
        for m in 0..self.machines() {
            colocated += (self.counts[from][m] as f64 / kf) * (self.counts[to][m] as f64 / kt);
        }
        (1.0 - colocated).max(0.0)
    }

    /// Expected cross-machine tuple rate: `Σ_e rate_e · crossprob_e`.
    pub fn cross_rate(&self, edges: &[EdgeTraffic]) -> f64 {
        edges
            .iter()
            .map(|e| e.rate * self.cross_probability(e.from, e.to))
            .sum()
    }

    /// Expected fraction of edge traffic that crosses machines (0 when the
    /// edges carry no traffic).
    pub fn cross_fraction(&self, edges: &[EdgeTraffic]) -> f64 {
        let total: f64 = edges.iter().map(|e| e.rate).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.cross_rate(edges) / total
    }
}

/// Errors produced by the placement solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The machine pool was empty or carried invalid capacities.
    InvalidPool {
        /// Description of the problem.
        what: String,
    },
    /// The request referenced unknown operators or invalid rates/profiles.
    InvalidRequest {
        /// Description of the problem.
        what: String,
    },
    /// No machine had room for one more executor of `op` — the demand does
    /// not fit the pool.
    Infeasible {
        /// Operator index that could not be placed.
        op: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InvalidPool { what } => write!(f, "invalid machine pool: {what}"),
            PlacementError::InvalidRequest { what } => {
                write!(f, "invalid placement request: {what}")
            }
            PlacementError::Infeasible { op } => {
                write!(f, "no machine has capacity for operator {op}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

fn fits(remaining: &ResourceProfile, demand: &ResourceProfile) -> bool {
    remaining.cpu + EPS >= demand.cpu
        && remaining.mem + EPS >= demand.mem
        && remaining.net + EPS >= demand.net
}

fn charge(remaining: &mut ResourceProfile, demand: &ResourceProfile) {
    remaining.cpu -= demand.cpu;
    remaining.mem -= demand.mem;
    remaining.net -= demand.net;
}

fn refund(remaining: &mut ResourceProfile, demand: &ResourceProfile) {
    remaining.cpu += demand.cpu;
    remaining.mem += demand.mem;
    remaining.net += demand.net;
}

/// R-Storm's resource distance: Euclidean distance between what the
/// executor demands and what the machine still has. Smaller = tighter fit.
fn resource_distance(remaining: &ResourceProfile, demand: &ResourceProfile) -> f64 {
    let d = |r: f64, w: f64| (r - w) * (r - w);
    (d(remaining.cpu, demand.cpu) + d(remaining.mem, demand.mem) + d(remaining.net, demand.net))
        .sqrt()
}

/// Places one topology into the pool, minimising cross-machine traffic.
///
/// Dispatches to the exhaustive oracle when the instance is small (see
/// [`EXACT_LIMIT`]) and to the greedy heuristic otherwise. Both respect
/// per-machine capacity exactly; both are deterministic.
///
/// # Errors
///
/// [`PlacementError::Infeasible`] when the executors do not fit,
/// [`PlacementError::InvalidRequest`]/[`PlacementError::InvalidPool`] for
/// malformed inputs.
pub fn solve(pool: &MachinePool, request: &PlacementRequest) -> Result<Placement, PlacementError> {
    let mut remaining = pool.capacities();
    solve_into(&mut remaining, request)
}

/// Like [`solve`], but draws from (and updates) externally tracked
/// remaining capacities — the building block [`plan`] uses to share one
/// pool across shards.
fn solve_into(
    remaining: &mut [ResourceProfile],
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    request.validate(remaining.len())?;
    if enumeration_size(request, remaining.len()) <= EXACT_LIMIT {
        oracle_into(remaining, request)
    } else {
        greedy_into(remaining, request)
    }
}

/// Estimated exhaustive-search size: `Π_i C(k_i+m−1, m−1)`, saturating.
fn enumeration_size(request: &PlacementRequest, machines: usize) -> u64 {
    let mut size: u64 = 1;
    for op in &request.operators {
        let comps = compositions_count(op.executors as u64, machines as u64);
        size = size.saturating_mul(comps);
        if size > EXACT_LIMIT {
            return u64::MAX;
        }
    }
    size
}

/// `C(k+m−1, m−1)`: number of ways to split `k` identical executors over
/// `m` machines. Saturating.
fn compositions_count(k: u64, m: u64) -> u64 {
    let n = k + m - 1;
    let r = (m - 1).min(k);
    let mut acc: u64 = 1;
    for i in 0..r {
        acc = acc.saturating_mul(n - i) / (i + 1);
        if acc > EXACT_LIMIT {
            return u64::MAX;
        }
    }
    acc
}

/// Greedy solver: operators in descending adjacent-traffic order; each
/// executor goes to the feasible machine with the best
/// (affinity, −resource distance, −index) score.
fn greedy_into(
    remaining: &mut [ResourceProfile],
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    let machines = remaining.len();
    let n = request.operators.len();
    let mut counts = vec![vec![0u32; machines]; n];

    // Adjacent traffic per operator decides placement order: the heaviest
    // communicators choose machines first, so their neighbours can follow.
    let mut traffic = vec![0.0f64; n];
    for e in &request.edges {
        traffic[e.from] += e.rate;
        traffic[e.to] += e.rate;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        traffic[b]
            .partial_cmp(&traffic[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    for &op in &order {
        let load = &request.operators[op];
        for _ in 0..load.executors {
            let mut best: Option<(f64, f64, usize)> = None; // (affinity, dist, machine)
            for (m, rem) in remaining.iter().enumerate() {
                if !fits(rem, &load.profile) {
                    continue;
                }
                // Affinity: traffic to executors already sitting on m,
                // normalised by the neighbour's executor count so one
                // co-located neighbour executor is worth rate/k.
                let mut affinity = 0.0;
                for e in &request.edges {
                    let other = if e.from == op {
                        e.to
                    } else if e.to == op {
                        e.from
                    } else {
                        continue;
                    };
                    let k_other = request.operators[other].executors.max(1) as f64;
                    affinity += e.rate * counts[other][m] as f64 / k_other;
                }
                let dist = resource_distance(rem, &load.profile);
                let better = match &best {
                    None => true,
                    Some((ba, bd, _)) => {
                        affinity > ba + EPS || ((affinity - ba).abs() <= EPS && dist < bd - EPS)
                    }
                };
                if better {
                    best = Some((affinity, dist, m));
                }
            }
            let (_, _, m) = best.ok_or(PlacementError::Infeasible { op })?;
            counts[op][m] += 1;
            charge(&mut remaining[m], &load.profile);
        }
    }
    Ok(Placement { counts })
}

/// Exhaustive oracle: pruned DFS over per-executor machine choices, exact
/// on the objective, deterministic (lexicographically smallest optimum).
fn oracle_into(
    remaining: &mut [ResourceProfile],
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    let machines = remaining.len();
    let n = request.operators.len();
    let mut counts = vec![vec![0u32; machines]; n];
    let mut best: Option<(f64, Vec<Vec<u32>>)> = None;

    // DFS over operators; within an operator, enumerate non-increasing-free
    // compositions via per-executor choices m >= previous machine to avoid
    // revisiting permutations of identical executors.
    fn dfs(
        op: usize,
        exec: u32,
        min_machine: usize,
        request: &PlacementRequest,
        remaining: &mut [ResourceProfile],
        counts: &mut Vec<Vec<u32>>,
        best: &mut Option<(f64, Vec<Vec<u32>>)>,
    ) {
        let n = request.operators.len();
        if op == n {
            let placement = Placement {
                counts: counts.clone(),
            };
            let cost = placement.cross_rate(&request.edges);
            let better = match best {
                None => true,
                Some((bc, bcounts)) => {
                    cost < *bc - EPS || ((cost - *bc).abs() <= EPS && counts < bcounts)
                }
            };
            if better {
                *best = Some((cost, counts.clone()));
            }
            return;
        }
        let load = &request.operators[op];
        if exec == load.executors {
            // Prune: cost of edges fully placed so far already exceeds best.
            if let Some((bc, _)) = best {
                let placement = Placement {
                    counts: counts.clone(),
                };
                let mut partial = 0.0;
                for e in &request.edges {
                    if e.from <= op && e.to <= op {
                        partial += e.rate * placement.cross_probability(e.from, e.to);
                    }
                }
                if partial > *bc + EPS {
                    return;
                }
            }
            dfs(op + 1, 0, 0, request, remaining, counts, best);
            return;
        }
        for m in min_machine..remaining.len() {
            if !fits(&remaining[m], &load.profile) {
                continue;
            }
            charge(&mut remaining[m], &load.profile);
            counts[op][m] += 1;
            dfs(op, exec + 1, m, request, remaining, counts, best);
            counts[op][m] -= 1;
            refund(&mut remaining[m], &load.profile);
        }
    }

    dfs(0, 0, 0, request, remaining, &mut counts, &mut best);
    match best {
        Some((_, counts)) => {
            // Commit the winning placement's resource usage to `remaining`
            // so fleet-shared solving stays consistent.
            for (op, per_machine) in counts.iter().enumerate() {
                let profile = request.operators[op].profile;
                for (m, &c) in per_machine.iter().enumerate() {
                    for _ in 0..c {
                        charge(&mut remaining[m], &profile);
                    }
                }
            }
            Ok(Placement { counts })
        }
        None => {
            // Report the first operator that cannot fit anywhere as the
            // infeasible one (operator 0 if even it has no machine).
            let op = request
                .operators
                .iter()
                .position(|load| {
                    load.executors > 0 && !remaining.iter().any(|r| fits(r, &load.profile))
                })
                .unwrap_or(0);
            Err(PlacementError::Infeasible { op })
        }
    }
}

/// The greedy heuristic on its own, regardless of instance size. Mainly
/// for tests and benchmarks comparing it against [`oracle`].
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn greedy(pool: &MachinePool, request: &PlacementRequest) -> Result<Placement, PlacementError> {
    request.validate(pool.len())?;
    let mut remaining = pool.capacities();
    greedy_into(&mut remaining, request)
}

/// The exhaustive oracle on its own. Exponential — only call on small
/// instances (guard with [`EXACT_LIMIT`]-sized problems).
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn oracle(pool: &MachinePool, request: &PlacementRequest) -> Result<Placement, PlacementError> {
    request.validate(pool.len())?;
    let mut remaining = pool.capacities();
    oracle_into(&mut remaining, request)
}

/// Round-robin baseline: executors cycled over machines, skipping machines
/// without capacity. Locality-blind by construction — the control the
/// `repro place` bench compares [`solve`] against.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn round_robin(
    pool: &MachinePool,
    request: &PlacementRequest,
) -> Result<Placement, PlacementError> {
    request.validate(pool.len())?;
    let machines = pool.len();
    let mut remaining = pool.capacities();
    let mut counts = vec![vec![0u32; machines]; request.operators.len()];
    let mut cursor = 0usize;
    for (op, load) in request.operators.iter().enumerate() {
        for _ in 0..load.executors {
            let mut placed = false;
            for probe in 0..machines {
                let m = (cursor + probe) % machines;
                if fits(&remaining[m], &load.profile) {
                    counts[op][m] += 1;
                    charge(&mut remaining[m], &load.profile);
                    cursor = (m + 1) % machines;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(PlacementError::Infeasible { op });
            }
        }
    }
    Ok(Placement { counts })
}

/// Places several shards into one shared pool.
///
/// Shards are solved in sorted-`name` order (ties by argument index are
/// impossible for unique names; duplicate names fall back to argument
/// order), each drawing down the same remaining capacity, so the result is
/// independent of the order shards advanced or reported. Returns
/// placements aligned with the *argument* order.
///
/// # Errors
///
/// Fails with the first shard (in sorted order) whose executors do not
/// fit in what the earlier shards left behind.
pub fn plan(
    pool: &MachinePool,
    shards: &[(String, PlacementRequest)],
) -> Result<Vec<Placement>, PlacementError> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by(|&a, &b| shards[a].0.cmp(&shards[b].0).then(a.cmp(&b)));
    let mut remaining = pool.capacities();
    let mut out: Vec<Option<Placement>> = vec![None; shards.len()];
    for &i in &order {
        out[i] = Some(solve_into(&mut remaining, &shards[i].1)?);
    }
    Ok(out
        .into_iter()
        .map(|p| p.expect("all shards solved"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_request(ks: &[u32]) -> PlacementRequest {
        PlacementRequest {
            operators: ks
                .iter()
                .map(|&k| OperatorLoad {
                    executors: k,
                    profile: ResourceProfile::default(),
                })
                .collect(),
            edges: Vec::new(),
        }
    }

    fn chain_edges(rates: &[f64]) -> Vec<EdgeTraffic> {
        rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| EdgeTraffic {
                from: i,
                to: i + 1,
                rate,
            })
            .collect()
    }

    #[test]
    fn pool_validation() {
        assert!(matches!(
            MachinePool::new(Vec::new()),
            Err(PlacementError::InvalidPool { .. })
        ));
        assert!(matches!(
            MachinePool::new(vec![MachineSpec {
                name: "bad".into(),
                capacity: ResourceProfile {
                    cpu: -1.0,
                    ..Default::default()
                },
            }]),
            Err(PlacementError::InvalidPool { .. })
        ));
        let pool = MachinePool::uniform(3, ResourceProfile::uniform(4.0)).unwrap();
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.machines()[2].name, "m2");
    }

    #[test]
    fn chain_colocates_on_one_machine_when_it_fits() {
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(10.0)).unwrap();
        let mut request = uniform_request(&[2, 2, 2]);
        request.edges = chain_edges(&[100.0, 100.0]);
        let p = solve(&pool, &request).unwrap();
        assert_eq!(p.allocation(), vec![2, 2, 2]);
        assert!(
            p.cross_fraction(&request.edges) < 1e-9,
            "chain that fits one machine should be fully co-located: {:?}",
            p.counts()
        );
    }

    #[test]
    fn capacity_forces_spread_but_is_respected() {
        // 6 executors of unit demand, machines hold 2 each: must use 3.
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(2.0)).unwrap();
        let mut request = uniform_request(&[3, 3]);
        request.edges = chain_edges(&[50.0]);
        let p = solve(&pool, &request).unwrap();
        assert_eq!(p.allocation(), vec![3, 3]);
        for usage in p.usage(
            &request
                .operators
                .iter()
                .map(|o| o.profile)
                .collect::<Vec<_>>(),
        ) {
            assert!(usage.cpu <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn infeasible_demand_reported() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(1.0)).unwrap();
        let request = uniform_request(&[3]);
        assert_eq!(
            solve(&pool, &request),
            Err(PlacementError::Infeasible { op: 0 })
        );
    }

    #[test]
    fn solver_beats_round_robin_on_a_hot_chain() {
        let pool = MachinePool::uniform(8, ResourceProfile::uniform(16.0)).unwrap();
        let mut request = uniform_request(&[1, 8, 8, 2]);
        request.edges = chain_edges(&[13.0, 390.0, 195.0]);
        let solved = solve(&pool, &request).unwrap();
        let rr = round_robin(&pool, &request).unwrap();
        assert_eq!(solved.allocation(), rr.allocation());
        let sf = solved.cross_fraction(&request.edges);
        let rf = rr.cross_fraction(&request.edges);
        assert!(
            sf < 0.7 * rf,
            "solver cross fraction {sf:.3} should be well below round-robin {rf:.3}"
        );
    }

    #[test]
    fn greedy_large_instance_stays_within_capacity() {
        // Force the greedy path: enumeration size far above EXACT_LIMIT.
        let pool = MachinePool::uniform(8, ResourceProfile::uniform(40.0)).unwrap();
        let mut request = uniform_request(&[1, 24, 24, 12, 8, 16]);
        request.edges = chain_edges(&[10.0, 500.0, 250.0, 100.0, 50.0]);
        assert!(enumeration_size(&request, pool.len()) > EXACT_LIMIT);
        let p = solve(&pool, &request).unwrap();
        assert_eq!(p.allocation(), vec![1, 24, 24, 12, 8, 16]);
        let profiles: Vec<_> = request.operators.iter().map(|o| o.profile).collect();
        for usage in p.usage(&profiles) {
            assert!(usage.cpu <= 40.0 + 1e-9);
        }
    }

    #[test]
    fn resource_profiles_steer_heavy_ops_apart() {
        // Two CPU-hungry operators cannot share the small machine.
        let pool = MachinePool::new(vec![
            MachineSpec {
                name: "big".into(),
                capacity: ResourceProfile {
                    cpu: 8.0,
                    mem: 8.0,
                    net: 8.0,
                },
            },
            MachineSpec {
                name: "small".into(),
                capacity: ResourceProfile {
                    cpu: 2.0,
                    mem: 8.0,
                    net: 8.0,
                },
            },
        ])
        .unwrap();
        let request = PlacementRequest {
            operators: vec![
                OperatorLoad {
                    executors: 2,
                    profile: ResourceProfile {
                        cpu: 4.0,
                        mem: 1.0,
                        net: 1.0,
                    },
                },
                OperatorLoad {
                    executors: 2,
                    profile: ResourceProfile {
                        cpu: 1.0,
                        mem: 1.0,
                        net: 1.0,
                    },
                },
            ],
            edges: vec![EdgeTraffic {
                from: 0,
                to: 1,
                rate: 10.0,
            }],
        };
        let p = solve(&pool, &request).unwrap();
        // Both cpu-heavy executors must land on "big" (index 0).
        assert_eq!(p.counts()[0][0], 2);
        let profiles: Vec<_> = request.operators.iter().map(|o| o.profile).collect();
        let usage = p.usage(&profiles);
        assert!(usage[1].cpu <= 2.0 + 1e-9);
    }

    #[test]
    fn plan_is_order_independent_across_shards() {
        let pool = MachinePool::uniform(4, ResourceProfile::uniform(8.0)).unwrap();
        let mut ra = uniform_request(&[2, 3]);
        ra.edges = chain_edges(&[40.0]);
        let mut rb = uniform_request(&[3, 2]);
        rb.edges = chain_edges(&[60.0]);
        let fwd = plan(&pool, &[("a".into(), ra.clone()), ("b".into(), rb.clone())]).unwrap();
        let rev = plan(&pool, &[("b".into(), rb), ("a".into(), ra)]).unwrap();
        assert_eq!(fwd[0], rev[1], "shard a placement must not depend on order");
        assert_eq!(fwd[1], rev[0], "shard b placement must not depend on order");
    }

    #[test]
    fn round_robin_skips_full_machines() {
        let pool = MachinePool::new(vec![
            MachineSpec {
                name: "tiny".into(),
                capacity: ResourceProfile::uniform(1.0),
            },
            MachineSpec {
                name: "roomy".into(),
                capacity: ResourceProfile::uniform(10.0),
            },
        ])
        .unwrap();
        let request = uniform_request(&[4]);
        let p = round_robin(&pool, &request).unwrap();
        assert_eq!(p.counts()[0][0], 1);
        assert_eq!(p.counts()[0][1], 3);
    }

    #[test]
    fn cross_probability_math() {
        // 2 executors each, perfectly split across 2 machines.
        let p = Placement::from_counts(vec![vec![1, 1], vec![1, 1]]);
        let prob = p.cross_probability(0, 1);
        assert!((prob - 0.5).abs() < 1e-12);
        // Fully co-located.
        let p = Placement::from_counts(vec![vec![2, 0], vec![2, 0]]);
        assert!(p.cross_probability(0, 1) < 1e-12);
        // Fully separated.
        let p = Placement::from_counts(vec![vec![2, 0], vec![0, 2]]);
        assert!((p.cross_probability(0, 1) - 1.0).abs() < 1e-12);
        // Zero-executor edge contributes nothing.
        let p = Placement::from_counts(vec![vec![0, 0], vec![1, 0]]);
        assert_eq!(p.cross_probability(0, 1), 0.0);
        assert_eq!(p.cross_fraction(&[]), 0.0);
    }

    #[test]
    fn errors_display() {
        assert!(!PlacementError::Infeasible { op: 3 }.to_string().is_empty());
        assert!(!PlacementError::InvalidPool { what: "x".into() }
            .to_string()
            .is_empty());
        assert!(!PlacementError::InvalidRequest { what: "x".into() }
            .to_string()
            .is_empty());
    }

    #[test]
    fn invalid_request_rejected() {
        let pool = MachinePool::uniform(2, ResourceProfile::uniform(4.0)).unwrap();
        let mut request = uniform_request(&[1, 1]);
        request.edges = vec![EdgeTraffic {
            from: 0,
            to: 5,
            rate: 1.0,
        }];
        assert!(matches!(
            solve(&pool, &request),
            Err(PlacementError::InvalidRequest { .. })
        ));
        request.edges = vec![EdgeTraffic {
            from: 0,
            to: 1,
            rate: f64::NAN,
        }];
        assert!(matches!(
            solve(&pool, &request),
            Err(PlacementError::InvalidRequest { .. })
        ));
    }
}
