//! The DRS measurer: aggregation and smoothing of raw metrics
//! (paper App. B).
//!
//! The CSP layer reports raw per-window observations — per-operator arrival
//! and service rates, the external rate and the measured mean sojourn time.
//! Before the optimiser may use them, the measurer:
//!
//! 1. **aggregates** per-*instance* (executor) metrics to the *operator*
//!    level, because the Jackson model is defined over operators;
//! 2. **smooths** the sequence of windows to suppress noise, message loss
//!    and outliers, with either of the paper's two options:
//!    * α-weighted averaging: `D(n) = α·D(n−1) + (1−α)·d(n)`;
//!    * window-based averaging: `D(n) = (1/w)·Σ_{j=n−w+1..n} d(j)`.

use crate::model::{ModelInputs, OperatorRates};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Smoothing strategy for measurement streams (paper App. B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Smoothing {
    /// Exponential smoothing `D(n) = α·D(n−1) + (1−α)·d(n)`; `α ∈ [0, 1)`
    /// controls how fast old measurements fade.
    Alpha {
        /// The fading factor.
        alpha: f64,
    },
    /// Arithmetic mean over the last `size` windows.
    Window {
        /// Number of windows to average (>= 1).
        size: usize,
    },
}

/// Error for invalid measurer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidSmoothing {
    reason: String,
}

impl fmt::Display for InvalidSmoothing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid smoothing: {}", self.reason)
    }
}

impl std::error::Error for InvalidSmoothing {}

impl Smoothing {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Rejects `alpha` outside `[0, 1)` and `size == 0`.
    pub fn validate(&self) -> Result<(), InvalidSmoothing> {
        match *self {
            Smoothing::Alpha { alpha } => {
                if !(0.0..1.0).contains(&alpha) {
                    return Err(InvalidSmoothing {
                        reason: format!("alpha must be in [0,1), got {alpha}"),
                    });
                }
            }
            Smoothing::Window { size } => {
                if size == 0 {
                    return Err(InvalidSmoothing {
                        reason: "window size must be >= 1".to_owned(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One raw metric stream being smoothed.
#[derive(Debug, Clone)]
enum Stream {
    Alpha { alpha: f64, state: Option<f64> },
    Window { size: usize, values: VecDeque<f64> },
}

impl Stream {
    fn new(smoothing: Smoothing) -> Self {
        match smoothing {
            Smoothing::Alpha { alpha } => Stream::Alpha { alpha, state: None },
            Smoothing::Window { size } => Stream::Window {
                size,
                values: VecDeque::with_capacity(size),
            },
        }
    }

    fn observe(&mut self, x: f64) {
        match self {
            Stream::Alpha { alpha, state } => {
                *state = Some(match *state {
                    None => x,
                    Some(prev) => *alpha * prev + (1.0 - *alpha) * x,
                });
            }
            Stream::Window { size, values } => {
                if values.len() == *size {
                    values.pop_front();
                }
                values.push_back(x);
            }
        }
    }

    fn value(&self) -> Option<f64> {
        match self {
            Stream::Alpha { state, .. } => *state,
            Stream::Window { values, .. } => {
                (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
            }
        }
    }
}

/// A raw (unsmoothed) observation for one measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSample {
    /// Measured external arrival rate `λ̂0` (tuples/second).
    pub external_rate: f64,
    /// Measured per-operator rates, in model index order.
    pub operators: Vec<OperatorRates>,
    /// Measured mean complete sojourn time (seconds), if any tuples
    /// completed during the window.
    pub mean_sojourn: Option<f64>,
}

/// Smoothed estimates ready for the optimiser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmoothedEstimates {
    /// Smoothed external rate `λ̂0`.
    pub external_rate: f64,
    /// Smoothed per-operator rates.
    pub operators: Vec<OperatorRates>,
    /// Smoothed mean sojourn time (seconds), once at least one window
    /// carried one.
    pub mean_sojourn: Option<f64>,
}

impl SmoothedEstimates {
    /// Converts the estimates into [`ModelInputs`] for the performance
    /// model.
    pub fn to_model_inputs(&self) -> ModelInputs {
        ModelInputs {
            external_rate: self.external_rate,
            operators: self.operators.clone(),
        }
    }
}

/// The measurer: feeds raw windows in, takes smoothed estimates out.
///
/// # Examples
///
/// ```
/// use drs_core::measurer::{Measurer, RawSample, Smoothing};
/// use drs_core::model::OperatorRates;
///
/// let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.5 })?;
/// for rate in [10.0, 20.0] {
///     m.observe(&RawSample {
///         external_rate: rate,
///         operators: vec![OperatorRates { arrival_rate: rate, service_rate: 5.0 }],
///         mean_sojourn: Some(0.3),
///     });
/// }
/// // D(2) = 0.5·10 + 0.5·20 = 15.
/// let est = m.estimates().unwrap();
/// assert!((est.external_rate - 15.0).abs() < 1e-12);
/// # Ok::<(), drs_core::measurer::InvalidSmoothing>(())
/// ```
#[derive(Debug, Clone)]
pub struct Measurer {
    external: Stream,
    arrivals: Vec<Stream>,
    services: Vec<Stream>,
    sojourn: Stream,
    windows_seen: u64,
}

impl Measurer {
    /// Creates a measurer for `n_operators` operators.
    ///
    /// # Errors
    ///
    /// Rejects invalid smoothing parameters (see [`Smoothing::validate`]).
    pub fn new(n_operators: usize, smoothing: Smoothing) -> Result<Self, InvalidSmoothing> {
        smoothing.validate()?;
        Ok(Measurer {
            external: Stream::new(smoothing),
            arrivals: (0..n_operators).map(|_| Stream::new(smoothing)).collect(),
            services: (0..n_operators).map(|_| Stream::new(smoothing)).collect(),
            sojourn: Stream::new(smoothing),
            windows_seen: 0,
        })
    }

    /// Number of operators this measurer tracks.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the measurer tracks no operators.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Number of windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Ingests one raw window.
    ///
    /// # Panics
    ///
    /// Panics if `raw.operators.len()` differs from the configured operator
    /// count — a programming error in the wiring between CSP layer and DRS.
    pub fn observe(&mut self, raw: &RawSample) {
        assert_eq!(
            raw.operators.len(),
            self.arrivals.len(),
            "raw sample operator count mismatch"
        );
        self.windows_seen += 1;
        self.external.observe(raw.external_rate);
        for (i, rates) in raw.operators.iter().enumerate() {
            self.arrivals[i].observe(rates.arrival_rate);
            self.services[i].observe(rates.service_rate);
        }
        if let Some(s) = raw.mean_sojourn {
            self.sojourn.observe(s);
        }
    }

    /// Current smoothed estimates; `None` until the first window has been
    /// observed.
    pub fn estimates(&self) -> Option<SmoothedEstimates> {
        let external_rate = self.external.value()?;
        let mut operators = Vec::with_capacity(self.arrivals.len());
        for (a, s) in self.arrivals.iter().zip(&self.services) {
            operators.push(OperatorRates {
                arrival_rate: a.value()?,
                service_rate: s.value()?,
            });
        }
        Some(SmoothedEstimates {
            external_rate,
            operators,
            mean_sojourn: self.sojourn.value(),
        })
    }
}

/// Builds [`RawSample`]s from backend [`WindowSample`]s, falling back to
/// the last known rates for operators a window starved (paper App. B: brief
/// starvation under a rebalance pause must not zero the model).
///
/// One instance lives inside every `DrsDriver` (see [`crate::driver`]);
/// it is public so hand-rolled loops and tests can reuse the exact same
/// fallback policy.
///
/// # Examples
///
/// ```
/// use drs_core::driver::{OperatorSample, WindowSample};
/// use drs_core::measurer::SampleBuilder;
///
/// let mut b = SampleBuilder::new();
/// let observed = WindowSample {
///     external_rate: Some(10.0),
///     operators: vec![OperatorSample { arrival_rate: Some(10.0), service_rate: Some(4.0) }],
///     mean_sojourn: Some(0.5),
///     std_sojourn: None,
///     completed: 100,
/// };
/// assert!(b.build(&observed).is_some());
///
/// // A starved window (pause, idle operator) reuses the last known rates.
/// let starved = WindowSample { operators: vec![OperatorSample { arrival_rate: None, service_rate: None }], ..observed };
/// let raw = b.build(&starved).unwrap();
/// assert_eq!(raw.operators[0].service_rate, 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleBuilder {
    last_rates: Option<Vec<OperatorRates>>,
}

impl SampleBuilder {
    /// Creates a builder with no rate history.
    pub fn new() -> Self {
        SampleBuilder::default()
    }

    /// Converts a backend window into the controller's raw sample.
    /// Operators that recorded no service activity reuse the last known
    /// rates; returns `None` when no usable rates exist yet (nothing has
    /// ever arrived, or a starved operator has no history).
    pub fn build(&mut self, w: &crate::driver::WindowSample) -> Option<RawSample> {
        let external_rate = w.external_rate?;
        if external_rate <= 0.0 {
            return None;
        }
        let mut operators = Vec::with_capacity(w.operators.len());
        for (slot, op) in w.operators.iter().enumerate() {
            match (op.arrival_rate, op.service_rate) {
                (Some(a), Some(s)) if a > 0.0 && s > 0.0 => {
                    operators.push(OperatorRates {
                        arrival_rate: a,
                        service_rate: s,
                    });
                }
                _ => {
                    let last = self.last_rates.as_ref()?;
                    operators.push(*last.get(slot)?);
                }
            }
        }
        self.last_rates = Some(operators.clone());
        Some(RawSample {
            external_rate,
            operators,
            mean_sojourn: w.mean_sojourn,
        })
    }
}

/// Raw metrics reported by a single executor (instance) of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSample {
    /// Tuples that arrived at this instance during the window.
    pub arrivals: u64,
    /// Tuples this instance finished serving.
    pub completions: u64,
    /// Seconds this instance spent serving.
    pub busy_time: f64,
}

/// Aggregates per-instance metrics to operator level (paper App. B: "result
/// aggregation at the operator level"): arrival rates add up; the service
/// rate is total completions over total busy time, i.e. the
/// completion-weighted mean of instance service rates.
///
/// `window_secs` is the window length. Returns `None` for an empty window or
/// when no instance accumulated busy time (no service-rate evidence).
pub fn aggregate_instances(
    instances: &[InstanceSample],
    window_secs: f64,
) -> Option<OperatorRates> {
    if window_secs <= 0.0 || instances.is_empty() {
        return None;
    }
    let arrivals: u64 = instances.iter().map(|i| i.arrivals).sum();
    let completions: u64 = instances.iter().map(|i| i.completions).sum();
    let busy: f64 = instances.iter().map(|i| i.busy_time).sum();
    if busy <= 0.0 {
        return None;
    }
    Some(OperatorRates {
        arrival_rate: arrivals as f64 / window_secs,
        service_rate: completions as f64 / busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rate: f64, sojourn: Option<f64>) -> RawSample {
        RawSample {
            external_rate: rate,
            operators: vec![OperatorRates {
                arrival_rate: rate,
                service_rate: rate / 2.0,
            }],
            mean_sojourn: sojourn,
        }
    }

    #[test]
    fn alpha_smoothing_follows_recurrence() {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.8 }).unwrap();
        m.observe(&sample(10.0, None));
        assert_eq!(m.estimates().unwrap().external_rate, 10.0);
        m.observe(&sample(20.0, None));
        // D = 0.8*10 + 0.2*20 = 12.
        assert!((m.estimates().unwrap().external_rate - 12.0).abs() < 1e-12);
        m.observe(&sample(20.0, None));
        // D = 0.8*12 + 0.2*20 = 13.6.
        assert!((m.estimates().unwrap().external_rate - 13.6).abs() < 1e-12);
    }

    #[test]
    fn window_smoothing_averages_last_w() {
        let mut m = Measurer::new(1, Smoothing::Window { size: 3 }).unwrap();
        for r in [10.0, 20.0, 30.0, 40.0] {
            m.observe(&sample(r, None));
        }
        // Last three: (20+30+40)/3 = 30.
        assert!((m.estimates().unwrap().external_rate - 30.0).abs() < 1e-12);
        assert_eq!(m.windows_seen(), 4);
    }

    #[test]
    fn no_estimates_before_first_window() {
        let m = Measurer::new(2, Smoothing::Alpha { alpha: 0.5 }).unwrap();
        assert!(m.estimates().is_none());
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn sojourn_is_optional_and_skips_empty_windows() {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.5 }).unwrap();
        m.observe(&sample(10.0, None));
        assert_eq!(m.estimates().unwrap().mean_sojourn, None);
        m.observe(&sample(10.0, Some(0.4)));
        assert_eq!(m.estimates().unwrap().mean_sojourn, Some(0.4));
        // A window without sojourn does not dilute the smoothed value.
        m.observe(&sample(10.0, None));
        assert_eq!(m.estimates().unwrap().mean_sojourn, Some(0.4));
        m.observe(&sample(10.0, Some(0.8)));
        assert!((m.estimates().unwrap().mean_sojourn.unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn smoothing_converges_to_constant_input() {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.9 }).unwrap();
        for _ in 0..200 {
            m.observe(&sample(42.0, Some(0.1)));
        }
        let est = m.estimates().unwrap();
        assert!((est.external_rate - 42.0).abs() < 1e-6);
        assert!((est.operators[0].arrival_rate - 42.0).abs() < 1e-6);
    }

    #[test]
    fn smoothing_dampens_outliers() {
        let mut alpha = Measurer::new(1, Smoothing::Alpha { alpha: 0.9 }).unwrap();
        let mut window = Measurer::new(1, Smoothing::Window { size: 10 }).unwrap();
        for _ in 0..20 {
            alpha.observe(&sample(10.0, None));
            window.observe(&sample(10.0, None));
        }
        // One outlier window at 10x the rate.
        alpha.observe(&sample(100.0, None));
        window.observe(&sample(100.0, None));
        let a = alpha.estimates().unwrap().external_rate;
        let w = window.estimates().unwrap().external_rate;
        assert!(a < 20.0, "alpha-smoothed {a}");
        assert!(w < 20.0, "window-smoothed {w}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Measurer::new(1, Smoothing::Alpha { alpha: 1.0 }).is_err());
        assert!(Measurer::new(1, Smoothing::Alpha { alpha: -0.1 }).is_err());
        assert!(Measurer::new(1, Smoothing::Window { size: 0 }).is_err());
    }

    #[test]
    #[should_panic(expected = "operator count mismatch")]
    fn observe_panics_on_wrong_operator_count() {
        let mut m = Measurer::new(2, Smoothing::Alpha { alpha: 0.5 }).unwrap();
        m.observe(&sample(10.0, None)); // sample has 1 operator, measurer has 2
    }

    #[test]
    fn to_model_inputs_preserves_rates() {
        let mut m = Measurer::new(1, Smoothing::Window { size: 2 }).unwrap();
        m.observe(&sample(10.0, Some(0.5)));
        let inputs = m.estimates().unwrap().to_model_inputs();
        assert_eq!(inputs.external_rate, 10.0);
        assert_eq!(inputs.operators.len(), 1);
    }

    #[test]
    fn aggregate_instances_weighted_by_completions() {
        // Two instances: one served 90 tuples in 9 s (10/s), another 10
        // tuples in 2 s (5/s). Operator-level µ̂ = 100/11 ≈ 9.09, NOT the
        // unweighted mean 7.5.
        let rates = aggregate_instances(
            &[
                InstanceSample {
                    arrivals: 95,
                    completions: 90,
                    busy_time: 9.0,
                },
                InstanceSample {
                    arrivals: 12,
                    completions: 10,
                    busy_time: 2.0,
                },
            ],
            10.0,
        )
        .unwrap();
        assert!((rates.service_rate - 100.0 / 11.0).abs() < 1e-12);
        assert!((rates.arrival_rate - 10.7).abs() < 1e-12);
    }

    #[test]
    fn aggregate_instances_empty_cases() {
        assert!(aggregate_instances(&[], 10.0).is_none());
        assert!(aggregate_instances(
            &[InstanceSample {
                arrivals: 0,
                completions: 0,
                busy_time: 0.0
            }],
            10.0
        )
        .is_none());
        assert!(aggregate_instances(
            &[InstanceSample {
                arrivals: 1,
                completions: 1,
                busy_time: 1.0
            }],
            0.0
        )
        .is_none());
    }
}
