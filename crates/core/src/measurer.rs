//! The DRS measurer: aggregation and smoothing of raw metrics
//! (paper App. B).
//!
//! The CSP layer reports raw per-window observations — per-operator arrival
//! and service rates, the external rate and the measured mean sojourn time.
//! Before the optimiser may use them, the measurer:
//!
//! 1. **aggregates** per-*instance* (executor) metrics to the *operator*
//!    level, because the Jackson model is defined over operators;
//! 2. **smooths** the sequence of windows to suppress noise, message loss
//!    and outliers, with either of the paper's two options:
//!    * α-weighted averaging: `D(n) = α·D(n−1) + (1−α)·d(n)`;
//!    * window-based averaging: `D(n) = (1/w)·Σ_{j=n−w+1..n} d(j)`.

use crate::model::{ModelInputs, OperatorRates};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Smoothing strategy for measurement streams (paper App. B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Smoothing {
    /// Exponential smoothing `D(n) = α·D(n−1) + (1−α)·d(n)`; `α ∈ [0, 1)`
    /// controls how fast old measurements fade.
    Alpha {
        /// The fading factor.
        alpha: f64,
    },
    /// Arithmetic mean over the last `size` windows.
    Window {
        /// Number of windows to average (>= 1).
        size: usize,
    },
}

/// Error for invalid measurer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidSmoothing {
    reason: String,
}

impl fmt::Display for InvalidSmoothing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid smoothing: {}", self.reason)
    }
}

impl std::error::Error for InvalidSmoothing {}

impl Smoothing {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Rejects `alpha` outside `[0, 1)` and `size == 0`.
    pub fn validate(&self) -> Result<(), InvalidSmoothing> {
        match *self {
            Smoothing::Alpha { alpha } => {
                if !(0.0..1.0).contains(&alpha) {
                    return Err(InvalidSmoothing {
                        reason: format!("alpha must be in [0,1), got {alpha}"),
                    });
                }
            }
            Smoothing::Window { size } => {
                if size == 0 {
                    return Err(InvalidSmoothing {
                        reason: "window size must be >= 1".to_owned(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One raw metric stream being smoothed. Observations carry a weight in
/// `(0, 1]`: weight 1 is the classic update, lower weights shrink an
/// observation's influence (used for age-decayed stale fallbacks).
#[derive(Debug, Clone)]
enum Stream {
    Alpha {
        alpha: f64,
        state: Option<f64>,
    },
    Window {
        size: usize,
        /// `(value, weight)` pairs; the estimate is the weighted mean.
        values: VecDeque<(f64, f64)>,
    },
}

impl Stream {
    fn new(smoothing: Smoothing) -> Self {
        match smoothing {
            Smoothing::Alpha { alpha } => Stream::Alpha { alpha, state: None },
            Smoothing::Window { size } => Stream::Window {
                size,
                values: VecDeque::with_capacity(size),
            },
        }
    }

    /// Ingests one observation; `true` when the smoothed value may have
    /// changed. α-streams compare bits — under constant input the
    /// exponential recurrence reaches a floating-point fixpoint after a few
    /// dozen windows, and from then on reports `false`, which is what lets
    /// [`Measurer::epoch`] stand still in steady state. Window streams
    /// always report `true` (their contents shift every observation).
    fn observe(&mut self, x: f64, weight: f64) -> bool {
        match self {
            Stream::Alpha { alpha, state } => {
                // The fading factor scales with the weight: at weight 1
                // this is exactly `α·prev + (1−α)·x`; at weight → 0 the
                // previous state survives untouched.
                let next = match *state {
                    None => x,
                    Some(prev) => {
                        let gain = (1.0 - *alpha) * weight;
                        (1.0 - gain) * prev + gain * x
                    }
                };
                let changed = state.is_none_or(|prev| prev.to_bits() != next.to_bits());
                *state = Some(next);
                changed
            }
            Stream::Window { size, values } => {
                if values.len() == *size {
                    values.pop_front();
                }
                values.push_back((x, weight));
                true
            }
        }
    }

    fn value(&self) -> Option<f64> {
        match self {
            Stream::Alpha { state, .. } => *state,
            Stream::Window { values, .. } => {
                if values.is_empty() {
                    return None;
                }
                let total: f64 = values.iter().map(|&(_, w)| w).sum();
                if total <= 0.0 {
                    return None;
                }
                Some(values.iter().map(|&(x, w)| x * w).sum::<f64>() / total)
            }
        }
    }
}

/// A raw (unsmoothed) observation for one measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSample {
    /// Measured external arrival rate `λ̂0` (tuples/second).
    pub external_rate: f64,
    /// Measured per-operator rates, in model index order.
    pub operators: Vec<OperatorRates>,
    /// Measured mean complete sojourn time (seconds), if any tuples
    /// completed during the window.
    pub mean_sojourn: Option<f64>,
}

/// Smoothed estimates ready for the optimiser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmoothedEstimates {
    /// Smoothed external rate `λ̂0`.
    pub external_rate: f64,
    /// Smoothed per-operator rates.
    pub operators: Vec<OperatorRates>,
    /// Smoothed mean sojourn time (seconds), once at least one window
    /// carried one.
    pub mean_sojourn: Option<f64>,
}

impl SmoothedEstimates {
    /// Converts the estimates into [`ModelInputs`] for the performance
    /// model.
    pub fn to_model_inputs(&self) -> ModelInputs {
        ModelInputs {
            external_rate: self.external_rate,
            operators: self.operators.clone(),
        }
    }
}

/// The measurer: feeds raw windows in, takes smoothed estimates out.
///
/// # Examples
///
/// ```
/// use drs_core::measurer::{Measurer, RawSample, Smoothing};
/// use drs_core::model::OperatorRates;
///
/// let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.5 })?;
/// for rate in [10.0, 20.0] {
///     m.observe(&RawSample {
///         external_rate: rate,
///         operators: vec![OperatorRates { arrival_rate: rate, service_rate: 5.0 }],
///         mean_sojourn: Some(0.3),
///     });
/// }
/// // D(2) = 0.5·10 + 0.5·20 = 15.
/// let est = m.estimates().unwrap();
/// assert!((est.external_rate - 15.0).abs() < 1e-12);
/// # Ok::<(), drs_core::measurer::InvalidSmoothing>(())
/// ```
#[derive(Debug, Clone)]
pub struct Measurer {
    external: Stream,
    arrivals: Vec<Stream>,
    services: Vec<Stream>,
    sojourn: Stream,
    windows_seen: u64,
    epoch: u64,
}

impl Measurer {
    /// Creates a measurer for `n_operators` operators.
    ///
    /// # Errors
    ///
    /// Rejects invalid smoothing parameters (see [`Smoothing::validate`]).
    pub fn new(n_operators: usize, smoothing: Smoothing) -> Result<Self, InvalidSmoothing> {
        smoothing.validate()?;
        Ok(Measurer {
            external: Stream::new(smoothing),
            arrivals: (0..n_operators).map(|_| Stream::new(smoothing)).collect(),
            services: (0..n_operators).map(|_| Stream::new(smoothing)).collect(),
            sojourn: Stream::new(smoothing),
            windows_seen: 0,
            epoch: 0,
        })
    }

    /// Number of operators this measurer tracks.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the measurer tracks no operators.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Number of windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// A counter that advances exactly when an observation changed some
    /// smoothed value (bitwise). Callers that derive expensive artifacts
    /// from [`estimates`](Self::estimates) — the fleet driver's per-shard
    /// model refits — cache the epoch of their last derivation and skip the
    /// work while it stands still. Under α-smoothing a constant input
    /// reaches its floating-point fixpoint within a few dozen windows, so a
    /// steady shard stops paying for refits (and their allocations)
    /// entirely; window smoothing never reports a standstill.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ingests one raw window.
    ///
    /// # Panics
    ///
    /// Panics if `raw.operators.len()` differs from the configured operator
    /// count — a programming error in the wiring between CSP layer and DRS.
    pub fn observe(&mut self, raw: &RawSample) {
        self.observe_weighted(raw, 1.0);
    }

    /// Ingests one raw window with a credibility weight in `(0, 1]`.
    ///
    /// Weight 1 is exactly [`observe`](Self::observe). Lower weights shrink
    /// the window's influence on the smoothed estimates — the staleness
    /// hook: a sample whose rates are an age-`n` fallback (see
    /// [`SampleBuilder::staleness`]) should be fed with weight `decay^n`
    /// instead of being treated as fresh evidence. Non-finite or
    /// out-of-range weights are clamped to `[0.001, 1]` so a stale report
    /// can never freeze the estimates entirely.
    ///
    /// # Panics
    ///
    /// As for [`observe`](Self::observe).
    pub fn observe_weighted(&mut self, raw: &RawSample, weight: f64) {
        assert_eq!(
            raw.operators.len(),
            self.arrivals.len(),
            "raw sample operator count mismatch"
        );
        let weight = if weight.is_finite() {
            weight.clamp(1e-3, 1.0)
        } else {
            1.0
        };
        self.windows_seen += 1;
        let mut changed = self.external.observe(raw.external_rate, weight);
        for (i, rates) in raw.operators.iter().enumerate() {
            changed |= self.arrivals[i].observe(rates.arrival_rate, weight);
            changed |= self.services[i].observe(rates.service_rate, weight);
        }
        if let Some(s) = raw.mean_sojourn {
            changed |= self.sojourn.observe(s, weight);
        }
        if changed {
            self.epoch += 1;
        }
    }

    /// Current smoothed estimates; `None` until the first window has been
    /// observed.
    pub fn estimates(&self) -> Option<SmoothedEstimates> {
        let external_rate = self.external.value()?;
        let mut operators = Vec::with_capacity(self.arrivals.len());
        for (a, s) in self.arrivals.iter().zip(&self.services) {
            operators.push(OperatorRates {
                arrival_rate: a.value()?,
                service_rate: s.value()?,
            });
        }
        Some(SmoothedEstimates {
            external_rate,
            operators,
            mean_sojourn: self.sojourn.value(),
        })
    }
}

/// Builds [`RawSample`]s from backend [`crate::driver::WindowSample`]s, falling back to
/// the last known rates for operators a window starved (paper App. B: brief
/// starvation under a rebalance pause must not zero the model) — and
/// tracking **how old** that fallback evidence is, so callers on a lossy
/// control channel can discount a 3-window-old report instead of treating
/// it as current.
///
/// After every [`build`](Self::build):
///
/// * [`staleness`](Self::staleness) is the age, in windows, of the oldest
///   substituted rate in the sample just built (0 when every operator
///   reported fresh rates) — feed it to
///   [`Measurer::observe_weighted`] as `decay^staleness`, or use
///   [`weight`](Self::weight) directly;
/// * [`missed_windows`](Self::missed_windows) counts the *consecutive*
///   windows for which no usable report existed at all (`build` returned
///   `None`) — the liveness signal behind the fleet's lease-style dead
///   shard detection.
///
/// One instance lives inside every `DrsDriver` (see [`crate::driver`]);
/// it is public so hand-rolled loops and tests can reuse the exact same
/// fallback policy.
///
/// # Examples
///
/// ```
/// use drs_core::driver::{OperatorSample, WindowSample};
/// use drs_core::measurer::SampleBuilder;
///
/// let mut b = SampleBuilder::new();
/// let observed = WindowSample {
///     external_rate: Some(10.0),
///     operators: vec![OperatorSample { arrival_rate: Some(10.0), service_rate: Some(4.0) }],
///     mean_sojourn: Some(0.5),
///     std_sojourn: None,
///     completed: 100,
/// };
/// assert!(b.build(&observed).is_some());
/// assert_eq!(b.staleness(), 0);
///
/// // A starved window (pause, idle operator) reuses the last known rates —
/// // but the sample is now flagged one window stale.
/// let starved = WindowSample { operators: vec![OperatorSample { arrival_rate: None, service_rate: None }], ..observed };
/// let raw = b.build(&starved).unwrap();
/// assert_eq!(raw.operators[0].service_rate, 4.0);
/// assert_eq!(b.staleness(), 1);
/// assert!(b.weight(0.5) < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleBuilder {
    last_rates: Option<Vec<OperatorRates>>,
    /// Windows since operator `i` last produced fresh rates.
    ages: Vec<u64>,
    /// Age of the oldest substituted rate in the last built sample.
    staleness: u64,
    /// Consecutive windows with no usable report (`build` returned `None`).
    missed: u64,
}

impl SampleBuilder {
    /// Creates a builder with no rate history.
    pub fn new() -> Self {
        SampleBuilder::default()
    }

    /// Converts a backend window into the controller's raw sample.
    /// Operators that recorded no service activity reuse the last known
    /// rates; returns `None` when no usable rates exist yet (nothing has
    /// ever arrived, or a starved operator has no history).
    pub fn build(&mut self, w: &crate::driver::WindowSample) -> Option<RawSample> {
        let mut out = RawSample {
            external_rate: 0.0,
            operators: Vec::new(),
            mean_sojourn: None,
        };
        if self.build_into(w, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// In-place [`build`](Self::build): writes the sample into `out`
    /// (reusing its buffers — a caller feeding one persistent `RawSample`
    /// per shard pays no allocation in steady state) and returns whether a
    /// usable sample was produced. On `false`, `out`'s contents are
    /// unspecified; the staleness/missed-window bookkeeping advances
    /// exactly as with `build`.
    pub fn build_into(&mut self, w: &crate::driver::WindowSample, out: &mut RawSample) -> bool {
        if self.ages.len() < w.operators.len() {
            self.ages.resize(w.operators.len(), 0);
        }
        if self.build_inner(w, out) {
            self.missed = 0;
            true
        } else {
            // The whole window is missing evidence: everything ages.
            self.missed += 1;
            for age in &mut self.ages {
                *age += 1;
            }
            self.staleness = self.ages.iter().copied().max().unwrap_or(0);
            false
        }
    }

    fn build_inner(&mut self, w: &crate::driver::WindowSample, out: &mut RawSample) -> bool {
        let Some(external_rate) = w.external_rate else {
            return false;
        };
        if external_rate <= 0.0 {
            return false;
        }
        out.operators.clear();
        let mut ages = std::mem::take(&mut self.ages);
        let mut staleness = 0u64;
        for (slot, op) in w.operators.iter().enumerate() {
            match (op.arrival_rate, op.service_rate) {
                (Some(a), Some(s)) if a > 0.0 && s > 0.0 => {
                    ages[slot] = 0;
                    out.operators.push(OperatorRates {
                        arrival_rate: a,
                        service_rate: s,
                    });
                }
                _ => {
                    let Some(last) = self.last_rates.as_ref().and_then(|l| l.get(slot)) else {
                        self.ages = ages;
                        return false;
                    };
                    ages[slot] += 1;
                    staleness = staleness.max(ages[slot]);
                    out.operators.push(*last);
                }
            }
        }
        self.ages = ages;
        self.staleness = staleness;
        match &mut self.last_rates {
            Some(last) => last.clone_from(&out.operators),
            None => self.last_rates = Some(out.operators.clone()),
        }
        out.external_rate = external_rate;
        out.mean_sojourn = w.mean_sojourn;
        true
    }

    /// Age, in windows, of the oldest substituted rate in the most recent
    /// [`build`](Self::build) (0 when every operator reported fresh rates;
    /// after a run of fully-missed windows, the age of the surviving
    /// history).
    pub fn staleness(&self) -> u64 {
        self.staleness
    }

    /// Consecutive windows for which [`build`](Self::build) found no usable
    /// report at all. Resets to 0 the moment a window yields a sample.
    pub fn missed_windows(&self) -> u64 {
        self.missed
    }

    /// The age-decayed credibility weight of the last built sample:
    /// `decay^staleness`, for `decay ∈ (0, 1]`. Feed it to
    /// [`Measurer::observe_weighted`].
    pub fn weight(&self, decay: f64) -> f64 {
        let decay = if decay.is_finite() {
            decay.clamp(0.0, 1.0)
        } else {
            1.0
        };
        decay.powi(i32::try_from(self.staleness.min(1_000)).expect("bounded"))
    }
}

/// Raw metrics reported by a single executor (instance) of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSample {
    /// Tuples that arrived at this instance during the window.
    pub arrivals: u64,
    /// Tuples this instance finished serving.
    pub completions: u64,
    /// Seconds this instance spent serving.
    pub busy_time: f64,
}

/// Aggregates per-instance metrics to operator level (paper App. B: "result
/// aggregation at the operator level"): arrival rates add up; the service
/// rate is total completions over total busy time, i.e. the
/// completion-weighted mean of instance service rates.
///
/// `window_secs` is the window length. Returns `None` for an empty window or
/// when no instance accumulated busy time (no service-rate evidence).
pub fn aggregate_instances(
    instances: &[InstanceSample],
    window_secs: f64,
) -> Option<OperatorRates> {
    if window_secs <= 0.0 || instances.is_empty() {
        return None;
    }
    let arrivals: u64 = instances.iter().map(|i| i.arrivals).sum();
    let completions: u64 = instances.iter().map(|i| i.completions).sum();
    let busy: f64 = instances.iter().map(|i| i.busy_time).sum();
    if busy <= 0.0 {
        return None;
    }
    Some(OperatorRates {
        arrival_rate: arrivals as f64 / window_secs,
        service_rate: completions as f64 / busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rate: f64, sojourn: Option<f64>) -> RawSample {
        RawSample {
            external_rate: rate,
            operators: vec![OperatorRates {
                arrival_rate: rate,
                service_rate: rate / 2.0,
            }],
            mean_sojourn: sojourn,
        }
    }

    #[test]
    fn alpha_smoothing_follows_recurrence() {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.8 }).unwrap();
        m.observe(&sample(10.0, None));
        assert_eq!(m.estimates().unwrap().external_rate, 10.0);
        m.observe(&sample(20.0, None));
        // D = 0.8*10 + 0.2*20 = 12.
        assert!((m.estimates().unwrap().external_rate - 12.0).abs() < 1e-12);
        m.observe(&sample(20.0, None));
        // D = 0.8*12 + 0.2*20 = 13.6.
        assert!((m.estimates().unwrap().external_rate - 13.6).abs() < 1e-12);
    }

    #[test]
    fn window_smoothing_averages_last_w() {
        let mut m = Measurer::new(1, Smoothing::Window { size: 3 }).unwrap();
        for r in [10.0, 20.0, 30.0, 40.0] {
            m.observe(&sample(r, None));
        }
        // Last three: (20+30+40)/3 = 30.
        assert!((m.estimates().unwrap().external_rate - 30.0).abs() < 1e-12);
        assert_eq!(m.windows_seen(), 4);
    }

    #[test]
    fn no_estimates_before_first_window() {
        let m = Measurer::new(2, Smoothing::Alpha { alpha: 0.5 }).unwrap();
        assert!(m.estimates().is_none());
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn sojourn_is_optional_and_skips_empty_windows() {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.5 }).unwrap();
        m.observe(&sample(10.0, None));
        assert_eq!(m.estimates().unwrap().mean_sojourn, None);
        m.observe(&sample(10.0, Some(0.4)));
        assert_eq!(m.estimates().unwrap().mean_sojourn, Some(0.4));
        // A window without sojourn does not dilute the smoothed value.
        m.observe(&sample(10.0, None));
        assert_eq!(m.estimates().unwrap().mean_sojourn, Some(0.4));
        m.observe(&sample(10.0, Some(0.8)));
        assert!((m.estimates().unwrap().mean_sojourn.unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn smoothing_converges_to_constant_input() {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.9 }).unwrap();
        for _ in 0..200 {
            m.observe(&sample(42.0, Some(0.1)));
        }
        let est = m.estimates().unwrap();
        assert!((est.external_rate - 42.0).abs() < 1e-6);
        assert!((est.operators[0].arrival_rate - 42.0).abs() < 1e-6);
    }

    #[test]
    fn smoothing_dampens_outliers() {
        let mut alpha = Measurer::new(1, Smoothing::Alpha { alpha: 0.9 }).unwrap();
        let mut window = Measurer::new(1, Smoothing::Window { size: 10 }).unwrap();
        for _ in 0..20 {
            alpha.observe(&sample(10.0, None));
            window.observe(&sample(10.0, None));
        }
        // One outlier window at 10x the rate.
        alpha.observe(&sample(100.0, None));
        window.observe(&sample(100.0, None));
        let a = alpha.estimates().unwrap().external_rate;
        let w = window.estimates().unwrap().external_rate;
        assert!(a < 20.0, "alpha-smoothed {a}");
        assert!(w < 20.0, "window-smoothed {w}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Measurer::new(1, Smoothing::Alpha { alpha: 1.0 }).is_err());
        assert!(Measurer::new(1, Smoothing::Alpha { alpha: -0.1 }).is_err());
        assert!(Measurer::new(1, Smoothing::Window { size: 0 }).is_err());
    }

    #[test]
    #[should_panic(expected = "operator count mismatch")]
    fn observe_panics_on_wrong_operator_count() {
        let mut m = Measurer::new(2, Smoothing::Alpha { alpha: 0.5 }).unwrap();
        m.observe(&sample(10.0, None)); // sample has 1 operator, measurer has 2
    }

    #[test]
    fn to_model_inputs_preserves_rates() {
        let mut m = Measurer::new(1, Smoothing::Window { size: 2 }).unwrap();
        m.observe(&sample(10.0, Some(0.5)));
        let inputs = m.estimates().unwrap().to_model_inputs();
        assert_eq!(inputs.external_rate, 10.0);
        assert_eq!(inputs.operators.len(), 1);
    }

    #[test]
    fn aggregate_instances_weighted_by_completions() {
        // Two instances: one served 90 tuples in 9 s (10/s), another 10
        // tuples in 2 s (5/s). Operator-level µ̂ = 100/11 ≈ 9.09, NOT the
        // unweighted mean 7.5.
        let rates = aggregate_instances(
            &[
                InstanceSample {
                    arrivals: 95,
                    completions: 90,
                    busy_time: 9.0,
                },
                InstanceSample {
                    arrivals: 12,
                    completions: 10,
                    busy_time: 2.0,
                },
            ],
            10.0,
        )
        .unwrap();
        assert!((rates.service_rate - 100.0 / 11.0).abs() < 1e-12);
        assert!((rates.arrival_rate - 10.7).abs() < 1e-12);
    }

    #[test]
    fn aggregate_instances_empty_cases() {
        assert!(aggregate_instances(&[], 10.0).is_none());
        assert!(aggregate_instances(
            &[InstanceSample {
                arrivals: 0,
                completions: 0,
                busy_time: 0.0
            }],
            10.0
        )
        .is_none());
        assert!(aggregate_instances(
            &[InstanceSample {
                arrivals: 1,
                completions: 1,
                busy_time: 1.0
            }],
            0.0
        )
        .is_none());
    }

    fn window(
        external: Option<f64>,
        ops: &[(Option<f64>, Option<f64>)],
    ) -> crate::driver::WindowSample {
        crate::driver::WindowSample {
            external_rate: external,
            operators: ops
                .iter()
                .map(|&(a, s)| crate::driver::OperatorSample {
                    arrival_rate: a,
                    service_rate: s,
                })
                .collect(),
            mean_sojourn: None,
            std_sojourn: None,
            completed: 0,
        }
    }

    #[test]
    fn weighted_observe_at_full_weight_matches_unweighted() {
        let mut plain = Measurer::new(1, Smoothing::Alpha { alpha: 0.8 }).unwrap();
        let mut weighted = Measurer::new(1, Smoothing::Alpha { alpha: 0.8 }).unwrap();
        for r in [10.0, 20.0, 15.0, 40.0] {
            plain.observe(&sample(r, Some(0.3)));
            weighted.observe_weighted(&sample(r, Some(0.3)), 1.0);
        }
        let p = plain.estimates().unwrap();
        let w = weighted.estimates().unwrap();
        assert_eq!(p.external_rate.to_bits(), w.external_rate.to_bits());
        assert_eq!(
            p.operators[0].service_rate.to_bits(),
            w.operators[0].service_rate.to_bits()
        );
    }

    #[test]
    fn low_weight_observations_barely_move_the_estimate() {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha: 0.8 }).unwrap();
        m.observe(&sample(10.0, None));
        // A stale echo of an old 100/s report, heavily discounted.
        m.observe_weighted(&sample(100.0, None), 0.01);
        let est = m.estimates().unwrap().external_rate;
        // Full weight would give 0.8*10 + 0.2*100 = 28; near-zero weight stays near 10.
        assert!(est < 11.0, "estimate {est}");
        assert!(est > 10.0, "estimate {est}");
    }

    #[test]
    fn weighted_window_mean_discounts_stale_values() {
        let mut m = Measurer::new(1, Smoothing::Window { size: 4 }).unwrap();
        m.observe_weighted(&sample(10.0, None), 1.0);
        m.observe_weighted(&sample(50.0, None), 0.25);
        // Weighted mean: (10*1 + 50*0.25) / 1.25 = 18.
        assert!((m.estimates().unwrap().external_rate - 18.0).abs() < 1e-12);
    }

    #[test]
    fn builder_tracks_staleness_of_fallback_rates() {
        let mut b = SampleBuilder::new();
        let fresh = window(Some(10.0), &[(Some(10.0), Some(4.0))]);
        let starved = window(Some(10.0), &[(None, None)]);

        assert!(b.build(&fresh).is_some());
        assert_eq!(b.staleness(), 0);
        assert_eq!(b.missed_windows(), 0);
        assert!((b.weight(0.5) - 1.0).abs() < 1e-12);

        // Two starved windows in a row: fallback ages 1, then 2.
        assert!(b.build(&starved).is_some());
        assert_eq!(b.staleness(), 1);
        assert!((b.weight(0.5) - 0.5).abs() < 1e-12);
        assert!(b.build(&starved).is_some());
        assert_eq!(b.staleness(), 2);
        assert!((b.weight(0.5) - 0.25).abs() < 1e-12);

        // Fresh evidence resets the age.
        assert!(b.build(&fresh).is_some());
        assert_eq!(b.staleness(), 0);
    }

    #[test]
    fn builder_counts_consecutive_missed_windows() {
        let mut b = SampleBuilder::new();
        let fresh = window(Some(10.0), &[(Some(10.0), Some(4.0))]);
        let silent = window(None, &[(None, None)]);

        assert!(b.build(&fresh).is_some());
        assert!(b.build(&silent).is_none());
        assert!(b.build(&silent).is_none());
        assert_eq!(b.missed_windows(), 2);
        // Fully-missed windows age the surviving history too.
        assert_eq!(b.staleness(), 2);

        // A usable window resets the lease counter.
        assert!(b.build(&fresh).is_some());
        assert_eq!(b.missed_windows(), 0);
        assert_eq!(b.staleness(), 0);
    }

    #[test]
    fn builder_missed_windows_before_any_history() {
        let mut b = SampleBuilder::new();
        let silent = window(None, &[(None, None)]);
        assert!(b.build(&silent).is_none());
        assert!(b.build(&silent).is_none());
        assert_eq!(b.missed_windows(), 2);
    }
}
