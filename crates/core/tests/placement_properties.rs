//! Property tests for the machine-placement solver — for random pools and
//! topologies, every executor is placed exactly once, no machine's
//! capacity vector is ever exceeded, the dispatcher is exact on
//! oracle-sized instances (and the oracle never loses to the greedy
//! heuristic), fleet planning is deterministic regardless of the order
//! shards are presented in, and the warm incremental path
//! ([`placement::FleetPlacementState`]) stays capacity-safe under
//! randomized drift/churn while matching [`placement::plan`] bit-for-bit
//! at every full re-solve and every settled window.

use drs_core::placement::{
    self, EdgeTraffic, FleetPlacementState, MachinePool, OperatorLoad, Placement, PlacementRequest,
    ReplanOutcome,
};
use drs_topology::ResourceProfile;
use proptest::collection::vec;
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Builds a request from raw draws: `ops` are (executors, profile-units)
/// pairs, `raw_edges` are (from, to, rate) with indices folded into range.
fn request(ops: &[(u32, f64)], raw_edges: &[(usize, usize, f64)]) -> PlacementRequest {
    let n = ops.len();
    let operators = ops
        .iter()
        .map(|&(executors, units)| OperatorLoad {
            executors,
            profile: ResourceProfile::uniform(units),
        })
        .collect();
    let edges = raw_edges
        .iter()
        .filter_map(|&(from, to, rate)| {
            let (from, to) = (from % n, to % n);
            (from != to).then_some(EdgeTraffic { from, to, rate })
        })
        .collect();
    PlacementRequest { operators, edges }
}

/// Per-machine resource usage must fit the pool's capacity vectors.
fn assert_within_capacity(
    placement: &Placement,
    pool: &MachinePool,
    req: &PlacementRequest,
    label: &str,
) -> Result<(), TestCaseError> {
    let profiles: Vec<ResourceProfile> = req.operators.iter().map(|o| o.profile).collect();
    let usage = placement.usage(&profiles);
    for (m, (used, spec)) in usage.iter().zip(pool.machines()).enumerate() {
        prop_assert!(
            used.cpu <= spec.capacity.cpu + EPS
                && used.mem <= spec.capacity.mem + EPS
                && used.net <= spec.capacity.net + EPS,
            "{label}: machine {m} over capacity: used {used:?}, capacity {:?}",
            spec.capacity
        );
    }
    Ok(())
}

/// The fleet-layer epoch band, replicated for the drift proptest: exact
/// on executors/profiles and edge endpoints, a 5% relative dead-band on
/// edge rates.
fn band_matches(cached: &PlacementRequest, measured: &PlacementRequest) -> bool {
    cached.operators == measured.operators
        && cached.edges.len() == measured.edges.len()
        && cached.edges.iter().zip(&measured.edges).all(|(c, m)| {
            c.from == m.from && c.to == m.to && (m.rate - c.rate).abs() <= 0.05 * c.rate.abs()
        })
}

/// Combined usage of every live shard's cached placement fits the pool.
fn assert_fleet_within_capacity(
    state: &FleetPlacementState,
    fleet: &[(String, PlacementRequest)],
    pool: &MachinePool,
    window: usize,
) -> Result<(), TestCaseError> {
    let machines = pool.machines().len();
    let mut used = vec![ResourceProfile::uniform(0.0); machines];
    for (name, _) in fleet {
        let slot = state.slot_of(name).unwrap();
        let profiles: Vec<ResourceProfile> = state
            .request(slot)
            .operators
            .iter()
            .map(|o| o.profile)
            .collect();
        for (m, u) in state
            .placement(slot)
            .usage(&profiles)
            .into_iter()
            .enumerate()
        {
            used[m].cpu += u.cpu;
            used[m].mem += u.mem;
            used[m].net += u.net;
        }
    }
    for (m, (u, spec)) in used.iter().zip(pool.machines()).enumerate() {
        prop_assert!(
            u.cpu <= spec.capacity.cpu + EPS
                && u.mem <= spec.capacity.mem + EPS
                && u.net <= spec.capacity.net + EPS,
            "window {window}: machine {m} over capacity after repair: {u:?} vs {:?}",
            spec.capacity
        );
    }
    Ok(())
}

/// The cached request of every live shard, keyed for [`placement::plan`].
fn cached_fleet(
    state: &FleetPlacementState,
    fleet: &[(String, PlacementRequest)],
) -> Vec<(String, PlacementRequest)> {
    fleet
        .iter()
        .map(|(n, _)| (n.clone(), state.request(state.slot_of(n).unwrap()).clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every solver places each operator's executors exactly once and
    /// never exceeds any machine's capacity vector.
    #[test]
    fn placements_are_exact_and_capacity_respecting(
        machines in 1usize..=4,
        cap in 2.0f64..8.0,
        ops in vec((1u32..=4, 0.2f64..1.0), 1..=6),
        raw_edges in vec((0usize..6, 0usize..6, 0.1f64..10.0), 0..=8),
    ) {
        let pool = MachinePool::uniform(machines, ResourceProfile::uniform(cap)).unwrap();
        let req = request(&ops, &raw_edges);
        let want: Vec<u32> = ops.iter().map(|&(k, _)| k).collect();
        for (label, result) in [
            ("solve", placement::solve(&pool, &req)),
            ("greedy", placement::greedy(&pool, &req)),
            ("round_robin", placement::round_robin(&pool, &req)),
        ] {
            let Ok(p) = result else {
                // Infeasible draws are legitimate (demand can exceed the
                // pool); nothing to check for this solver.
                continue;
            };
            prop_assert_eq!(
                p.allocation(), want.clone(),
                "{} lost or duplicated executors", label
            );
            prop_assert_eq!(p.machines(), machines);
            assert_within_capacity(&p, &pool, &req, label)?;
        }
    }

    /// On oracle-sized instances the dispatcher IS the exhaustive oracle,
    /// and the oracle's cross-machine traffic never exceeds the greedy
    /// heuristic's (it enumerates every split the greedy could pick).
    #[test]
    fn solver_is_exact_on_small_instances(
        machines in 2usize..=3,
        cap in 2.0f64..8.0,
        ops in vec((1u32..=3, 0.2f64..0.9), 1..=3),
        raw_edges in vec((0usize..3, 0usize..3, 0.1f64..10.0), 0..=6),
    ) {
        let pool = MachinePool::uniform(machines, ResourceProfile::uniform(cap)).unwrap();
        let req = request(&ops, &raw_edges);
        let oracle = placement::oracle(&pool, &req);
        let solved = placement::solve(&pool, &req);
        match (&oracle, &solved) {
            (Ok(o), Ok(s)) => {
                prop_assert_eq!(
                    o.counts(), s.counts(),
                    "solve() must dispatch to the oracle on small instances"
                );
                if let Ok(g) = placement::greedy(&pool, &req) {
                    prop_assert!(
                        o.cross_rate(&req.edges) <= g.cross_rate(&req.edges) + EPS,
                        "oracle ({}) lost to greedy ({})",
                        o.cross_rate(&req.edges),
                        g.cross_rate(&req.edges)
                    );
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(
                false,
                "oracle and solve disagree on feasibility: {oracle:?} vs {solved:?}"
            ),
        }
    }

    /// Fleet planning is order-independent: permuting the shard list
    /// produces the identical placement for every shard name, and the
    /// shards' combined usage still fits the shared pool.
    #[test]
    fn fleet_plan_is_deterministic_across_shard_orders(
        machines in 2usize..=4,
        cap in 4.0f64..12.0,
        shards in vec((vec((1u32..=3, 0.2f64..0.8), 1..=3), vec((0usize..3, 0usize..3, 0.1f64..5.0), 0..=4)), 2..=4),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let pool = MachinePool::uniform(machines, ResourceProfile::uniform(cap)).unwrap();
        let named: Vec<(String, PlacementRequest)> = shards
            .iter()
            .enumerate()
            .map(|(i, (ops, edges))| (format!("shard-{i}"), request(ops, edges)))
            .collect();

        // Fisher–Yates with a deterministic xorshift: an arbitrary
        // presentation order for the same fleet.
        let mut permuted = named.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..permuted.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            permuted.swap(i, (state % (i as u64 + 1)) as usize);
        }

        match (placement::plan(&pool, &named), placement::plan(&pool, &permuted)) {
            (Ok(a), Ok(b)) => {
                for (i, (name, req)) in named.iter().enumerate() {
                    let j = permuted.iter().position(|(n, _)| n == name).unwrap();
                    prop_assert_eq!(
                        a[i].counts(), b[j].counts(),
                        "shard {} placed differently depending on order", name
                    );
                    let want: Vec<u32> =
                        req.operators.iter().map(|o| o.executors).collect();
                    prop_assert_eq!(a[i].allocation(), want);
                }
                // Combined usage across all shards fits every machine.
                let mut used = vec![ResourceProfile::uniform(0.0); machines];
                for (p, (_, req)) in a.iter().zip(&named) {
                    let profiles: Vec<ResourceProfile> =
                        req.operators.iter().map(|o| o.profile).collect();
                    for (m, u) in p.usage(&profiles).into_iter().enumerate() {
                        used[m].cpu += u.cpu;
                        used[m].mem += u.mem;
                        used[m].net += u.net;
                    }
                }
                for (m, u) in used.iter().enumerate() {
                    prop_assert!(
                        u.cpu <= cap + EPS && u.mem <= cap + EPS && u.net <= cap + EPS,
                        "machine {m} over shared capacity: {u:?}"
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "plan feasibility depends on shard order: {a:?} vs {b:?}"
            ),
        }
    }

    /// The warm incremental path under randomized drift: each window one
    /// event fires — allocation drift, edge-rate wobble inside or outside
    /// the 5% band, shard add/remove churn, or a pool capacity change —
    /// and the epoch-band protocol drives [`FleetPlacementState`].
    /// Invariants: live placements always fit the pool; a window with no
    /// real change replans `Unchanged`; and wherever a full re-solve fires
    /// (or the state is settled at zero drift) the cached placements equal
    /// [`placement::plan`] from scratch, bit for bit — including
    /// feasibility, when the drawn demand exceeds the pool.
    #[test]
    fn incremental_placement_tracks_plan_under_drift(
        machines in 2usize..=4,
        cap in 6.0f64..14.0,
        base in vec((vec((1u32..=3, 0.2f64..0.8), 1..=3), vec((0usize..3, 0usize..3, 0.5f64..5.0), 0..=4)), 2..=5),
        events in vec((0usize..8, 0usize..8, 0u8..5, 0.0f64..1.0), 1..=12),
    ) {
        let mut cur_cap = cap;
        let mut pool = MachinePool::uniform(machines, ResourceProfile::uniform(cur_cap)).unwrap();
        // The fleet's *measured* requests; the state caches what it last
        // accepted through the band.
        let mut fleet: Vec<(String, PlacementRequest)> = base
            .iter()
            .enumerate()
            .map(|(i, (ops, edges))| (format!("shard-{i}"), request(ops, edges)))
            .collect();
        let mut state = FleetPlacementState::new();
        let mut prev_ok = true;

        for (w, &(s_raw, o_raw, kind, mag)) in events.iter().enumerate() {
            // One drift event.
            let mut pool_changed = false;
            let mut churned = false;
            match kind {
                0 => {
                    // Allocation drift: cycle one operator's executors.
                    let s = s_raw % fleet.len();
                    let (_, req) = &mut fleet[s];
                    let o = o_raw % req.operators.len();
                    let op = &mut req.operators[o];
                    op.executors = op.executors % 3 + 1;
                }
                1 => {
                    // In-band rate wobble (≤ 4% of the measured rate —
                    // usually inside the 5% band of the cached one).
                    let s = s_raw % fleet.len();
                    let (_, req) = &mut fleet[s];
                    if !req.edges.is_empty() {
                        let n = req.edges.len();
                        req.edges[o_raw % n].rate *= 1.0 + 0.04 * mag;
                    }
                }
                2 => {
                    // Out-of-band shift: far past any band.
                    let s = s_raw % fleet.len();
                    let (_, req) = &mut fleet[s];
                    if !req.edges.is_empty() {
                        let n = req.edges.len();
                        req.edges[o_raw % n].rate = req.edges[o_raw % n].rate * 1.5 + 1.0;
                    }
                }
                3 => {
                    // Churn: drop a shard (never the last) or add one.
                    churned = true;
                    if fleet.len() > 1 && s_raw % 2 == 0 {
                        let s = s_raw % fleet.len();
                        fleet.remove(s);
                    } else {
                        fleet.push((format!("new-{w}"), request(&[(1, 0.3)], &[])));
                    }
                }
                _ => {
                    // Pool capacity change: every machine grows ≥ 5%.
                    pool_changed = true;
                    cur_cap *= 1.05 + 0.15 * mag;
                    pool =
                        MachinePool::uniform(machines, ResourceProfile::uniform(cur_cap)).unwrap();
                }
            }

            // The fleet-layer window protocol, band included.
            state.begin_window();
            state.sync_pool(&pool);
            let mut touched = false;
            for (name, measured) in &fleet {
                let slot = match state.slot_of(name) {
                    Some(slot) => slot,
                    None => {
                        touched = true;
                        state.insert(name)
                    }
                };
                if !band_matches(state.request(slot), measured) {
                    touched = true;
                    state.touch(slot).clone_from(measured);
                }
                state.mark_seen(slot);
            }
            match state.replan() {
                Ok(outcome) => {
                    assert_fleet_within_capacity(&state, &fleet, &pool, w)?;
                    if prev_ok && !touched && !churned && !pool_changed {
                        prop_assert_eq!(
                            outcome,
                            ReplanOutcome::Unchanged,
                            "window {}: nothing changed but the state replanned",
                            w
                        );
                    }
                    if outcome == ReplanOutcome::FullSolve
                        || (outcome == ReplanOutcome::Unchanged && state.drift() == 0.0)
                    {
                        let cached = cached_fleet(&state, &fleet);
                        let reference = placement::plan(&pool, &cached);
                        prop_assert!(
                            reference.is_ok(),
                            "window {w}: warm path solved what plan cannot"
                        );
                        for ((name, _), want) in cached.iter().zip(&reference.unwrap()) {
                            prop_assert_eq!(
                                state.placement(state.slot_of(name).unwrap()),
                                want,
                                "window {}: shard {} diverged from plan()",
                                w,
                                name
                            );
                        }
                    }
                    prev_ok = true;
                }
                Err(_) => {
                    // A failed batch solve must mean the demand genuinely
                    // does not fit — plan() from scratch fails identically.
                    let cached = cached_fleet(&state, &fleet);
                    prop_assert!(
                        placement::plan(&pool, &cached).is_err(),
                        "window {w}: warm path failed where plan succeeds"
                    );
                    prev_ok = false;
                }
            }
        }

        // Closing anchor: force a batch re-solve and cross-check against
        // plan one last time (covers runs that ended mid-repair).
        state.begin_window();
        state.sync_pool(&pool);
        for (name, _) in &fleet {
            let slot = state.slot_of(name).unwrap_or_else(|| state.insert(name));
            state.mark_seen(slot);
        }
        state.invalidate();
        let cached = cached_fleet(&state, &fleet);
        match (state.replan(), placement::plan(&pool, &cached)) {
            (Ok(outcome), Ok(reference)) => {
                prop_assert_eq!(outcome, ReplanOutcome::FullSolve);
                for ((name, _), want) in cached.iter().zip(&reference) {
                    prop_assert_eq!(
                        state.placement(state.slot_of(name).unwrap()),
                        want,
                        "forced full solve diverged from plan() for {}",
                        name
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "forced full solve and plan disagree on feasibility: {a:?} vs {b:?}"
            ),
        }
    }
}
