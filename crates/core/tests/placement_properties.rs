//! Property tests for the machine-placement solver — for random pools and
//! topologies, every executor is placed exactly once, no machine's
//! capacity vector is ever exceeded, the dispatcher is exact on
//! oracle-sized instances (and the oracle never loses to the greedy
//! heuristic), and fleet planning is deterministic regardless of the order
//! shards are presented in.

use drs_core::placement::{
    self, EdgeTraffic, MachinePool, OperatorLoad, Placement, PlacementRequest,
};
use drs_topology::ResourceProfile;
use proptest::collection::vec;
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Builds a request from raw draws: `ops` are (executors, profile-units)
/// pairs, `raw_edges` are (from, to, rate) with indices folded into range.
fn request(ops: &[(u32, f64)], raw_edges: &[(usize, usize, f64)]) -> PlacementRequest {
    let n = ops.len();
    let operators = ops
        .iter()
        .map(|&(executors, units)| OperatorLoad {
            executors,
            profile: ResourceProfile::uniform(units),
        })
        .collect();
    let edges = raw_edges
        .iter()
        .filter_map(|&(from, to, rate)| {
            let (from, to) = (from % n, to % n);
            (from != to).then_some(EdgeTraffic { from, to, rate })
        })
        .collect();
    PlacementRequest { operators, edges }
}

/// Per-machine resource usage must fit the pool's capacity vectors.
fn assert_within_capacity(
    placement: &Placement,
    pool: &MachinePool,
    req: &PlacementRequest,
    label: &str,
) -> Result<(), TestCaseError> {
    let profiles: Vec<ResourceProfile> = req.operators.iter().map(|o| o.profile).collect();
    let usage = placement.usage(&profiles);
    for (m, (used, spec)) in usage.iter().zip(pool.machines()).enumerate() {
        prop_assert!(
            used.cpu <= spec.capacity.cpu + EPS
                && used.mem <= spec.capacity.mem + EPS
                && used.net <= spec.capacity.net + EPS,
            "{label}: machine {m} over capacity: used {used:?}, capacity {:?}",
            spec.capacity
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every solver places each operator's executors exactly once and
    /// never exceeds any machine's capacity vector.
    #[test]
    fn placements_are_exact_and_capacity_respecting(
        machines in 1usize..=4,
        cap in 2.0f64..8.0,
        ops in vec((1u32..=4, 0.2f64..1.0), 1..=6),
        raw_edges in vec((0usize..6, 0usize..6, 0.1f64..10.0), 0..=8),
    ) {
        let pool = MachinePool::uniform(machines, ResourceProfile::uniform(cap)).unwrap();
        let req = request(&ops, &raw_edges);
        let want: Vec<u32> = ops.iter().map(|&(k, _)| k).collect();
        for (label, result) in [
            ("solve", placement::solve(&pool, &req)),
            ("greedy", placement::greedy(&pool, &req)),
            ("round_robin", placement::round_robin(&pool, &req)),
        ] {
            let Ok(p) = result else {
                // Infeasible draws are legitimate (demand can exceed the
                // pool); nothing to check for this solver.
                continue;
            };
            prop_assert_eq!(
                p.allocation(), want.clone(),
                "{} lost or duplicated executors", label
            );
            prop_assert_eq!(p.machines(), machines);
            assert_within_capacity(&p, &pool, &req, label)?;
        }
    }

    /// On oracle-sized instances the dispatcher IS the exhaustive oracle,
    /// and the oracle's cross-machine traffic never exceeds the greedy
    /// heuristic's (it enumerates every split the greedy could pick).
    #[test]
    fn solver_is_exact_on_small_instances(
        machines in 2usize..=3,
        cap in 2.0f64..8.0,
        ops in vec((1u32..=3, 0.2f64..0.9), 1..=3),
        raw_edges in vec((0usize..3, 0usize..3, 0.1f64..10.0), 0..=6),
    ) {
        let pool = MachinePool::uniform(machines, ResourceProfile::uniform(cap)).unwrap();
        let req = request(&ops, &raw_edges);
        let oracle = placement::oracle(&pool, &req);
        let solved = placement::solve(&pool, &req);
        match (&oracle, &solved) {
            (Ok(o), Ok(s)) => {
                prop_assert_eq!(
                    o.counts(), s.counts(),
                    "solve() must dispatch to the oracle on small instances"
                );
                if let Ok(g) = placement::greedy(&pool, &req) {
                    prop_assert!(
                        o.cross_rate(&req.edges) <= g.cross_rate(&req.edges) + EPS,
                        "oracle ({}) lost to greedy ({})",
                        o.cross_rate(&req.edges),
                        g.cross_rate(&req.edges)
                    );
                }
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(
                false,
                "oracle and solve disagree on feasibility: {oracle:?} vs {solved:?}"
            ),
        }
    }

    /// Fleet planning is order-independent: permuting the shard list
    /// produces the identical placement for every shard name, and the
    /// shards' combined usage still fits the shared pool.
    #[test]
    fn fleet_plan_is_deterministic_across_shard_orders(
        machines in 2usize..=4,
        cap in 4.0f64..12.0,
        shards in vec((vec((1u32..=3, 0.2f64..0.8), 1..=3), vec((0usize..3, 0usize..3, 0.1f64..5.0), 0..=4)), 2..=4),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let pool = MachinePool::uniform(machines, ResourceProfile::uniform(cap)).unwrap();
        let named: Vec<(String, PlacementRequest)> = shards
            .iter()
            .enumerate()
            .map(|(i, (ops, edges))| (format!("shard-{i}"), request(ops, edges)))
            .collect();

        // Fisher–Yates with a deterministic xorshift: an arbitrary
        // presentation order for the same fleet.
        let mut permuted = named.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..permuted.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            permuted.swap(i, (state % (i as u64 + 1)) as usize);
        }

        match (placement::plan(&pool, &named), placement::plan(&pool, &permuted)) {
            (Ok(a), Ok(b)) => {
                for (i, (name, req)) in named.iter().enumerate() {
                    let j = permuted.iter().position(|(n, _)| n == name).unwrap();
                    prop_assert_eq!(
                        a[i].counts(), b[j].counts(),
                        "shard {} placed differently depending on order", name
                    );
                    let want: Vec<u32> =
                        req.operators.iter().map(|o| o.executors).collect();
                    prop_assert_eq!(a[i].allocation(), want);
                }
                // Combined usage across all shards fits every machine.
                let mut used = vec![ResourceProfile::uniform(0.0); machines];
                for (p, (_, req)) in a.iter().zip(&named) {
                    let profiles: Vec<ResourceProfile> =
                        req.operators.iter().map(|o| o.profile).collect();
                    for (m, u) in p.usage(&profiles).into_iter().enumerate() {
                        used[m].cpu += u.cpu;
                        used[m].mem += u.mem;
                        used[m].net += u.net;
                    }
                }
                for (m, u) in used.iter().enumerate() {
                    prop_assert!(
                        u.cpu <= cap + EPS && u.mem <= cap + EPS && u.net <= cap + EPS,
                        "machine {m} over shared capacity: {u:?}"
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "plan feasibility depends on shard order: {a:?} vs {b:?}"
            ),
        }
    }
}
