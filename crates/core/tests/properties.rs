//! Property-based tests for the DRS scheduler and measurer.

use drs_core::measurer::{Measurer, RawSample, Smoothing};
use drs_core::migration::{plan_migration, TaskAssignment};
use drs_core::model::OperatorRates;
use drs_core::scheduler::{
    assign_processors, assign_processors_exhaustive, assign_processors_reference,
    min_processors_for_target, min_processors_for_target_reference, no_queueing_bound,
};
use drs_queueing::jackson::JacksonNetwork;
use proptest::prelude::*;

/// Strategy for small random stable-ish networks: external rate plus 2–4
/// operators with bounded offered loads, so exhaustive search stays cheap.
fn small_network() -> impl Strategy<Value = JacksonNetwork> {
    let op = (0.5f64..30.0, 0.5f64..10.0); // (arrival, offered load)
    (0.5f64..20.0, prop::collection::vec(op, 2..5)).prop_map(|(ext, ops)| {
        let pairs: Vec<(f64, f64)> = ops
            .into_iter()
            .map(|(lambda, load)| (lambda, lambda / load))
            .collect();
        JacksonNetwork::from_rates(ext, &pairs).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_is_optimal(net in small_network(), surplus in 0u32..8) {
        let k_max = net.min_total_servers() as u32 + surplus;
        let greedy = assign_processors(&net, k_max).unwrap();
        let brute = assign_processors_exhaustive(&net, k_max).unwrap();
        prop_assert!(
            greedy.expected_sojourn() <= brute.expected_sojourn() + 1e-9,
            "greedy {} worse than brute {}",
            greedy.expected_sojourn(),
            brute.expected_sojourn()
        );
    }

    #[test]
    fn heap_greedy_equals_reference_greedy_equals_exhaustive(
        net in small_network(),
        surplus in 0u32..8,
    ) {
        // The tentpole equivalence: the O((n+K)·log n) heap path, the
        // O(K·n·k̄) from-scratch path, and brute force all land on the same
        // optimum; heap and reference match allocation-for-allocation.
        let k_max = net.min_total_servers() as u32 + surplus;
        let heap = assign_processors(&net, k_max).unwrap();
        let reference = assign_processors_reference(&net, k_max).unwrap();
        let brute = assign_processors_exhaustive(&net, k_max).unwrap();
        prop_assert_eq!(heap.per_operator(), reference.per_operator());
        prop_assert_eq!(
            heap.expected_sojourn().to_bits(),
            reference.expected_sojourn().to_bits()
        );
        prop_assert!(
            (heap.expected_sojourn() - brute.expected_sojourn()).abs() <= 1e-9,
            "heap {} vs brute {}",
            heap.expected_sojourn(),
            brute.expected_sojourn()
        );
    }

    #[test]
    fn heap_min_target_equals_reference(
        net in small_network(),
        slack in 1.05f64..4.0,
    ) {
        let target = no_queueing_bound(&net) * slack;
        let heap = min_processors_for_target(&net, target, 10_000);
        let reference = min_processors_for_target_reference(&net, target, 10_000);
        match (heap, reference) {
            (Ok(h), Ok(r)) => {
                prop_assert_eq!(h.per_operator(), r.per_operator());
                prop_assert_eq!(h.total(), r.total());
            }
            (Err(_), Err(_)) => {}
            (h, r) => prop_assert!(false, "divergent outcomes: {h:?} vs {r:?}"),
        }
    }

    #[test]
    fn min_target_parity_below_cutover(net in small_network(), slack in 1.5f64..8.0) {
        // Loose targets resolve within a few grants of the min-stable
        // floor — the side of the small-surplus cutover served by the
        // plain reference walk. Restrict to cases that genuinely stay
        // below the cutover and assert exact parity.
        let target = no_queueing_bound(&net) * slack;
        let (Ok(h), Ok(r)) = (
            min_processors_for_target(&net, target, 10_000),
            min_processors_for_target_reference(&net, target, 10_000),
        ) else {
            return Err(TestCaseError::fail("loose target must be feasible"));
        };
        prop_assume!(r.total() - net.min_total_servers() <= 16);
        prop_assert_eq!(h.per_operator(), r.per_operator());
        prop_assert_eq!(h.expected_sojourn().to_bits(), r.expected_sojourn().to_bits());
    }

    #[test]
    fn min_target_parity_above_cutover(net in small_network(), slack in 1.0005f64..1.06) {
        // Tight targets need many grants — the heap side of the cutover
        // (the probe runs its 16 reference steps, then the heap continues
        // the identical path). Only keep cases past the cutover.
        let target = no_queueing_bound(&net) * slack;
        let heap = min_processors_for_target(&net, target, 100_000);
        let reference = min_processors_for_target_reference(&net, target, 100_000);
        match (heap, reference) {
            (Ok(h), Ok(r)) => {
                prop_assume!(r.total() - net.min_total_servers() > 16);
                prop_assert_eq!(h.per_operator(), r.per_operator());
                prop_assert_eq!(h.total(), r.total());
                prop_assert_eq!(h.expected_sojourn().to_bits(), r.expected_sojourn().to_bits());
            }
            (Err(_), Err(_)) => {}
            (h, r) => prop_assert!(false, "divergent outcomes: {h:?} vs {r:?}"),
        }
    }

    #[test]
    fn greedy_uses_exact_budget(net in small_network(), surplus in 0u32..20) {
        let k_max = net.min_total_servers() as u32 + surplus;
        let alloc = assign_processors(&net, k_max).unwrap();
        prop_assert_eq!(alloc.total(), u64::from(k_max));
        prop_assert!(net.is_stable(alloc.per_operator()).unwrap());
    }

    #[test]
    fn more_budget_never_hurts(net in small_network(), surplus in 0u32..10) {
        let base = net.min_total_servers() as u32 + surplus;
        let a = assign_processors(&net, base).unwrap();
        let b = assign_processors(&net, base + 1).unwrap();
        prop_assert!(b.expected_sojourn() <= a.expected_sojourn() + 1e-12);
    }

    #[test]
    fn min_target_solution_is_feasible_and_minimal(
        net in small_network(),
        slack in 1.05f64..4.0,
    ) {
        // Pick a reachable target: slack times the minimum-allocation bound.
        let bound = no_queueing_bound(&net);
        let target = bound * slack;
        let Ok(alloc) = min_processors_for_target(&net, target, 10_000) else {
            // Cap exceeded for razor-thin slack is acceptable.
            return Ok(());
        };
        prop_assert!(alloc.expected_sojourn() <= target);
        // Dropping any processor breaks the target or stability.
        let ks = alloc.per_operator().to_vec();
        for i in 0..ks.len() {
            if ks[i] == 0 { continue; }
            let mut fewer = ks.clone();
            fewer[i] -= 1;
            let t = net.expected_sojourn(&fewer).unwrap();
            prop_assert!(t > target || t.is_infinite());
        }
    }

    #[test]
    fn min_target_monotone_in_target(net in small_network(), s1 in 1.1f64..2.0, extra in 0.1f64..3.0) {
        let bound = no_queueing_bound(&net);
        let tight = min_processors_for_target(&net, bound * s1, 10_000);
        let loose = min_processors_for_target(&net, bound * (s1 + extra), 10_000);
        if let (Ok(t), Ok(l)) = (tight, loose) {
            prop_assert!(l.total() <= t.total());
        }
    }

    #[test]
    fn alpha_smoothing_stays_in_observed_range(
        values in prop::collection::vec(0.1f64..1000.0, 1..40),
        alpha in 0.0f64..0.99,
    ) {
        let mut m = Measurer::new(1, Smoothing::Alpha { alpha }).unwrap();
        for &v in &values {
            m.observe(&RawSample {
                external_rate: v,
                operators: vec![OperatorRates { arrival_rate: v, service_rate: v }],
                mean_sojourn: None,
            });
        }
        let est = m.estimates().unwrap().external_rate;
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} outside [{lo}, {hi}]");
    }

    #[test]
    fn migration_plans_are_balanced_and_minimal(
        tasks in 1usize..200,
        from_execs in 1u32..32,
        to_execs in 1u32..32,
    ) {
        prop_assume!(from_execs as usize <= tasks && to_execs as usize <= tasks);
        let from = TaskAssignment::balanced(tasks, from_execs).unwrap();
        let plan = plan_migration(&from, to_execs).unwrap();
        // The target satisfies Storm's balance contract.
        prop_assert!(plan.to.is_balanced());
        // Moved set is exactly the disagreement set.
        let disagreements: Vec<usize> = (0..tasks)
            .filter(|&t| from.owner(t) != plan.to.owner(t))
            .collect();
        prop_assert_eq!(&plan.moved_tasks, &disagreements);
        // Lower bound on movement: each surviving executor retains at most
        // its new quota, so at least `tasks - Σ min(old_load, new_quota)`
        // tasks must move in ANY balanced target.
        let base = tasks / to_execs as usize;
        let extra = tasks % to_execs as usize;
        let retained_bound: usize = (0..from_execs.min(to_execs))
            .map(|e| {
                let old_load = from.tasks_of(e).len();
                let quota = base + usize::from((e as usize) < extra);
                old_load.min(quota)
            })
            .sum();
        prop_assert_eq!(plan.moved(), tasks - retained_bound,
            "plan must achieve the retention bound");
    }

    #[test]
    fn identity_migration_is_free(
        tasks in 1usize..200,
        execs in 1u32..32,
    ) {
        prop_assume!(execs as usize <= tasks);
        let a = TaskAssignment::balanced(tasks, execs).unwrap();
        let plan = plan_migration(&a, execs).unwrap();
        prop_assert_eq!(plan.moved(), 0);
    }

    #[test]
    fn window_smoothing_stays_in_window_range(
        values in prop::collection::vec(0.1f64..1000.0, 1..40),
        size in 1usize..10,
    ) {
        let mut m = Measurer::new(1, Smoothing::Window { size }).unwrap();
        for &v in &values {
            m.observe(&RawSample {
                external_rate: v,
                operators: vec![OperatorRates { arrival_rate: v, service_rate: v }],
                mean_sojourn: None,
            });
        }
        let est = m.estimates().unwrap().external_rate;
        let tail: Vec<f64> = values.iter().rev().take(size).cloned().collect();
        let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = tail.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
    }
}
