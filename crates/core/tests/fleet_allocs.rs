//! The steady-state fleet window is allocation-free: once every shard's
//! smoothed measurements reach their bitwise fixpoint (constant input ⇒
//! the α-smoother stops moving ⇒ the demand epoch stands still) a full
//! `FleetDriver::step` — advance, measure, negotiate, grant, gate — must
//! perform **zero** heap allocations. This pins the tentpole guarantee of
//! the incremental negotiator end-to-end, not just in the negotiate path:
//! a million-entity fleet whose demand does not move pays no allocator
//! traffic per window. With a machine pool installed the guarantee
//! extends through the placement phase: the warm epoch-stamped placement
//! state compares each shard's request in place and replans nothing.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms the fleet past the smoothing fixpoint, then asserts the counter
//! does not advance across further windows. Backends override
//! `advance_into` / `current_allocation_into` so the measurement side is
//! allocation-free too — exactly the contract production backends are
//! expected to meet for large fleets.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use drs_core::driver::{
    AppliedRebalance, BackendError, CspBackend, OperatorSample, RebalancePlan, WindowSample,
};
use drs_core::fleet::{
    mmk_measured_sojourn, FleetDriver, FleetDriverConfig, FleetShardSpec, ShardPlacementInfo,
};
use drs_core::placement::MachinePool;
use drs_core::scheduler;
use drs_queueing::jackson::JacksonNetwork;
use drs_topology::ResourceProfile;

/// System allocator wrapper that counts every allocation and reallocation
/// (frees are uncounted: the claim under test is "no new memory", not
/// "no memory").
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Failure diagnostics: while non-zero, each counted allocation prints a
/// backtrace of its call site (and decrements the budget), so a regression
/// names the allocating line instead of just a count.
static TRAP: AtomicU64 = AtomicU64::new(0);

fn trace_if_trapped() {
    let n = TRAP.load(Ordering::Relaxed);
    if n > 0
        && TRAP
            .compare_exchange(n, 0, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    {
        eprintln!(
            "ALLOC SITE:\n{}",
            std::backtrace::Backtrace::force_capture()
        );
        TRAP.store(n - 1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        trace_if_trapped();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        trace_if_trapped();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        trace_if_trapped();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A shard under perfectly constant load, with allocation-free overrides
/// of the measurement hooks.
#[derive(Debug)]
struct SteadyShard {
    rate: f64,
    mu: f64,
    allocation: Vec<u32>,
}

impl SteadyShard {
    fn new(rate: f64, mu: f64, k: u32) -> Self {
        SteadyShard {
            rate,
            mu,
            allocation: vec![k],
        }
    }
}

impl CspBackend for SteadyShard {
    fn backend_name(&self) -> &'static str {
        "steady"
    }
    fn operator_names(&self) -> Vec<String> {
        vec!["work".to_owned()]
    }
    fn current_allocation(&self) -> Vec<u32> {
        self.allocation.clone()
    }
    fn current_allocation_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.allocation);
    }
    fn advance(&mut self, window_secs: f64) -> WindowSample {
        let mut out = WindowSample::default();
        self.advance_into(window_secs, &mut out);
        out
    }
    fn advance_into(&mut self, _window_secs: f64, out: &mut WindowSample) {
        out.external_rate = Some(self.rate);
        out.operators.clear();
        out.operators.push(OperatorSample {
            arrival_rate: Some(self.rate),
            service_rate: Some(self.mu),
        });
        out.mean_sojourn = Some(mmk_measured_sojourn(self.rate, self.mu, self.allocation[0]));
        out.std_sojourn = None;
        out.completed = 100;
    }
    fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError> {
        self.allocation = plan.allocation.clone();
        Ok(AppliedRebalance {
            allocation: plan.allocation.clone(),
            pause_secs: plan.pause_secs,
        })
    }
}

/// The shard's own Program 6 schedule for its target — started there, a
/// constant-load shard has no wobble for the decision gate to chew on, so
/// the settled fleet reaches the true zero-churn state (grant == running
/// allocation everywhere) instead of a permanently gated ±1 disagreement.
fn desired_k(rate: f64, mu: f64, t_max: f64) -> u32 {
    let net = JacksonNetwork::from_rates(rate, &[(rate, mu)]).expect("positive rates");
    scheduler::min_processors_for_target(&net, t_max, 512)
        .expect("reachable target")
        .into_vec()[0]
}

fn steady_fleet_with(
    k_max: u32,
    placement: Option<ShardPlacementInfo>,
) -> FleetDriver<SteadyShard> {
    let mut config = FleetDriverConfig::new(k_max);
    config.warmup_windows = 2;
    config.window_secs = 1.0;
    // No timeline: steady-state windows must not even record themselves.
    config.record_timeline = false;
    let shard = |name: &str, rate: f64| {
        let spec = FleetShardSpec::new(
            name,
            0.2,
            SteadyShard::new(rate, 10.0, desired_k(rate, 10.0, 0.2)),
        );
        match &placement {
            Some(info) => spec.with_placement(info.clone()),
            None => spec,
        }
    };
    FleetDriver::new(
        config,
        vec![shard("a", 40.0), shard("b", 25.0), shard("c", 55.0)],
    )
    .expect("fleet construction")
}

fn steady_fleet(k_max: u32) -> FleetDriver<SteadyShard> {
    steady_fleet_with(k_max, None)
}

/// The same steady fleet with a shared machine pool and per-shard
/// placement metadata installed: the placement phase (warm epoch-stamped
/// state, request comparison, replan) runs every window and must stay
/// allocation-free once nothing changes.
fn steady_placed_fleet(k_max: u32) -> FleetDriver<SteadyShard> {
    // A self-loop edge keeps the measured-rate comparison in play; the
    // rate is constant, so it always lands inside the band.
    let info = ShardPlacementInfo {
        profiles: vec![ResourceProfile::uniform(0.5)],
        edges: vec![(0, 0, 1.0)],
    };
    let mut fleet = steady_fleet_with(k_max, Some(info));
    fleet.set_machine_pool(
        MachinePool::uniform(4, ResourceProfile::uniform(64.0)).expect("valid pool"),
    );
    fleet
}

fn assert_steady_windows_allocation_free(mut fleet: FleetDriver<SteadyShard>, label: &str) {
    // Warm past the α-smoothing bitwise fixpoint (α = 0.5 converges in
    // well under 100 constant-input windows) so the demand epoch stops
    // advancing and grants go quiescent.
    fleet.run_windows(120);
    let settled = fleet.completed_windows();

    let before = ALLOCS.load(Ordering::Relaxed);
    TRAP.store(12, Ordering::Relaxed);
    fleet.run_windows(10);
    TRAP.store(0, Ordering::Relaxed);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(fleet.completed_windows(), settled + 10);
    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocations across 10 zero-churn steady-state \
         windows (expected 0)",
        after - before
    );
}

#[test]
fn steady_state_windows_allocate_nothing() {
    // Uncontended: the budget fits every desired allocation.
    assert_steady_windows_allocation_free(steady_fleet(40), "uncontended");
    // Contended: desired totals exceed the budget, so the warm negotiator
    // holds live walk state and the capped fix-up path runs every window.
    assert_steady_windows_allocation_free(steady_fleet(14), "contended");
}

#[test]
fn steady_placement_windows_allocate_nothing() {
    // Placement-enabled: the warm placement state compares every shard's
    // request against its cache each window (including the rate-banded
    // edge comparison) and replans nothing — still zero allocations.
    assert_steady_windows_allocation_free(steady_placed_fleet(40), "placed uncontended");
    assert_steady_windows_allocation_free(steady_placed_fleet(14), "placed contended");
    // Sanity: the placed fleet actually solved placements at warm-up (the
    // zero-alloc windows above exercised the warm path, not a no-op).
    let mut fleet = steady_placed_fleet(40);
    fleet.run_windows(20);
    assert!(fleet.placement_full_solves() >= 1);
    assert!((0..fleet.shard_count()).all(|i| fleet.shard_placement(i).is_some()));
}
