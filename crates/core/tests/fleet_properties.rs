//! Property tests for the fleet budget negotiator: for random topologies
//! and budgets, capped allocations sum to at most `Kmax`, no shard is ever
//! starved below its minimum stable allocation, and the fleet schedule
//! equals the single-topology schedules whenever total demand fits the
//! budget.

use drs_core::fleet::{FleetNegotiator, ShardDemand};
use drs_core::scheduler::{self, ScheduleError};
use drs_queueing::jackson::JacksonNetwork;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random shard: a small open network with per-operator offered loads in
/// a stability-friendly range, plus its own Program 6 demand.
fn shard_networks(loads: &[Vec<(f64, f64)>], external: &[f64]) -> Vec<JacksonNetwork> {
    loads
        .iter()
        .zip(external)
        .map(|(ops, &lambda0)| {
            let pairs: Vec<(f64, f64)> = ops
                .iter()
                .map(|&(fan, load)| {
                    let lambda = lambda0 * fan;
                    // offered load a = λ/µ fixed by draw: µ = λ / a.
                    (lambda, lambda / load)
                })
                .collect();
            JacksonNetwork::from_rates(lambda0, &pairs).expect("positive rates")
        })
        .collect()
}

/// Each shard's own single-topology schedule for its target.
fn desired_allocations(
    networks: &[JacksonNetwork],
    slack: &[f64],
    cap: u32,
) -> Option<Vec<Vec<u32>>> {
    networks
        .iter()
        .zip(slack)
        .map(|(net, &s)| {
            let t_max = scheduler::no_queueing_bound(net) * s;
            match scheduler::min_processors_for_target(net, t_max, cap) {
                Ok(a) => Some(a.into_vec()),
                // Targets barely above the bound can blow past the cap on
                // unlucky draws; skip those cases.
                Err(ScheduleError::CapExceeded { .. }) => None,
                Err(e) => panic!("unexpected schedule error: {e}"),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fleet_grants_respect_budget_minimums_and_uncontended_parity(
        // 1–4 shards, each with 1–3 operators.
        loads in vec(vec((0.25f64..4.0, 0.3f64..5.5), 1..=3), 1..=4),
        external in vec(2.0f64..60.0, 4),
        slack in vec(1.3f64..4.0, 4),
        budget_scale in 0.3f64..1.5,
    ) {
        let n = loads.len();
        let networks = shard_networks(&loads, &external[..n]);
        let Some(desired) = desired_allocations(&networks, &slack[..n], 512) else {
            // Unreachable-within-cap draw: nothing to test.
            return Ok(());
        };

        let min_stables: Vec<Vec<u32>> =
            networks.iter().map(|net| net.min_stable_allocation()).collect();
        let total_desired: u64 = desired
            .iter()
            .flat_map(|a| a.iter().map(|&k| u64::from(k)))
            .sum();
        let total_min: u64 = min_stables
            .iter()
            .flat_map(|a| a.iter().map(|&k| u64::from(k)))
            .sum();

        // A budget anywhere between "hopeless" and "roomy".
        let k_max = ((total_desired as f64 * budget_scale) as u64)
            .min(u64::from(u32::MAX)) as u32;

        let demands: Vec<ShardDemand> = networks
            .iter()
            .zip(&desired)
            .map(|(net, d)| ShardDemand { network: net.clone(), desired: d.clone() })
            .collect();
        let negotiator = FleetNegotiator::new(k_max);

        match negotiator.negotiate(&demands) {
            Err(e) => {
                // The only legitimate failure: even stability does not fit.
                prop_assert!(
                    total_min > u64::from(k_max),
                    "negotiation failed with {e} although stability fits \
                     (min {total_min} ≤ budget {k_max})"
                );
            }
            Ok(grants) => {
                prop_assert_eq!(grants.len(), n);

                // 1. Grants never exceed the budget.
                let total_granted: u64 = grants.iter().map(|g| g.total()).sum();
                prop_assert!(
                    total_granted <= u64::from(k_max),
                    "granted {} > budget {}",
                    total_granted,
                    k_max
                );

                // 2. No shard starved below its minimum stable allocation.
                for (i, (grant, min)) in grants.iter().zip(&min_stables).enumerate() {
                    for (op, (&got, &need)) in
                        grant.allocation.iter().zip(min.iter()).enumerate()
                    {
                        prop_assert!(
                            got >= need,
                            "shard {i} op {op} starved: granted {got} < min stable {need}"
                        );
                    }
                }

                // 3. No shard granted more than its own schedule asked
                //    for: surplus must flow to still-short shards instead.
                for (i, (grant, want)) in grants.iter().zip(&desired).enumerate() {
                    let want_total: u64 = want.iter().map(|&k| u64::from(k)).sum();
                    prop_assert!(
                        grant.total() <= want_total,
                        "shard {} over-granted: {} > desired {}",
                        i,
                        grant.total(),
                        want_total
                    );
                }

                // 4. When total demand fits, the fleet schedule IS the
                //    single-topology schedules, uncapped.
                if total_desired <= u64::from(k_max) {
                    for (i, (grant, want)) in grants.iter().zip(&desired).enumerate() {
                        prop_assert_eq!(
                            &grant.allocation, want,
                            "shard {} diverged from its solo schedule", i
                        );
                        prop_assert!(!grant.capped);
                    }
                } else {
                    // 5. Contended: the whole budget is put to work (no
                    //    processor idles while shards are starved), and at
                    //    least one shard is marked capped.
                    prop_assert_eq!(total_granted, u64::from(k_max));
                    prop_assert!(grants.iter().any(|g| g.capped));
                }
            }
        }
    }
}
