//! Property tests for the fleet budget negotiator — for random topologies
//! and budgets, capped allocations sum to at most `Kmax`, no shard is ever
//! starved below its minimum stable allocation, and the fleet schedule
//! equals the single-topology schedules whenever total demand fits the
//! budget — plus the rebalance-churn guarantee of the per-shard decision
//! gate: measurement noise that wobbles the grants must not re-balance the
//! fleet every window.

use drs_core::driver::{
    AppliedRebalance, BackendError, CspBackend, OperatorSample, RebalancePlan, WindowSample,
};
use drs_core::fleet::{
    FleetDriver, FleetDriverConfig, FleetNegotiator, FleetShardSpec, ShardDemand,
};
use drs_core::scheduler::{self, ScheduleError};
use drs_queueing::jackson::JacksonNetwork;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random shard: a small open network with per-operator offered loads in
/// a stability-friendly range, plus its own Program 6 demand.
fn shard_networks(loads: &[Vec<(f64, f64)>], external: &[f64]) -> Vec<JacksonNetwork> {
    loads
        .iter()
        .zip(external)
        .map(|(ops, &lambda0)| {
            let pairs: Vec<(f64, f64)> = ops
                .iter()
                .map(|&(fan, load)| {
                    let lambda = lambda0 * fan;
                    // offered load a = λ/µ fixed by draw: µ = λ / a.
                    (lambda, lambda / load)
                })
                .collect();
            JacksonNetwork::from_rates(lambda0, &pairs).expect("positive rates")
        })
        .collect()
}

/// Each shard's own single-topology schedule for its target.
fn desired_allocations(
    networks: &[JacksonNetwork],
    slack: &[f64],
    cap: u32,
) -> Option<Vec<Vec<u32>>> {
    networks
        .iter()
        .zip(slack)
        .map(|(net, &s)| {
            let t_max = scheduler::no_queueing_bound(net) * s;
            match scheduler::min_processors_for_target(net, t_max, cap) {
                Ok(a) => Some(a.into_vec()),
                // Targets barely above the bound can blow past the cap on
                // unlucky draws; skip those cases.
                Err(ScheduleError::CapExceeded { .. }) => None,
                Err(e) => panic!("unexpected schedule error: {e}"),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fleet_grants_respect_budget_minimums_and_uncontended_parity(
        // 1–4 shards, each with 1–3 operators.
        loads in vec(vec((0.25f64..4.0, 0.3f64..5.5), 1..=3), 1..=4),
        external in vec(2.0f64..60.0, 4),
        slack in vec(1.3f64..4.0, 4),
        budget_scale in 0.3f64..1.5,
    ) {
        let n = loads.len();
        let networks = shard_networks(&loads, &external[..n]);
        let Some(desired) = desired_allocations(&networks, &slack[..n], 512) else {
            // Unreachable-within-cap draw: nothing to test.
            return Ok(());
        };

        let min_stables: Vec<Vec<u32>> =
            networks.iter().map(|net| net.min_stable_allocation()).collect();
        let total_desired: u64 = desired
            .iter()
            .flat_map(|a| a.iter().map(|&k| u64::from(k)))
            .sum();
        let total_min: u64 = min_stables
            .iter()
            .flat_map(|a| a.iter().map(|&k| u64::from(k)))
            .sum();

        // A budget anywhere between "hopeless" and "roomy".
        let k_max = ((total_desired as f64 * budget_scale) as u64)
            .min(u64::from(u32::MAX)) as u32;

        let demands: Vec<ShardDemand> = networks
            .iter()
            .zip(&desired)
            .map(|(net, d)| ShardDemand { network: net.clone(), desired: d.clone() })
            .collect();
        let negotiator = FleetNegotiator::new(k_max);

        match negotiator.negotiate(&demands) {
            Err(e) => {
                // The only legitimate failure: even stability does not fit.
                prop_assert!(
                    total_min > u64::from(k_max),
                    "negotiation failed with {e} although stability fits \
                     (min {total_min} ≤ budget {k_max})"
                );
            }
            Ok(grants) => {
                prop_assert_eq!(grants.len(), n);

                // 1. Grants never exceed the budget.
                let total_granted: u64 = grants.iter().map(|g| g.total()).sum();
                prop_assert!(
                    total_granted <= u64::from(k_max),
                    "granted {} > budget {}",
                    total_granted,
                    k_max
                );

                // 2. No shard starved below its minimum stable allocation.
                for (i, (grant, min)) in grants.iter().zip(&min_stables).enumerate() {
                    for (op, (&got, &need)) in
                        grant.allocation.iter().zip(min.iter()).enumerate()
                    {
                        prop_assert!(
                            got >= need,
                            "shard {i} op {op} starved: granted {got} < min stable {need}"
                        );
                    }
                }

                // 3. No shard granted more than its own schedule asked
                //    for: surplus must flow to still-short shards instead.
                for (i, (grant, want)) in grants.iter().zip(&desired).enumerate() {
                    let want_total: u64 = want.iter().map(|&k| u64::from(k)).sum();
                    prop_assert!(
                        grant.total() <= want_total,
                        "shard {} over-granted: {} > desired {}",
                        i,
                        grant.total(),
                        want_total
                    );
                }

                // 4. When total demand fits, the fleet schedule IS the
                //    single-topology schedules, uncapped.
                if total_desired <= u64::from(k_max) {
                    for (i, (grant, want)) in grants.iter().zip(&desired).enumerate() {
                        prop_assert_eq!(
                            &grant.allocation, want,
                            "shard {} diverged from its solo schedule", i
                        );
                        prop_assert!(!grant.capped);
                    }
                } else {
                    // 5. Contended: the whole budget is put to work (no
                    //    processor idles while shards are starved), and at
                    //    least one shard is marked capped.
                    prop_assert_eq!(total_granted, u64::from(k_max));
                    prop_assert!(grants.iter().any(|g| g.capped));
                }
            }
        }
    }
}

/// A shard whose measured arrival rate wobbles a few percent around its
/// nominal value (deterministic xorshift jitter), reporting the
/// M/M/k-consistent sojourn for whatever it currently runs — the classic
/// "healthy but noisy" fleet member whose grant drifts ±1 executor from
/// window to window.
#[derive(Debug)]
struct NoisyShard {
    nominal_rate: f64,
    mu: f64,
    allocation: Vec<u32>,
    rng: u64,
}

impl NoisyShard {
    fn new(nominal_rate: f64, mu: f64, k: u32, seed: u64) -> Self {
        NoisyShard {
            nominal_rate,
            mu,
            allocation: vec![k],
            rng: seed | 1,
        }
    }

    fn jitter(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        // ±15% multiplicative noise — enough for the smoothed rate to
        // keep crossing Program 6 demand boundaries.
        1.0 + ((self.rng % 1_000) as f64 / 1_000.0 - 0.5) * 0.3
    }
}

impl CspBackend for NoisyShard {
    fn backend_name(&self) -> &'static str {
        "noisy"
    }
    fn operator_names(&self) -> Vec<String> {
        vec!["work".to_owned()]
    }
    fn current_allocation(&self) -> Vec<u32> {
        self.allocation.clone()
    }
    fn advance(&mut self, _window_secs: f64) -> WindowSample {
        let rate = self.nominal_rate * self.jitter();
        WindowSample {
            external_rate: Some(rate),
            operators: vec![OperatorSample {
                arrival_rate: Some(rate),
                service_rate: Some(self.mu),
            }],
            mean_sojourn: Some(drs_core::fleet::mmk_measured_sojourn(
                rate,
                self.mu,
                self.allocation[0],
            )),
            std_sojourn: None,
            completed: 100,
        }
    }
    fn apply(&mut self, plan: &RebalancePlan) -> Result<AppliedRebalance, BackendError> {
        self.allocation = plan.allocation.clone();
        Ok(AppliedRebalance {
            allocation: plan.allocation.clone(),
            pause_secs: plan.pause_secs,
        })
    }
}

#[test]
fn decision_gate_damps_noise_driven_rebalance_churn() {
    // Three healthy shards with ±15% rate noise and loose targets: their
    // Program 6 demands wobble ±1 executor across windows, but the
    // cost/benefit gate must keep the fleet from re-balancing on every
    // wobble. Without the gate every demand change was actuated verbatim
    // (the pre-gate driver re-balanced whenever the grant differed).
    const WINDOWS: u64 = 30;
    const SETTLE: usize = 8;
    let mut config = FleetDriverConfig::new(40);
    config.warmup_windows = 1;
    config.window_secs = 1.0;
    let mut fleet = FleetDriver::new(
        config,
        vec![
            FleetShardSpec::new("a", 0.2, NoisyShard::new(40.0, 10.0, 6, 11)),
            FleetShardSpec::new("b", 0.2, NoisyShard::new(25.0, 10.0, 4, 23)),
            FleetShardSpec::new("c", 0.2, NoisyShard::new(55.0, 10.0, 8, 47)),
        ],
    )
    .unwrap();
    fleet.run_windows(WINDOWS);
    let timeline = fleet.timeline();
    assert_eq!(timeline.len() as u64, WINDOWS);

    let settled = &timeline[SETTLE..];
    // The noise is real: demands keep moving after settling...
    let demand_changes = settled
        .windows(2)
        .filter(|pair| {
            pair[0].shards.iter().map(|s| s.demand).collect::<Vec<_>>()
                != pair[1].shards.iter().map(|s| s.demand).collect::<Vec<_>>()
        })
        .count();
    assert!(
        demand_changes > settled.len() / 3,
        "the workload must actually wobble for this test to mean anything \
         ({demand_changes} demand changes in {} windows)",
        settled.len()
    );
    // ...and the gate visibly absorbs grant wobble...
    let gated_windows = settled
        .iter()
        .filter(|w| w.shards.iter().any(|s| s.gated))
        .count();
    assert!(
        gated_windows > 0,
        "some wobble must reach the gate and be kept"
    );
    // ...so actuated rebalances stay rare: once settled, well under one
    // shard-rebalance per window on average (the pre-gate driver paid one
    // per demand change per shard).
    let churn: usize = settled
        .iter()
        .map(|w| w.shards.iter().filter(|s| s.rebalanced).count())
        .sum();
    assert!(
        churn <= settled.len() / 4,
        "gate failed to damp churn: {churn} shard-rebalances in {} settled windows",
        settled.len()
    );
    // The fleet never exceeds its budget while damping.
    assert!(timeline.iter().all(|w| w.total_granted <= 40));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The warm-start incremental negotiator is *observationally identical*
    /// to from-scratch negotiation: across any sequence of demand drifts,
    /// desired-allocation wobbles, shard churn (add/remove), budget swings,
    /// and even invalid demands, every window's `Result` — grants
    /// bit-for-bit, `capped` flags, and error variants included — equals
    /// what a fresh negotiator produces for the same inputs.
    #[test]
    fn incremental_negotiation_matches_from_scratch(
        loads in vec(vec((0.25f64..4.0, 0.3f64..5.5), 1..=3), 1..=4),
        external in vec(2.0f64..60.0, 4),
        slack in vec(1.3f64..4.0, 4),
        // Per-window mutation script, drawn up front (no flat_map in the
        // vendored proptest): (kind, selector, rate scale, budget scale).
        steps in vec((0u8..5, 0usize..8, 0.7f64..1.4, 0.25f64..1.3), 1..=12),
    ) {
        let n = loads.len();
        let mut networks = shard_networks(&loads, &external[..n]);
        let Some(mut desired) = desired_allocations(&networks, &slack[..n], 512) else {
            return Ok(());
        };
        let mut loads = loads;
        let mut external = external[..n].to_vec();

        // One warm negotiator carried across every window of the script.
        let mut warm = FleetNegotiator::new(0);

        let check = |warm: &mut FleetNegotiator,
                         budget: u32,
                         demands: &[ShardDemand],
                         window: usize|
         -> Result<(), TestCaseError> {
            let scratch = FleetNegotiator::new(budget).negotiate_within(budget, demands);
            let incremental = warm
                .negotiate_within_incremental(budget, demands)
                .map(|()| warm.grants().to_vec());
            prop_assert_eq!(
                incremental,
                scratch,
                "window {} diverged from from-scratch negotiation",
                window
            );
            Ok(())
        };

        for (window, &(kind, sel, rate_scale, budget_scale)) in steps.iter().enumerate() {
            let n = networks.len();
            match kind {
                // Demand drift: one shard's arrival rates move, offered
                // loads (and thus minimum stable allocations) held fixed.
                0 => {
                    let i = sel % n;
                    external[i] *= rate_scale;
                    networks[i] =
                        shard_networks(&loads[i..=i], &external[i..=i]).pop().unwrap();
                }
                // Desired wobble: one operator's schedule target steps by
                // ±1 (possibly below minimum stable — the floor must win
                // identically on both paths).
                1 => {
                    let i = sel % n;
                    let op = sel % desired[i].len();
                    desired[i][op] = if rate_scale > 1.0 {
                        desired[i][op].saturating_add(1)
                    } else {
                        desired[i][op].saturating_sub(1)
                    };
                }
                // Shard leaves the fleet.
                2 if n > 1 => {
                    let i = sel % n;
                    loads.remove(i);
                    external.remove(i);
                    networks.remove(i);
                    desired.remove(i);
                }
                // Shard joins the fleet (cloned from an existing one with
                // a scaled arrival rate).
                3 if n < 6 => {
                    let j = sel % n;
                    let lam = external[j] * rate_scale;
                    loads.push(loads[j].clone());
                    external.push(lam);
                    let added =
                        shard_networks(&loads[loads.len() - 1..], &[lam]).pop().unwrap();
                    networks.push(added);
                    desired.push(desired[j].clone());
                }
                _ => {} // pure budget move: demands unchanged this window
            }

            let demands: Vec<ShardDemand> = networks
                .iter()
                .zip(&desired)
                .map(|(net, d)| ShardDemand { network: net.clone(), desired: d.clone() })
                .collect();
            let total_desired: u64 = desired
                .iter()
                .flat_map(|a| a.iter().map(|&k| u64::from(k)))
                .sum();
            let budget = ((total_desired as f64 * budget_scale) as u64)
                .min(u64::from(u32::MAX)) as u32;

            // Corruption window: a desired vector that does not match its
            // network must produce the identical error without poisoning
            // the warm state for later windows.
            if kind == 4 {
                let mut bad = demands.clone();
                let i = sel % bad.len();
                bad[i].desired.push(1);
                check(&mut warm, budget, &bad, window)?;
            }

            check(&mut warm, budget, &demands, window)?;
            // Zero-churn repeat: the pure steady-state path (no demand
            // diff at all) must reproduce the same grants.
            check(&mut warm, budget, &demands, window)?;
        }
    }
}
