//! Identifier and specification types for operators and edges.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of an operator inside one [`crate::Topology`].
///
/// Ids are dense indices assigned in insertion order by the
/// [`crate::TopologyBuilder`]; they index directly into allocation vectors
/// `k = (k_1, …, k_N)` used by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatorId(pub(crate) usize);

impl OperatorId {
    /// The dense index of this operator (0-based insertion order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// The role of an operator, following Storm's vocabulary (paper App. C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorKind {
    /// A data source connected to external streams; spouts receive no
    /// internal edges.
    Spout,
    /// Any non-source operator.
    Bolt,
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatorKind::Spout => write!(f, "spout"),
            OperatorKind::Bolt => write!(f, "bolt"),
        }
    }
}

/// How tuples emitted on an edge are distributed among the downstream
/// operator's executors (Storm partitioning rules, paper App. C).
///
/// The DRS model assumes load balancing within an operator (§III-A), which
/// all of these groupings provide for the *rates*; the distinction matters to
/// the runtime/simulator when reproducing queue behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Grouping {
    /// Round-robin / random executor choice; best load balance.
    #[default]
    Shuffle,
    /// Hash partitioning on a tuple key; balanced in expectation.
    Fields,
    /// Every executor receives a copy (used for loop-back state-change
    /// notifications in FPD). Multiplies effective downstream arrivals by
    /// the executor count.
    All,
    /// The producer picks the destination executor explicitly.
    Direct,
}

impl fmt::Display for Grouping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Grouping::Shuffle => write!(f, "shuffle"),
            Grouping::Fields => write!(f, "fields"),
            Grouping::All => write!(f, "all"),
            Grouping::Direct => write!(f, "direct"),
        }
    }
}

/// Per-executor resource demand vector, R-Storm style (PAPERS.md).
///
/// Each executor of an operator consumes this much of a machine's CPU,
/// memory and network budget while scheduled there. Units are abstract;
/// only the ratios against [machine capacities] matter. The default is one
/// unit of each, which reduces placement to a pure slot-count problem.
///
/// [machine capacities]: https://dl.acm.org/doi/10.14778/2831360.2831367
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// CPU demand per executor (abstract units).
    pub cpu: f64,
    /// Memory demand per executor (abstract units).
    pub mem: f64,
    /// Network-bandwidth demand per executor (abstract units).
    pub net: f64,
}

impl Default for ResourceProfile {
    fn default() -> Self {
        ResourceProfile {
            cpu: 1.0,
            mem: 1.0,
            net: 1.0,
        }
    }
}

impl ResourceProfile {
    /// A uniform profile demanding `units` of every resource.
    pub fn uniform(units: f64) -> Self {
        ResourceProfile {
            cpu: units,
            mem: units,
            net: units,
        }
    }

    /// Whether every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [self.cpu, self.mem, self.net]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl fmt::Display for ResourceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={:.2} mem={:.2} net={:.2}",
            self.cpu, self.mem, self.net
        )
    }
}

/// Static description of one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    pub(crate) id: OperatorId,
    pub(crate) name: String,
    pub(crate) kind: OperatorKind,
    #[serde(default)]
    pub(crate) profile: ResourceProfile,
}

impl OperatorSpec {
    /// The operator id.
    pub fn id(&self) -> OperatorId {
        self.id
    }

    /// The unique operator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a spout or a bolt.
    pub fn kind(&self) -> OperatorKind {
        self.kind
    }

    /// Convenience: `kind() == OperatorKind::Spout`.
    pub fn is_spout(&self) -> bool {
        self.kind == OperatorKind::Spout
    }

    /// Per-executor resource demand of this operator.
    pub fn profile(&self) -> ResourceProfile {
        self.profile
    }
}

/// Static description of a directed edge between two operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    pub(crate) from: OperatorId,
    pub(crate) to: OperatorId,
    pub(crate) gain: f64,
    pub(crate) grouping: Grouping,
    pub(crate) network_delay: f64,
}

impl EdgeSpec {
    /// Source operator.
    pub fn from(&self) -> OperatorId {
        self.from
    }

    /// Destination operator.
    pub fn to(&self) -> OperatorId {
        self.to
    }

    /// Expected number of tuples emitted on this edge per tuple processed at
    /// the source (selectivity < 1, fan-out > 1).
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Executor-level routing rule.
    pub fn grouping(&self) -> Grouping {
        self.grouping
    }

    /// Mean one-way network delay in seconds experienced by tuples crossing
    /// this edge. The DRS performance model deliberately ignores this (paper
    /// §III-B); the simulator applies it, which reproduces the measured-vs-
    /// estimated gap of Figs. 7–8.
    pub fn network_delay(&self) -> f64 {
        self.network_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_id_exposes_index_and_displays() {
        let id = OperatorId(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "op#3");
    }

    #[test]
    fn kinds_display() {
        assert_eq!(OperatorKind::Spout.to_string(), "spout");
        assert_eq!(OperatorKind::Bolt.to_string(), "bolt");
    }

    #[test]
    fn grouping_default_is_shuffle() {
        assert_eq!(Grouping::default(), Grouping::Shuffle);
        assert_eq!(Grouping::Fields.to_string(), "fields");
        assert_eq!(Grouping::All.to_string(), "all");
        assert_eq!(Grouping::Direct.to_string(), "direct");
        assert_eq!(Grouping::Shuffle.to_string(), "shuffle");
    }

    #[test]
    fn operator_spec_accessors() {
        let spec = OperatorSpec {
            id: OperatorId(0),
            name: "frames".into(),
            kind: OperatorKind::Spout,
            profile: ResourceProfile::default(),
        };
        assert_eq!(spec.name(), "frames");
        assert!(spec.is_spout());
        assert_eq!(spec.id().index(), 0);
        assert_eq!(spec.profile(), ResourceProfile::uniform(1.0));
    }

    #[test]
    fn resource_profile_validation_and_display() {
        assert!(ResourceProfile::default().is_valid());
        assert!(ResourceProfile::uniform(0.0).is_valid());
        assert!(!ResourceProfile {
            cpu: f64::NAN,
            ..Default::default()
        }
        .is_valid());
        assert!(!ResourceProfile {
            mem: -1.0,
            ..Default::default()
        }
        .is_valid());
        let p = ResourceProfile {
            cpu: 4.0,
            mem: 1.0,
            net: 0.5,
        };
        assert!(p.to_string().contains("cpu=4.00"));
    }

    #[test]
    fn edge_spec_accessors() {
        let edge = EdgeSpec {
            from: OperatorId(0),
            to: OperatorId(1),
            gain: 30.0,
            grouping: Grouping::Shuffle,
            network_delay: 0.002,
        };
        assert_eq!(edge.from().index(), 0);
        assert_eq!(edge.to().index(), 1);
        assert_eq!(edge.gain(), 30.0);
        assert_eq!(edge.network_delay(), 0.002);
        assert_eq!(edge.grouping(), Grouping::Shuffle);
    }
}
