//! Compiled compressed-sparse-row (CSR) adjacency of a [`Topology`].
//!
//! Both execution substrates — the discrete-event simulator (`drs-sim`) and
//! the threaded runtime (`drs-runtime`) — walk every operator's outgoing
//! edges once per processed tuple. Iterating `Topology::downstream` (a
//! filtered scan of the edge list) or a per-operator `Vec<Vec<_>>` is either
//! O(edges) per tuple or an extra pointer chase per hop; the CSR form packs
//! edge indices and target operators into two flat arrays walkable by value,
//! so the emit hot path performs no allocation and no indirection beyond two
//! slice reads.
//!
//! Edge order within one operator follows the topology's edge declaration
//! order (a stable counting sort), so compiling is deterministic and both
//! substrates agree on emission order — which the simulator's FIFO
//! tie-breaking turns into bit-identical timelines.
//!
//! # Examples
//!
//! ```
//! use drs_topology::{CsrOutEdges, TopologyBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TopologyBuilder::new();
//! let spout = b.spout("src");
//! let a = b.bolt("a");
//! let c = b.bolt("c");
//! b.edge(spout, a)?;
//! b.edge(a, c)?;
//! b.edge(spout, c)?;
//! let topo = b.build()?;
//!
//! let csr = CsrOutEdges::compile(&topo);
//! assert_eq!(csr.edges_of(spout.index()), &[0, 2]); // declaration order
//! assert_eq!(csr.targets_of(a.index()), &[c.index() as u32]);
//! assert_eq!(csr.targets_of(c.index()), &[]);
//! # Ok(())
//! # }
//! ```

use crate::topology::Topology;

/// Flat CSR layout of a topology's outgoing edges. See the [module
/// docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrOutEdges {
    /// Operator `op`'s out-edges occupy `start[op]..start[op + 1]` in the
    /// flat arrays.
    start: Vec<u32>,
    /// Edge indices into `Topology::edges`, grouped by source operator.
    edge_index: Vec<u32>,
    /// Target operator index of the matching `edge_index` entry.
    target: Vec<u32>,
}

impl CsrOutEdges {
    /// Compiles the CSR adjacency from a topology. O(operators + edges).
    pub fn compile(topology: &Topology) -> Self {
        let n = topology.len();
        let mut start = vec![0u32; n + 1];
        for e in topology.edges() {
            start[e.from().index() + 1] += 1;
        }
        for i in 0..n {
            start[i + 1] += start[i];
        }
        // Stable counting sort: edges of one operator keep declaration order.
        let mut cursor = start.clone();
        let mut edge_index = vec![0u32; topology.edges().len()];
        let mut target = vec![0u32; topology.edges().len()];
        for (idx, e) in topology.edges().iter().enumerate() {
            let slot = cursor[e.from().index()] as usize;
            edge_index[slot] = idx as u32;
            target[slot] = e.to().index() as u32;
            cursor[e.from().index()] += 1;
        }
        CsrOutEdges {
            start,
            edge_index,
            target,
        }
    }

    /// Number of operators the layout covers.
    pub fn len(&self) -> usize {
        self.start.len() - 1
    }

    /// Whether the layout covers no operators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Out-degree of operator `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn out_degree(&self, op: usize) -> usize {
        (self.start[op + 1] - self.start[op]) as usize
    }

    /// Edge indices (into `Topology::edges`) of `op`'s outgoing edges, in
    /// declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn edges_of(&self, op: usize) -> &[u32] {
        &self.edge_index[self.start[op] as usize..self.start[op + 1] as usize]
    }

    /// Target operator indices of `op`'s outgoing edges, aligned with
    /// [`CsrOutEdges::edges_of`].
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn targets_of(&self, op: usize) -> &[u32] {
        &self.target[self.start[op] as usize..self.start[op + 1] as usize]
    }

    /// `(edge_index, target)` pairs of `op`'s outgoing edges.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn out_edges(&self, op: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges_of(op)
            .iter()
            .copied()
            .zip(self.targets_of(op).iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn compile_matches_downstream_queries() {
        let topo = crate::presets::diamond_with_loop();
        let csr = CsrOutEdges::compile(&topo);
        assert_eq!(csr.len(), topo.len());
        for op in topo.operators() {
            let expected: Vec<u32> = topo
                .downstream(op.id())
                .map(|e| e.to().index() as u32)
                .collect();
            assert_eq!(csr.targets_of(op.id().index()), expected.as_slice());
            assert_eq!(csr.out_degree(op.id().index()), expected.len());
            for (edge_idx, target) in csr.out_edges(op.id().index()) {
                let e = &topo.edges()[edge_idx as usize];
                assert_eq!(e.from(), op.id());
                assert_eq!(e.to().index() as u32, target);
            }
        }
    }

    #[test]
    fn edge_order_is_declaration_order() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let x = b.bolt("x");
        let y = b.bolt("y");
        let z = b.bolt("z");
        b.edge(s, z).unwrap();
        b.edge(s, x).unwrap();
        b.edge(s, y).unwrap();
        let topo = b.build().unwrap();
        let csr = CsrOutEdges::compile(&topo);
        assert_eq!(csr.edges_of(s.index()), &[0, 1, 2]);
        assert_eq!(
            csr.targets_of(s.index()),
            &[z.index() as u32, x.index() as u32, y.index() as u32]
        );
    }
}
