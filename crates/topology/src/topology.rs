//! The validated [`Topology`] type and its structural queries.

use crate::spec::{EdgeSpec, OperatorId, OperatorKind, OperatorSpec};
use drs_queueing::traffic::{TrafficEquations, TrafficError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A validated operator network: operators plus directed, weighted edges.
///
/// Construct via [`crate::TopologyBuilder`]. A `Topology` is purely
/// structural — it says nothing about arrival rates or allocations; those are
/// supplied by the measurer/simulator and by the scheduler respectively.
///
/// # Examples
///
/// ```
/// use drs_topology::presets;
///
/// let topo = presets::diamond_with_loop();
/// assert_eq!(topo.len(), 6); // source spout + operators A..E
/// assert!(!topo.is_acyclic()); // the E -> A feedback loop of paper Fig. 2
/// let a = topo.operator_by_name("A").unwrap();
/// assert_eq!(topo.downstream(a.id()).count(), 2); // splits to B and C
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    operators: Vec<OperatorSpec>,
    edges: Vec<EdgeSpec>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl Topology {
    pub(crate) fn from_parts(operators: Vec<OperatorSpec>, edges: Vec<EdgeSpec>) -> Self {
        let by_name = operators
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name().to_owned(), i))
            .collect();
        Topology {
            operators,
            edges,
            by_name,
        }
    }

    /// Number of operators (spouts + bolts). This is the `N` of the paper.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// Whether the topology has no operators (never true for built
    /// topologies, which require a spout).
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// All operators in id order.
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.operators
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// The operator with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this topology.
    pub fn operator(&self, id: OperatorId) -> &OperatorSpec {
        &self.operators[id.index()]
    }

    /// Looks up an operator by name.
    pub fn operator_by_name(&self, name: &str) -> Option<&OperatorSpec> {
        self.by_name.get(name).map(|&i| &self.operators[i])
    }

    /// Iterator over the spouts.
    pub fn spouts(&self) -> impl Iterator<Item = &OperatorSpec> {
        self.operators.iter().filter(|o| o.is_spout())
    }

    /// Iterator over the bolts.
    pub fn bolts(&self) -> impl Iterator<Item = &OperatorSpec> {
        self.operators
            .iter()
            .filter(|o| o.kind() == OperatorKind::Bolt)
    }

    /// Expands a bolt-only allocation (bolts in id order — the "model
    /// order" the DRS scheduler reasons in, since spouts contribute no
    /// queueing) to a full per-operator vector; spouts keep one executor.
    ///
    /// Returns `None` when `bolts` does not have exactly one entry per
    /// bolt. This is the single definition of the model-order ↔ topology
    /// mapping shared by every CSP backend.
    pub fn expand_bolt_allocation(&self, bolts: &[u32]) -> Option<Vec<u32>> {
        if bolts.len() != self.bolts().count() {
            return None;
        }
        let mut full = vec![1u32; self.operators.len()];
        for (op, &k) in self.bolts().zip(bolts) {
            full[op.id().index()] = k;
        }
        Some(full)
    }

    /// Edges leaving `id`.
    pub fn downstream(&self, id: OperatorId) -> impl Iterator<Item = &EdgeSpec> {
        self.edges.iter().filter(move |e| e.from() == id)
    }

    /// Edges entering `id`.
    pub fn upstream(&self, id: OperatorId) -> impl Iterator<Item = &EdgeSpec> {
        self.edges.iter().filter(move |e| e.to() == id)
    }

    /// Whether the edge graph contains no directed cycle.
    ///
    /// Loops are a supported feature (paper Fig. 2); this query lets callers
    /// know whether they must worry about loop gain.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm: the graph is acyclic iff all nodes get sorted.
        let n = self.operators.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to().index()] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for e in &self.edges {
                if e.from().index() == u {
                    let v = e.to().index();
                    indegree[v] -= 1;
                    if indegree[v] == 0 {
                        queue.push(v);
                    }
                }
            }
        }
        seen == n
    }

    /// Builds the traffic-equation system for this topology given the
    /// external arrival rate into each *spout* (keyed by operator id).
    ///
    /// Bolts receive no external traffic; spout-to-bolt edges propagate it.
    ///
    /// # Errors
    ///
    /// Propagates [`TrafficError`] for invalid rates (negative/non-finite) or
    /// ids outside the topology.
    pub fn traffic_equations(
        &self,
        spout_rates: &[(OperatorId, f64)],
    ) -> Result<TrafficEquations, TrafficError> {
        let mut eqs = TrafficEquations::new(self.len());
        for &(id, rate) in spout_rates {
            eqs.set_external_rate(id.index(), rate)?;
        }
        for e in &self.edges {
            // Accumulate in case of parallel edges (builder forbids them,
            // but stay safe for hand-constructed systems).
            let current = eqs.gain(e.from().index(), e.to().index());
            eqs.set_gain(e.from().index(), e.to().index(), current + e.gain())?;
        }
        Ok(eqs)
    }

    /// The loop gain of the topology's gain matrix (spectral radius); values
    /// `>= 1` make the traffic equations divergent.
    pub fn loop_gain(&self) -> f64 {
        // External rates are irrelevant to the gain matrix.
        let eqs = self.traffic_equations(&[]).expect("no rates: cannot fail");
        eqs.loop_gain()
    }

    /// Names of all operators, in id order. Convenient for labelling
    /// allocation vectors in reports.
    pub fn names(&self) -> Vec<&str> {
        self.operators.iter().map(|o| o.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{EdgeOptions, TopologyBuilder};

    fn chain3() -> Topology {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let x = b.bolt("x");
        let y = b.bolt("y");
        b.edge(s, x).unwrap();
        b.edge_with(
            x,
            y,
            EdgeOptions {
                gain: 2.0,
                ..Default::default()
            },
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn structural_queries() {
        let t = chain3();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.spouts().count(), 1);
        assert_eq!(t.bolts().count(), 2);
        let s = t.operator_by_name("s").unwrap().id();
        assert_eq!(t.downstream(s).count(), 1);
        assert_eq!(t.upstream(s).count(), 0);
        let y = t.operator_by_name("y").unwrap().id();
        assert_eq!(t.upstream(y).count(), 1);
        assert_eq!(t.names(), vec!["s", "x", "y"]);
    }

    #[test]
    fn missing_name_lookup_is_none() {
        let t = chain3();
        assert!(t.operator_by_name("nope").is_none());
    }

    #[test]
    fn chain_is_acyclic() {
        assert!(chain3().is_acyclic());
    }

    #[test]
    fn traffic_equations_respect_gains() {
        let t = chain3();
        let s = t.operator_by_name("s").unwrap().id();
        let eqs = t.traffic_equations(&[(s, 10.0)]).unwrap();
        let rates = eqs.solve().unwrap();
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
        assert!((rates[2] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn loop_gain_zero_for_dag() {
        assert_eq!(chain3().loop_gain(), 0.0);
    }

    #[test]
    fn loop_gain_positive_for_cycle() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let d = b.bolt("d");
        b.edge(s, d).unwrap();
        b.edge_with(
            d,
            d,
            EdgeOptions {
                gain: 0.4,
                ..Default::default()
            },
        )
        .unwrap();
        let t = b.build().unwrap();
        assert!(!t.is_acyclic());
        assert!((t.loop_gain() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn operator_accessor_panics_on_foreign_id() {
        let t = chain3();
        let _ = t.operator(t.operators()[2].id()); // fine
    }
}
