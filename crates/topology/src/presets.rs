//! Structural presets matching the topologies used in the paper.
//!
//! These return bare structures (operator names, edges, default gains). The
//! calibrated workload parameters — arrival laws, service-time laws,
//! per-edge amplification — live in `drs-apps`, which attaches behaviour to
//! these shapes.

use crate::build::{EdgeOptions, TopologyBuilder};
use crate::spec::{Grouping, ResourceProfile};
use crate::topology::Topology;

/// A linear chain: one spout followed by `bolts` bolts with unit gains.
///
/// `bolts = 3` gives the synthetic topology of the paper's Fig. 8
/// experiment.
///
/// # Panics
///
/// Panics if `bolts == 0` (a topology needs at least one processing stage
/// for the chain to be meaningful).
pub fn chain(bolts: usize) -> Topology {
    assert!(bolts > 0, "chain requires at least one bolt");
    let mut b = TopologyBuilder::new();
    let spout = b.spout("source");
    let mut prev = spout;
    for i in 0..bolts {
        let bolt = b.bolt(format!("bolt{i}"));
        b.edge(prev, bolt).expect("chain edges are valid");
        prev = bolt;
    }
    b.build().expect("chain is structurally valid")
}

/// The video logo detection pipeline of paper Fig. 4:
/// `spout → sift-extractor → feature-matcher → matching-aggregator`.
///
/// Default gains: `feature_gain` SIFT features per frame on the
/// extractor→matcher edge; `match_gain` match notifications per feature on
/// the matcher→aggregator edge.
///
/// Resource profiles mirror the workload: the SIFT feature kernel is
/// CPU-bound, the matcher is CPU/memory-balanced, and the aggregator is a
/// network-heavy sink that writes results out.
pub fn vld(feature_gain: f64, match_gain: f64) -> Topology {
    let mut b = TopologyBuilder::new();
    let spout = b.spout("video-spout");
    let sift = b.bolt("sift-extractor");
    let matcher = b.bolt("feature-matcher");
    let aggregator = b.bolt("matching-aggregator");
    b.profile(
        sift,
        ResourceProfile {
            cpu: 4.0,
            mem: 1.0,
            net: 1.0,
        },
    )
    .expect("valid profile");
    b.profile(
        matcher,
        ResourceProfile {
            cpu: 2.0,
            mem: 2.0,
            net: 1.0,
        },
    )
    .expect("valid profile");
    b.profile(
        aggregator,
        ResourceProfile {
            cpu: 0.5,
            mem: 1.0,
            net: 3.0,
        },
    )
    .expect("valid profile");
    b.edge(spout, sift).expect("valid edge");
    b.edge_with(
        sift,
        matcher,
        EdgeOptions {
            gain: feature_gain,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.edge_with(
        matcher,
        aggregator,
        EdgeOptions {
            gain: match_gain,
            grouping: Grouping::Fields,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.build().expect("vld is structurally valid")
}

/// The frequent pattern detection topology of paper Fig. 5: two spouts
/// (window enter "+" and leave "−" events) feed a pattern generator, a
/// detector with a loop-back notification edge, and a reporter.
///
/// * `candidate_gain` — candidate itemsets generated per window event.
/// * `notify_gain` — state-change notifications per candidate processed at
///   the detector, fed back to the detector itself (must stay `< 1` for the
///   traffic equations to converge).
/// * `report_gain` — reported MFP updates per detector input.
///
/// Resource profiles: the detector keeps per-pattern state (memory-heavy);
/// the reporter is a blocking I/O bolt (network-heavy).
pub fn fpd(candidate_gain: f64, notify_gain: f64, report_gain: f64) -> Topology {
    let mut b = TopologyBuilder::new();
    let plus = b.spout("window-enter");
    let minus = b.spout("window-leave");
    let generator = b.bolt("pattern-generator");
    let detector = b.bolt("detector");
    let reporter = b.bolt("reporter");
    b.profile(
        generator,
        ResourceProfile {
            cpu: 2.0,
            mem: 1.0,
            net: 1.0,
        },
    )
    .expect("valid profile");
    b.profile(
        detector,
        ResourceProfile {
            cpu: 1.0,
            mem: 3.0,
            net: 1.0,
        },
    )
    .expect("valid profile");
    b.profile(
        reporter,
        ResourceProfile {
            cpu: 0.5,
            mem: 0.5,
            net: 3.0,
        },
    )
    .expect("valid profile");
    b.edge(plus, generator).expect("valid edge");
    b.edge(minus, generator).expect("valid edge");
    b.edge_with(
        generator,
        detector,
        EdgeOptions {
            gain: candidate_gain,
            grouping: Grouping::Fields,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.edge_with(
        detector,
        detector,
        EdgeOptions {
            gain: notify_gain,
            grouping: Grouping::All,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.edge_with(
        detector,
        reporter,
        EdgeOptions {
            gain: report_gain,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.build().expect("fpd is structurally valid")
}

/// The complex operator network of paper Fig. 2: a split (`A → B, C`), a
/// join (`C, D → E`) and a feedback loop (`E → A`).
///
/// Gains are chosen so the loop gain stays well below 1 (E routes 20% of its
/// output back to A).
pub fn diamond_with_loop() -> Topology {
    let mut b = TopologyBuilder::new();
    let source = b.spout("source");
    let a = b.bolt("A");
    let b_op = b.bolt("B");
    let c = b.bolt("C");
    let d = b.bolt("D");
    let e = b.bolt("E");
    b.edge(source, a).expect("valid edge");
    b.edge_with(
        a,
        b_op,
        EdgeOptions {
            gain: 0.5,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.edge_with(
        a,
        c,
        EdgeOptions {
            gain: 0.5,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.edge(b_op, d).expect("valid edge");
    b.edge(c, e).expect("valid edge");
    b.edge(d, e).expect("valid edge");
    b.edge_with(
        e,
        a,
        EdgeOptions {
            gain: 0.2,
            ..Default::default()
        },
    )
    .expect("valid edge");
    b.build().expect("diamond is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_expected_shape() {
        let t = chain(3);
        assert_eq!(t.len(), 4);
        assert_eq!(t.spouts().count(), 1);
        assert_eq!(t.edges().len(), 3);
        assert!(t.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "at least one bolt")]
    fn chain_zero_bolts_panics() {
        let _ = chain(0);
    }

    #[test]
    fn vld_matches_fig4() {
        let t = vld(30.0, 0.5);
        assert_eq!(t.len(), 4);
        assert!(t.is_acyclic());
        let sift = t.operator_by_name("sift-extractor").unwrap().id();
        let edge = t.downstream(sift).next().unwrap();
        assert_eq!(edge.gain(), 30.0);
        // Feature kernel is CPU-bound; the aggregator is network-heavy.
        assert!(t.operator(sift).profile().cpu > 1.0);
        let agg = t.operator_by_name("matching-aggregator").unwrap();
        assert!(agg.profile().net > agg.profile().cpu);
    }

    #[test]
    fn fpd_matches_fig5_with_loop() {
        let t = fpd(8.0, 0.2, 0.1);
        assert_eq!(t.len(), 5);
        assert_eq!(t.spouts().count(), 2);
        assert!(!t.is_acyclic());
        assert!((t.loop_gain() - 0.2).abs() < 1e-6);
        // Detector has the self edge plus generator input.
        let det = t.operator_by_name("detector").unwrap().id();
        assert_eq!(t.upstream(det).count(), 2);
    }

    #[test]
    fn diamond_matches_fig2() {
        let t = diamond_with_loop();
        assert_eq!(t.len(), 6); // source + A..E
        assert!(!t.is_acyclic());
        let a = t.operator_by_name("A").unwrap().id();
        assert_eq!(t.downstream(a).count(), 2); // split
        let e = t.operator_by_name("E").unwrap().id();
        assert_eq!(t.upstream(e).count(), 2); // join
        assert!(t.loop_gain() < 1.0);
    }

    #[test]
    fn diamond_traffic_solves() {
        let t = diamond_with_loop();
        let source = t.operator_by_name("source").unwrap().id();
        let eqs = t.traffic_equations(&[(source, 50.0)]).unwrap();
        let rates = eqs.solve().unwrap();
        let a = t.operator_by_name("A").unwrap().id().index();
        // λA = 50 + 0.2 λE and λE = λA (all of A's output reaches E).
        assert!((rates[a] - 62.5).abs() < 1e-6, "λA = {}", rates[a]);
    }
}
