//! Builder and validation for operator topologies.

use crate::spec::{EdgeSpec, Grouping, OperatorId, OperatorKind, OperatorSpec, ResourceProfile};
use crate::topology::Topology;
use std::collections::HashSet;
use std::fmt;

/// Error produced while building or validating a [`Topology`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// Two operators were declared with the same name.
    DuplicateName {
        /// The conflicting name.
        name: String,
    },
    /// An edge referenced an id that does not belong to this builder.
    UnknownOperator {
        /// The offending id.
        id: OperatorId,
    },
    /// An edge pointed *into* a spout; spouts only produce data.
    EdgeIntoSpout {
        /// Name of the spout that received an edge.
        spout: String,
    },
    /// The gain or network delay on an edge was negative or non-finite.
    InvalidEdgeParameter {
        /// Description of the bad parameter.
        what: String,
    },
    /// The topology has no spout, so no data can enter it.
    NoSpout,
    /// A bolt cannot be reached from any spout, so it would never receive a
    /// tuple.
    UnreachableOperator {
        /// Name of the unreachable operator.
        name: String,
    },
    /// Two identical directed edges were declared. Merge their gains instead.
    DuplicateEdge {
        /// Source operator name.
        from: String,
        /// Destination operator name.
        to: String,
    },
    /// A resource profile had a negative or non-finite component.
    InvalidResourceProfile {
        /// Name of the operator with the bad profile.
        name: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateName { name } => {
                write!(f, "duplicate operator name: {name}")
            }
            TopologyError::UnknownOperator { id } => {
                write!(f, "unknown operator id {id}")
            }
            TopologyError::EdgeIntoSpout { spout } => {
                write!(f, "edge into spout {spout}: spouts cannot receive tuples")
            }
            TopologyError::InvalidEdgeParameter { what } => {
                write!(f, "invalid edge parameter: {what}")
            }
            TopologyError::NoSpout => write!(f, "topology has no spout"),
            TopologyError::UnreachableOperator { name } => {
                write!(f, "operator {name} is unreachable from any spout")
            }
            TopologyError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            TopologyError::InvalidResourceProfile { name } => {
                write!(
                    f,
                    "resource profile of {name} must have finite, non-negative components"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Options of one edge, used with [`TopologyBuilder::edge_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeOptions {
    /// Expected tuples emitted per tuple processed at the source (default 1).
    pub gain: f64,
    /// Routing rule among downstream executors (default shuffle).
    pub grouping: Grouping,
    /// Mean one-way network delay in seconds (default 0).
    pub network_delay: f64,
}

impl Default for EdgeOptions {
    fn default() -> Self {
        EdgeOptions {
            gain: 1.0,
            grouping: Grouping::Shuffle,
            network_delay: 0.0,
        }
    }
}

/// Incremental builder for [`Topology`] values.
///
/// # Examples
///
/// The paper's Fig. 1 pipeline (video frames → feature extraction → object
/// recognition):
///
/// ```
/// use drs_topology::{EdgeOptions, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// let frames = b.spout("frames");
/// let extract = b.bolt("extractor");
/// let recognize = b.bolt("recognizer");
/// b.edge(frames, extract)?;
/// b.edge_with(extract, recognize, EdgeOptions { gain: 30.0, ..Default::default() })?;
/// let topo = b.build()?;
/// assert_eq!(topo.len(), 3);
/// # Ok::<(), drs_topology::TopologyError>(())
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    operators: Vec<OperatorSpec>,
    edges: Vec<EdgeSpec>,
    names: HashSet<String>,
    name_collision: Option<String>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Declares a spout (data source). Returns its id.
    pub fn spout(&mut self, name: impl Into<String>) -> OperatorId {
        self.add_operator(name.into(), OperatorKind::Spout)
    }

    /// Declares a bolt (processing operator). Returns its id.
    pub fn bolt(&mut self, name: impl Into<String>) -> OperatorId {
        self.add_operator(name.into(), OperatorKind::Bolt)
    }

    fn add_operator(&mut self, name: String, kind: OperatorKind) -> OperatorId {
        let id = OperatorId(self.operators.len());
        if !self.names.insert(name.clone()) && self.name_collision.is_none() {
            // Defer the error to build(): the add methods stay infallible so
            // ids can be captured fluently.
            self.name_collision = Some(name.clone());
        }
        self.operators.push(OperatorSpec {
            id,
            name,
            kind,
            profile: ResourceProfile::default(),
        });
        id
    }

    /// Sets the per-executor [`ResourceProfile`] of an operator (default: one
    /// unit of CPU, memory and network each).
    ///
    /// # Errors
    ///
    /// * [`TopologyError::UnknownOperator`] — the id is out of range.
    /// * [`TopologyError::InvalidResourceProfile`] — a component is negative
    ///   or non-finite.
    pub fn profile(
        &mut self,
        id: OperatorId,
        profile: ResourceProfile,
    ) -> Result<(), TopologyError> {
        let op = self
            .operators
            .get_mut(id.0)
            .ok_or(TopologyError::UnknownOperator { id })?;
        if !profile.is_valid() {
            return Err(TopologyError::InvalidResourceProfile {
                name: op.name.clone(),
            });
        }
        op.profile = profile;
        Ok(())
    }

    /// Adds an edge with default options (gain 1, shuffle grouping, no
    /// network delay).
    ///
    /// # Errors
    ///
    /// See [`TopologyBuilder::edge_with`].
    pub fn edge(&mut self, from: OperatorId, to: OperatorId) -> Result<(), TopologyError> {
        self.edge_with(from, to, EdgeOptions::default())
    }

    /// Adds an edge with explicit [`EdgeOptions`].
    ///
    /// # Errors
    ///
    /// * [`TopologyError::UnknownOperator`] — an endpoint id is out of range.
    /// * [`TopologyError::EdgeIntoSpout`] — the destination is a spout.
    /// * [`TopologyError::InvalidEdgeParameter`] — negative/non-finite gain
    ///   or network delay.
    /// * [`TopologyError::DuplicateEdge`] — the directed edge already exists.
    pub fn edge_with(
        &mut self,
        from: OperatorId,
        to: OperatorId,
        options: EdgeOptions,
    ) -> Result<(), TopologyError> {
        for id in [from, to] {
            if id.0 >= self.operators.len() {
                return Err(TopologyError::UnknownOperator { id });
            }
        }
        let dst = &self.operators[to.0];
        if dst.kind == OperatorKind::Spout {
            return Err(TopologyError::EdgeIntoSpout {
                spout: dst.name.clone(),
            });
        }
        if !options.gain.is_finite() || options.gain < 0.0 {
            return Err(TopologyError::InvalidEdgeParameter {
                what: format!("gain must be finite and >= 0, got {}", options.gain),
            });
        }
        if !options.network_delay.is_finite() || options.network_delay < 0.0 {
            return Err(TopologyError::InvalidEdgeParameter {
                what: format!(
                    "network delay must be finite and >= 0, got {}",
                    options.network_delay
                ),
            });
        }
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(TopologyError::DuplicateEdge {
                from: self.operators[from.0].name.clone(),
                to: self.operators[to.0].name.clone(),
            });
        }
        self.edges.push(EdgeSpec {
            from,
            to,
            gain: options.gain,
            grouping: options.grouping,
            network_delay: options.network_delay,
        });
        Ok(())
    }

    /// Validates the accumulated operators and edges and produces a
    /// [`Topology`].
    ///
    /// # Errors
    ///
    /// * [`TopologyError::DuplicateName`] — two operators share a name.
    /// * [`TopologyError::NoSpout`] — the topology has no data source.
    /// * [`TopologyError::UnreachableOperator`] — a bolt no spout can reach.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if let Some(name) = self.name_collision {
            return Err(TopologyError::DuplicateName { name });
        }
        if !self.operators.iter().any(|o| o.kind == OperatorKind::Spout) {
            return Err(TopologyError::NoSpout);
        }
        // Reachability from the set of spouts.
        let n = self.operators.len();
        let mut adjacency = vec![Vec::new(); n];
        for e in &self.edges {
            adjacency[e.from.0].push(e.to.0);
        }
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> = self
            .operators
            .iter()
            .filter(|o| o.kind == OperatorKind::Spout)
            .map(|o| o.id.0)
            .collect();
        for &s in &stack {
            reachable[s] = true;
        }
        while let Some(u) = stack.pop() {
            for &v in &adjacency[u] {
                if !reachable[v] {
                    reachable[v] = true;
                    stack.push(v);
                }
            }
        }
        if let Some(o) = self.operators.iter().find(|o| !reachable[o.id.0]) {
            return Err(TopologyError::UnreachableOperator {
                name: o.name.clone(),
            });
        }
        Ok(Topology::from_parts(self.operators, self.edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_chain() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let x = b.bolt("x");
        b.edge(s, x).unwrap();
        let topo = b.build().unwrap();
        assert_eq!(topo.len(), 2);
        assert_eq!(topo.edges().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected_at_build() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("same");
        let x = b.bolt("same");
        b.edge(s, x).unwrap();
        assert_eq!(
            b.build(),
            Err(TopologyError::DuplicateName {
                name: "same".into()
            })
        );
    }

    #[test]
    fn edge_into_spout_rejected() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let x = b.bolt("x");
        assert!(matches!(
            b.edge(x, s),
            Err(TopologyError::EdgeIntoSpout { .. })
        ));
    }

    #[test]
    fn unknown_operator_rejected() {
        // Ids are dense indices; an id minted by a *larger* builder is out of
        // range for a smaller one and must be rejected.
        let mut other = TopologyBuilder::new();
        let _ = other.spout("s0");
        let foreign = other.bolt("far"); // index 1

        let mut b = TopologyBuilder::new();
        let s = b.spout("s"); // only index 0 exists here
        assert!(matches!(
            b.edge(s, foreign),
            Err(TopologyError::UnknownOperator { .. })
        ));
    }

    #[test]
    fn invalid_gain_rejected() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let x = b.bolt("x");
        assert!(matches!(
            b.edge_with(
                s,
                x,
                EdgeOptions {
                    gain: -1.0,
                    ..Default::default()
                }
            ),
            Err(TopologyError::InvalidEdgeParameter { .. })
        ));
        assert!(matches!(
            b.edge_with(
                s,
                x,
                EdgeOptions {
                    network_delay: f64::NAN,
                    ..Default::default()
                }
            ),
            Err(TopologyError::InvalidEdgeParameter { .. })
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let x = b.bolt("x");
        b.edge(s, x).unwrap();
        assert!(matches!(
            b.edge(s, x),
            Err(TopologyError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn profiles_set_and_validated() {
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let x = b.bolt("x");
        b.edge(s, x).unwrap();
        b.profile(
            x,
            ResourceProfile {
                cpu: 4.0,
                mem: 2.0,
                net: 0.5,
            },
        )
        .unwrap();
        assert!(matches!(
            b.profile(
                x,
                ResourceProfile {
                    cpu: -1.0,
                    ..Default::default()
                }
            ),
            Err(TopologyError::InvalidResourceProfile { .. })
        ));
        let t = b.build().unwrap();
        assert_eq!(t.operator(x).profile().cpu, 4.0);
        assert_eq!(t.operator(s).profile(), ResourceProfile::default());
    }

    #[test]
    fn no_spout_rejected() {
        let mut b = TopologyBuilder::new();
        let _ = b.bolt("x");
        assert_eq!(b.build().unwrap_err(), TopologyError::NoSpout);
    }

    #[test]
    fn unreachable_bolt_rejected() {
        let mut b = TopologyBuilder::new();
        let _s = b.spout("s");
        let _orphan = b.bolt("orphan");
        assert!(matches!(
            b.build(),
            Err(TopologyError::UnreachableOperator { .. })
        ));
    }

    #[test]
    fn loops_are_allowed() {
        // FPD-style self loop on the detector.
        let mut b = TopologyBuilder::new();
        let s = b.spout("s");
        let d = b.bolt("detector");
        b.edge(s, d).unwrap();
        b.edge_with(
            d,
            d,
            EdgeOptions {
                gain: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let topo = b.build().unwrap();
        assert!(!topo.is_acyclic());
    }

    #[test]
    fn errors_display() {
        let e = TopologyError::NoSpout;
        assert!(!e.to_string().is_empty());
        let e = TopologyError::DuplicateEdge {
            from: "a".into(),
            to: "b".into(),
        };
        assert!(e.to_string().contains("a -> b"));
    }
}
