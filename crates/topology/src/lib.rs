//! Operator-network (topology) description for the DRS reproduction.
//!
//! A streaming application is a directed graph of operators — *spouts* (data
//! sources) and *bolts* (processing stages) in Storm's vocabulary — with
//! weighted edges describing expected tuple fan-out ("gains"). DRS supports
//! arbitrary topologies: splits, joins and feedback loops (paper Fig. 2).
//!
//! This crate is the shared vocabulary between:
//!
//! * the performance model (`drs-core`), which needs per-operator arrival
//!   rates derived from the [`Topology::traffic_equations`];
//! * the discrete-event simulator (`drs-sim`) and the threaded runtime
//!   (`drs-runtime`), which execute the topology;
//! * the applications (`drs-apps`), which instantiate the paper's VLD and
//!   FPD topologies via [`presets`].
//!
//! # Example
//!
//! ```
//! use drs_topology::{EdgeOptions, TopologyBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TopologyBuilder::new();
//! let frames = b.spout("frames");
//! let sift = b.bolt("sift");
//! let matcher = b.bolt("matcher");
//! b.edge(frames, sift)?;
//! b.edge_with(sift, matcher, EdgeOptions { gain: 30.0, ..Default::default() })?;
//! let topo = b.build()?;
//!
//! // Solve the traffic equations for 13 frames/s of external input:
//! let eqs = topo.traffic_equations(&[(frames, 13.0)])?;
//! let rates = eqs.solve()?;
//! assert!((rates[matcher.index()] - 390.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
pub mod csr;
pub mod presets;
mod spec;
mod topology;

pub use build::{EdgeOptions, TopologyBuilder, TopologyError};
pub use csr::CsrOutEdges;
pub use spec::{EdgeSpec, Grouping, OperatorId, OperatorKind, OperatorSpec, ResourceProfile};
pub use topology::Topology;
