//! Offline stand-in for `crossbeam`.
//!
//! Implements the subset the runtime crate needs:
//!
//! * MPMC [`channel`]s — [`channel::unbounded`] and capacity-limited
//!   [`channel::bounded`] — with cloneable senders *and* receivers, `send`
//!   and `recv_timeout`. The capacity of a bounded channel is a **hard
//!   invariant**: no send shape ever enqueues past it. Thread-owning
//!   producers use the parking sends ([`channel::Sender::send`],
//!   [`channel::Sender::send_abortable`]); executor-pool tasks, which must
//!   never park an OS thread, use the non-blocking
//!   [`channel::Sender::try_send`] / [`channel::Sender::try_send_batch`]
//!   and *suspend themselves* when the channel is full (the pool parks the
//!   task state in a wait list and the consumer's drain wakes it). Backed
//!   by `Mutex<VecDeque>` + `Condvar`s; the queue's ring buffer is reused
//!   across messages, so a steady-state send performs no allocation.
//!   Wakeups are counted: `send`/`recv` only touch a `Condvar` when the
//!   other side is actually parked, keeping the uncontended hot path to
//!   one mutex lock/unlock. Adequate for the executor fan-out sizes
//!   exercised here (tens of threads), though still short of crossbeam's
//!   lock-free throughput.
//! * work-stealing [`deque`]s — [`deque::Worker`], [`deque::Stealer`] and
//!   the shared [`deque::Injector`], the API slice `drs-runtime`'s executor
//!   pool schedules tasks through. Backed by `Mutex<VecDeque>` rather than
//!   the real crate's lock-free Chase-Lev deque; same FIFO-steal/LIFO-pop
//!   semantics, adequate for the worker counts exercised here.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when a message arrives (or every sender is gone).
        ready: Condvar,
        /// Signalled when bounded-queue space frees up.
        space: Condvar,
        /// `usize::MAX` = unbounded.
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Receivers parked in `ready.wait*` — senders skip the syscall
        /// when nobody is listening.
        waiting_receivers: AtomicUsize,
        /// Senders parked in `space.wait` (bounded channels only).
        waiting_senders: AtomicUsize,
    }

    /// Error from [`Sender::send`]: every receiver is gone; the value is
    /// returned to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error from [`Sender::try_send`]: the value is always handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the caller must suspend (or retry
        /// later) — the bound is hard, nothing was enqueued.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            waiting_receivers: AtomicUsize::new(0),
            waiting_senders: AtomicUsize::new(0),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(usize::MAX)
    }

    /// Creates a bounded MPMC channel holding at most `capacity` messages;
    /// `send` blocks while the channel is full.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (rendezvous channels are not
    /// implemented).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "zero-capacity channels are not supported");
        channel(capacity)
    }

    fn lock<'a, T>(shared: &'a Shared<T>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        match shared.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    type Guard<'a, T> = std::sync::MutexGuard<'a, VecDeque<T>>;

    impl<T> Shared<T> {
        /// Parks the sender once — for at most 5 ms, so a receiver dying or
        /// an abort flag flipping mid-park is observed promptly.
        fn park_for_space<'a>(&'a self, queue: Guard<'a, T>) -> Guard<'a, T> {
            let wait = Duration::from_millis(5);
            self.waiting_senders.fetch_add(1, Ordering::AcqRel);
            let (guard, _) = match self.space.wait_timeout(queue, wait) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            self.waiting_senders.fetch_sub(1, Ordering::AcqRel);
            guard
        }

        /// Parks the receiver until `deadline` at the latest; returns
        /// whether the park timed out.
        fn park_for_ready<'a>(
            &'a self,
            queue: Guard<'a, T>,
            deadline: Instant,
        ) -> (Guard<'a, T>, bool) {
            self.waiting_receivers.fetch_add(1, Ordering::AcqRel);
            let wait = deadline.saturating_duration_since(Instant::now());
            let (guard, res) = match self.ready.wait_timeout(queue, wait) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            self.waiting_receivers.fetch_sub(1, Ordering::AcqRel);
            (guard, res.timed_out())
        }

        fn wake_receivers(&self, pushed: usize) {
            if pushed > 0 && self.waiting_receivers.load(Ordering::Acquire) > 0 {
                if pushed == 1 {
                    self.ready.notify_one();
                } else {
                    self.ready.notify_all();
                }
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver. Blocks while a
        /// bounded channel is full (unless every receiver is gone).
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value when no receiver exists.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.send_inner(value, None)
        }

        /// Stop-aware [`Sender::send`]: while parked waiting for space, if
        /// `abort` becomes true the send gives up and returns the value to
        /// the caller as an error — the capacity stays a hard bound. This
        /// is what keeps engine teardown deadlock-free: a producer parked
        /// on a full channel whose consumers have already been stopped
        /// returns promptly, and the caller reconciles its in-flight
        /// accounting for the rejected message.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value when no receiver
        /// exists *or* the abort flag was observed while the channel was
        /// full.
        pub fn send_abortable(&self, value: T, abort: &AtomicBool) -> Result<(), SendError<T>> {
            self.send_inner(value, Some(abort))
        }

        /// Enqueues `value` only if the channel is below capacity — never
        /// parks, never overruns. The send shape a work-stealing pool task
        /// uses: on [`TrySendError::Full`] the task suspends itself in the
        /// pool's wait list instead of parking the worker thread.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// when every receiver is gone; the value is returned either way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut queue = lock(&self.shared);
            if queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            drop(queue);
            self.shared.wake_receivers(1);
            Ok(())
        }

        /// Enqueues items from `batch` while the channel is below capacity,
        /// under a single lock acquisition — never parks, never overruns.
        /// **Lazy**: items are pulled from the iterator only while space
        /// remains, so everything unsent stays with the caller (nothing is
        /// consumed and dropped). Returns the number of items enqueued;
        /// fewer than the batch length means the channel filled up and the
        /// caller should suspend with the remainder.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying `0` when every receiver is gone
        /// (no item was consumed from the iterator).
        pub fn try_send_batch<I>(&self, batch: &mut I) -> Result<usize, SendError<usize>>
        where
            I: Iterator<Item = T>,
        {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(0));
            }
            let mut pushed = 0usize;
            let mut queue = lock(&self.shared);
            while queue.len() < self.shared.capacity {
                match batch.next() {
                    Some(value) => {
                        queue.push_back(value);
                        pushed += 1;
                    }
                    None => break,
                }
            }
            drop(queue);
            self.shared.wake_receivers(pushed);
            Ok(pushed)
        }

        fn send_inner(&self, value: T, abort: Option<&AtomicBool>) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = lock(&self.shared);
            while queue.len() >= self.shared.capacity {
                if self.shared.receivers.load(Ordering::Acquire) == 0
                    || abort.is_some_and(|a| a.load(Ordering::Acquire))
                {
                    return Err(SendError(value));
                }
                queue = self.shared.park_for_space(queue);
            }
            queue.push_back(value);
            drop(queue);
            self.shared.wake_receivers(1);
            Ok(())
        }

        /// Enqueues every item of `batch` under a single lock acquisition —
        /// the fan-out fast path: one mutex round-trip and at most one
        /// wakeup for the whole batch instead of per message. Blocks for
        /// space as [`Sender::send`] does.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the number of items *not*
        /// enqueued when every receiver is gone (those items are dropped),
        /// so callers keeping in-flight accounting can reconcile.
        pub fn send_batch(
            &self,
            batch: impl IntoIterator<Item = T>,
        ) -> Result<(), SendError<usize>> {
            self.send_batch_inner(batch, None)
        }

        /// Stop-aware [`Sender::send_batch`]; see [`Sender::send_abortable`]
        /// for the abort semantics — once the abort flag is observed on a
        /// full channel the remaining items are dropped and their count is
        /// returned as the error, never enqueued past the capacity.
        ///
        /// # Errors
        ///
        /// As for [`Sender::send_batch`], and additionally when aborted
        /// mid-batch (the error carries the number of items *not*
        /// enqueued so callers can reconcile in-flight accounting).
        pub fn send_batch_abortable(
            &self,
            batch: impl IntoIterator<Item = T>,
            abort: &AtomicBool,
        ) -> Result<(), SendError<usize>> {
            self.send_batch_inner(batch, Some(abort))
        }

        fn send_batch_inner(
            &self,
            batch: impl IntoIterator<Item = T>,
            abort: Option<&AtomicBool>,
        ) -> Result<(), SendError<usize>> {
            let mut iter = batch.into_iter();
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(iter.count()));
            }
            let mut pushed = 0usize;
            let mut queue = lock(&self.shared);
            while let Some(value) = iter.next() {
                while queue.len() >= self.shared.capacity {
                    if self.shared.receivers.load(Ordering::Acquire) == 0
                        || abort.is_some_and(|a| a.load(Ordering::Acquire))
                    {
                        drop(queue);
                        drop(value);
                        self.shared.wake_receivers(pushed);
                        return Err(SendError(1 + iter.count()));
                    }
                    // Let receivers observe what is already enqueued.
                    if pushed > 0 && self.shared.waiting_receivers.load(Ordering::Acquire) > 0 {
                        self.shared.ready.notify_all();
                    }
                    queue = self.shared.park_for_space(queue);
                }
                queue.push_back(value);
                pushed += 1;
            }
            drop(queue);
            self.shared.wake_receivers(pushed);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Number of messages currently queued. Like the real crate's
        /// `Receiver::len`, this is a racy snapshot — only ever a
        /// scheduling hint.
        pub fn len(&self) -> usize {
            lock(&self.shared).len()
        }

        /// Whether the queue is currently empty (racy snapshot; a hint).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Dequeues up to `max` messages into `buf` under a single lock
        /// acquisition *without ever parking*: returns
        /// `Ok((taken, remaining))` — `(0, 0)` when the queue is
        /// momentarily empty. The executor-pool twin of
        /// [`Receiver::recv_batch_timeout`] — a pool task must yield its
        /// worker instead of blocking on an idle channel, and the
        /// `remaining` count (read from the lock already held) spares the
        /// caller a second lock acquisition for its "more backlog?"
        /// scheduling decision.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Disconnected`] when the queue is drained and
        /// every sender is gone.
        pub fn try_recv_batch(
            &self,
            buf: &mut Vec<T>,
            max: usize,
        ) -> Result<(usize, usize), RecvTimeoutError> {
            let mut queue = lock(&self.shared);
            if queue.is_empty() {
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Ok((0, 0));
            }
            let n = queue.len().min(max.max(1));
            buf.extend(queue.drain(..n));
            let remaining = queue.len();
            drop(queue);
            if self.shared.waiting_senders.load(Ordering::Acquire) > 0 {
                self.shared.space.notify_all();
            }
            Ok((n, remaining))
        }

        /// Dequeues a message, waiting up to `timeout` for one to arrive.
        ///
        /// # Errors
        ///
        /// * [`RecvTimeoutError::Timeout`] — nothing arrived in time.
        /// * [`RecvTimeoutError::Disconnected`] — queue drained and every
        ///   sender dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = lock(&self.shared);
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    if self.shared.waiting_senders.load(Ordering::Acquire) > 0 {
                        self.shared.space.notify_one();
                    }
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                if Instant::now() >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self.shared.park_for_ready(queue, deadline);
                queue = guard;
                if timed_out && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeues up to `max` messages into `buf` under a single lock
        /// acquisition, waiting up to `timeout` for the first one — the
        /// consumer-side batching twin of [`Sender::send_batch`]. Returns
        /// the number of messages appended to `buf` (≥ 1 on success).
        ///
        /// # Errors
        ///
        /// As for [`Receiver::recv_timeout`].
        pub fn recv_batch_timeout(
            &self,
            buf: &mut Vec<T>,
            max: usize,
            timeout: Duration,
        ) -> Result<usize, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = lock(&self.shared);
            loop {
                if !queue.is_empty() {
                    let n = queue.len().min(max.max(1));
                    buf.extend(queue.drain(..n));
                    drop(queue);
                    if self.shared.waiting_senders.load(Ordering::Acquire) > 0 {
                        self.shared.space.notify_all();
                    }
                    return Ok(n);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                if Instant::now() >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self.shared.park_for_ready(queue, deadline);
                queue = guard;
                if timed_out && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake blocked senders so they can error out.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }
}

/// Work-stealing deques: per-worker [`deque::Worker`]s with shared
/// [`deque::Stealer`] handles, plus the global [`deque::Injector`] queue.
///
/// The API mirrors `crossbeam::deque` (the slice `drs-runtime` uses):
/// workers pop their own end in LIFO order for cache locality while
/// stealers and the injector hand out the opposite end FIFO, so the oldest
/// queued task migrates first. The stand-in is `Mutex<VecDeque>`-backed —
/// no lock-free Chase-Lev — which is adequate at the worker counts this
/// workspace runs (the real crate drops in unchanged when the registry
/// returns).
pub mod deque {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex, MutexGuard};

    fn lock<T>(queue: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
        match queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and may be retried. The mutex-backed
        /// stand-in never produces this; it exists for API compatibility
        /// with the lock-free original.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                Steal::Empty | Steal::Retry => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A worker-owned deque: the owner pushes and pops one end (LIFO);
    /// [`Stealer`]s take the other end (FIFO). Not cloneable — exactly one
    /// owner — but any number of stealer handles may exist.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A shared handle stealing from the far end of one [`Worker`]'s deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// The global injection queue: any thread pushes, workers steal FIFO.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty LIFO worker deque (pops return the most
        /// recently pushed task).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pops the owner's end (most recent task).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_back()
        }

        /// Whether the deque is currently empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Number of queued tasks (racy snapshot).
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }

        /// Creates a stealer handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest queued task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task; any worker may steal it.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steals the oldest injected task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the injector is currently empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Number of queued tasks (racy snapshot).
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Worker")
        }
    }

    impl<T> fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Stealer")
        }
    }

    impl<T> fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Injector")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the receiver drains one
            tx
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(1));
        let _tx = t.join().unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(2));
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(3));
    }

    #[test]
    fn bounded_send_errors_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2)); // full: parks
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn bounded_round_trip_under_contention() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut n = 0u32;
        while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
            n += 1;
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(n, 600);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = bounded::<u32>(0);
    }

    #[test]
    fn abortable_send_errors_instead_of_overrunning() {
        use super::channel::SendError;
        use std::sync::atomic::AtomicBool;
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let abort = AtomicBool::new(true);
        // Channel is full and the abort flag is set: the sends must return
        // promptly with an error — nothing may be enqueued past capacity.
        assert_eq!(tx.send_abortable(2, &abort), Err(SendError(2)));
        assert_eq!(tx.send_batch_abortable([3, 4], &abort), Err(SendError(2)));
        assert_eq!(rx.len(), 1, "the hard bound must hold");
        drop(tx);
        let drained: Vec<u32> =
            std::iter::from_fn(|| rx.recv_timeout(Duration::from_millis(50)).ok()).collect();
        assert_eq!(drained, vec![1]);
    }

    #[test]
    fn abort_flag_unblocks_a_parked_sender() {
        use super::channel::SendError;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let (tx, _rx) = bounded(1);
        tx.send(0).unwrap();
        let abort = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&abort);
        let t = std::thread::spawn(move || tx.send_batch_abortable([1, 2, 3], &flag));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !t.is_finished(),
            "sender must be parked on the full channel"
        );
        abort.store(true, Ordering::Release);
        let start = std::time::Instant::now();
        assert_eq!(
            t.join().unwrap(),
            Err(SendError(3)),
            "every unsent item must be reported so the caller can reconcile"
        );
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "abort must unblock the sender promptly"
        );
    }

    #[test]
    fn try_send_observes_the_hard_bound() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn try_send_batch_is_lazy_past_capacity() {
        let (tx, rx) = bounded(2);
        let mut items = [1, 2, 3, 4].into_iter();
        assert_eq!(tx.try_send_batch(&mut items), Ok(2));
        // Unsent items stay with the caller — nothing consumed and dropped.
        assert_eq!(items.clone().collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(tx.try_send_batch(&mut items), Ok(1));
        assert_eq!(rx.len(), 2, "the hard bound must hold after a refill");
    }

    #[test]
    fn try_recv_batch_drains_without_parking() {
        let (tx, rx) = unbounded();
        let mut buf = Vec::new();
        assert_eq!(rx.try_recv_batch(&mut buf, 4), Ok((0, 0)));
        for i in 0..6 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.try_recv_batch(&mut buf, 4), Ok((4, 2)));
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(rx.len(), 2);
        assert!(!rx.is_empty());
        drop(tx);
        buf.clear();
        assert_eq!(rx.try_recv_batch(&mut buf, 4), Ok((2, 0)));
        assert_eq!(
            rx.try_recv_batch(&mut buf, 4),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn deque_lifo_pop_fifo_steal() {
        use super::deque::{Injector, Steal, Worker};
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        // Owner pops the newest…
        assert_eq!(w.pop(), Some(3));
        // …stealers take the oldest.
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert!(w.is_empty() && s.is_empty());

        let inj: Injector<u32> = Injector::new();
        inj.push(10);
        inj.push(11);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some(10));
        assert_eq!(inj.steal().success(), Some(11));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn deque_steals_balance_across_threads() {
        use super::deque::Worker;
        use std::sync::Arc;
        let w: Worker<u32> = Worker::new_lifo();
        for i in 0..1_000 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let total = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let threads: Vec<_> = stealers
            .into_iter()
            .map(|s| {
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    while s.steal().success().is_some() {
                        total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                })
            })
            .collect();
        let mut owner = 0;
        while w.pop().is_some() {
            owner += 1;
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            owner + total.load(std::sync::atomic::Ordering::Relaxed),
            1_000
        );
    }

    #[test]
    fn send_batch_reports_unsent_count_on_disconnect() {
        use super::channel::SendError;
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send_batch([1, 2, 3]), Err(SendError(3)));

        // Partial: two fit before the receiver disappears mid-park.
        let (tx, rx) = bounded(2);
        let t = std::thread::spawn(move || tx.send_batch([1, 2, 3, 4, 5]));
        std::thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(3)));
    }
}
