//! Offline stand-in for `crossbeam`.
//!
//! Implements the subset the runtime crate needs: an unbounded MPMC
//! [`channel`] with cloneable senders *and* receivers, `send` and
//! `recv_timeout`. Backed by `Mutex<VecDeque>` + `Condvar` — adequate for
//! the executor fan-out sizes exercised here (tens of threads), though far
//! from crossbeam's lock-free throughput.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error from [`Sender::send`]: every receiver is gone; the value is
    /// returned to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    fn lock<'a, T>(shared: &'a Shared<T>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        match shared.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value when no receiver exists.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            lock(&self.shared).push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, waiting up to `timeout` for one to arrive.
        ///
        /// # Errors
        ///
        /// * [`RecvTimeoutError::Timeout`] — nothing arrived in time.
        /// * [`RecvTimeoutError::Disconnected`] — queue drained and every
        ///   sender dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = lock(&self.shared);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = match self.shared.ready.wait_timeout(queue, deadline - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => {
                        let pair = poisoned.into_inner();
                        (pair.0, pair.1)
                    }
                };
                queue = guard;
                if res.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
