//! Offline stand-in for `crossbeam`.
//!
//! Implements the subset the runtime crate needs: MPMC [`channel`]s —
//! [`channel::unbounded`] and capacity-limited [`channel::bounded`] (send
//! blocks while full, giving natural backpressure) — with cloneable senders
//! *and* receivers, `send` and `recv_timeout`. Backed by
//! `Mutex<VecDeque>` + `Condvar`s; the queue's ring buffer is reused across
//! messages, so a steady-state send performs no allocation. Wakeups are
//! counted: `send`/`recv` only touch a `Condvar` when the other side is
//! actually parked, keeping the uncontended hot path to one mutex
//! lock/unlock. Adequate for the executor fan-out sizes exercised here
//! (tens of threads), though still short of crossbeam's lock-free
//! throughput.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when a message arrives (or every sender is gone).
        ready: Condvar,
        /// Signalled when bounded-queue space frees up.
        space: Condvar,
        /// `usize::MAX` = unbounded.
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Receivers parked in `ready.wait*` — senders skip the syscall
        /// when nobody is listening.
        waiting_receivers: AtomicUsize,
        /// Senders parked in `space.wait` (bounded channels only).
        waiting_senders: AtomicUsize,
    }

    /// Error from [`Sender::send`]: every receiver is gone; the value is
    /// returned to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            waiting_receivers: AtomicUsize::new(0),
            waiting_senders: AtomicUsize::new(0),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(usize::MAX)
    }

    /// Creates a bounded MPMC channel holding at most `capacity` messages;
    /// `send` blocks while the channel is full.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (rendezvous channels are not
    /// implemented).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "zero-capacity channels are not supported");
        channel(capacity)
    }

    fn lock<'a, T>(shared: &'a Shared<T>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
        match shared.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    type Guard<'a, T> = std::sync::MutexGuard<'a, VecDeque<T>>;

    impl<T> Shared<T> {
        /// Parks the sender once (bounded 5 ms, so a receiver dying or an
        /// abort flag flipping mid-park is observed promptly).
        fn park_for_space<'a>(&'a self, queue: Guard<'a, T>) -> Guard<'a, T> {
            self.waiting_senders.fetch_add(1, Ordering::AcqRel);
            let (guard, _) = match self.space.wait_timeout(queue, Duration::from_millis(5)) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            self.waiting_senders.fetch_sub(1, Ordering::AcqRel);
            guard
        }

        /// Parks the receiver until `deadline` at the latest; returns
        /// whether the park timed out.
        fn park_for_ready<'a>(
            &'a self,
            queue: Guard<'a, T>,
            deadline: Instant,
        ) -> (Guard<'a, T>, bool) {
            self.waiting_receivers.fetch_add(1, Ordering::AcqRel);
            let wait = deadline.saturating_duration_since(Instant::now());
            let (guard, res) = match self.ready.wait_timeout(queue, wait) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            self.waiting_receivers.fetch_sub(1, Ordering::AcqRel);
            (guard, res.timed_out())
        }

        fn wake_receivers(&self, pushed: usize) {
            if pushed > 0 && self.waiting_receivers.load(Ordering::Acquire) > 0 {
                if pushed == 1 {
                    self.ready.notify_one();
                } else {
                    self.ready.notify_all();
                }
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver. Blocks while a
        /// bounded channel is full (unless every receiver is gone).
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value when no receiver exists.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.send_inner(value, None)
        }

        /// Stop-aware [`Sender::send`]: while waiting for space, if `abort`
        /// becomes true the message is enqueued *immediately* (the capacity
        /// becomes a soft bound) so the caller can observe its stop flag and
        /// terminate without losing the message. This is what keeps engine
        /// teardown deadlock-free: a producer parked on a full channel whose
        /// consumers have already been stopped would otherwise never return.
        ///
        /// # Errors
        ///
        /// As for [`Sender::send`].
        pub fn send_abortable(&self, value: T, abort: &AtomicBool) -> Result<(), SendError<T>> {
            self.send_inner(value, Some(abort))
        }

        fn send_inner(&self, value: T, abort: Option<&AtomicBool>) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = lock(&self.shared);
            while queue.len() >= self.shared.capacity {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                if abort.is_some_and(|a| a.load(Ordering::Acquire)) {
                    break; // soft-bound overrun: enqueue and let the caller stop
                }
                queue = self.shared.park_for_space(queue);
            }
            queue.push_back(value);
            drop(queue);
            self.shared.wake_receivers(1);
            Ok(())
        }

        /// Enqueues every item of `batch` under a single lock acquisition —
        /// the fan-out fast path: one mutex round-trip and at most one
        /// wakeup for the whole batch instead of per message. Blocks for
        /// space as [`Sender::send`] does.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the number of items *not*
        /// enqueued when every receiver is gone (those items are dropped),
        /// so callers keeping in-flight accounting can reconcile.
        pub fn send_batch(
            &self,
            batch: impl IntoIterator<Item = T>,
        ) -> Result<(), SendError<usize>> {
            self.send_batch_inner(batch, None)
        }

        /// Stop-aware [`Sender::send_batch`]; see [`Sender::send_abortable`]
        /// for the abort semantics (remaining items are enqueued past the
        /// capacity rather than lost).
        ///
        /// # Errors
        ///
        /// As for [`Sender::send_batch`].
        pub fn send_batch_abortable(
            &self,
            batch: impl IntoIterator<Item = T>,
            abort: &AtomicBool,
        ) -> Result<(), SendError<usize>> {
            self.send_batch_inner(batch, Some(abort))
        }

        fn send_batch_inner(
            &self,
            batch: impl IntoIterator<Item = T>,
            abort: Option<&AtomicBool>,
        ) -> Result<(), SendError<usize>> {
            let mut iter = batch.into_iter();
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(iter.count()));
            }
            let mut pushed = 0usize;
            let mut queue = lock(&self.shared);
            while let Some(value) = iter.next() {
                while queue.len() >= self.shared.capacity {
                    if self.shared.receivers.load(Ordering::Acquire) == 0 {
                        drop(queue);
                        self.shared.wake_receivers(pushed);
                        return Err(SendError(1 + iter.count()));
                    }
                    if abort.is_some_and(|a| a.load(Ordering::Acquire)) {
                        break; // soft-bound overrun; see send_abortable
                    }
                    // Let receivers observe what is already enqueued.
                    if pushed > 0 && self.shared.waiting_receivers.load(Ordering::Acquire) > 0 {
                        self.shared.ready.notify_all();
                    }
                    queue = self.shared.park_for_space(queue);
                }
                queue.push_back(value);
                pushed += 1;
            }
            drop(queue);
            self.shared.wake_receivers(pushed);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, waiting up to `timeout` for one to arrive.
        ///
        /// # Errors
        ///
        /// * [`RecvTimeoutError::Timeout`] — nothing arrived in time.
        /// * [`RecvTimeoutError::Disconnected`] — queue drained and every
        ///   sender dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = lock(&self.shared);
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    if self.shared.waiting_senders.load(Ordering::Acquire) > 0 {
                        self.shared.space.notify_one();
                    }
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                if Instant::now() >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self.shared.park_for_ready(queue, deadline);
                queue = guard;
                if timed_out && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeues up to `max` messages into `buf` under a single lock
        /// acquisition, waiting up to `timeout` for the first one — the
        /// consumer-side batching twin of [`Sender::send_batch`]. Returns
        /// the number of messages appended to `buf` (≥ 1 on success).
        ///
        /// # Errors
        ///
        /// As for [`Receiver::recv_timeout`].
        pub fn recv_batch_timeout(
            &self,
            buf: &mut Vec<T>,
            max: usize,
            timeout: Duration,
        ) -> Result<usize, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = lock(&self.shared);
            loop {
                if !queue.is_empty() {
                    let n = queue.len().min(max.max(1));
                    buf.extend(queue.drain(..n));
                    drop(queue);
                    if self.shared.waiting_senders.load(Ordering::Acquire) > 0 {
                        self.shared.space.notify_all();
                    }
                    return Ok(n);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                if Instant::now() >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self.shared.park_for_ready(queue, deadline);
                queue = guard;
                if timed_out && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake blocked senders so they can error out.
                self.shared.space.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the receiver drains one
            tx
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(1));
        let _tx = t.join().unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(2));
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(3));
    }

    #[test]
    fn bounded_send_errors_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2)); // full: parks
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn bounded_round_trip_under_contention() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut n = 0u32;
        while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
            n += 1;
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(n, 600);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = bounded::<u32>(0);
    }

    #[test]
    fn abortable_send_overruns_instead_of_blocking() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let abort = Arc::new(AtomicBool::new(true));
        // Channel is full and the abort flag is set: the sends must return
        // promptly with the messages enqueued past the capacity.
        tx.send_abortable(2, &abort).unwrap();
        tx.send_batch_abortable([3, 4], &abort).unwrap();
        drop(tx);
        let drained: Vec<u32> =
            std::iter::from_fn(|| rx.recv_timeout(Duration::from_millis(50)).ok()).collect();
        assert_eq!(drained, vec![1, 2, 3, 4]);
        assert!(abort.load(Ordering::Relaxed));
    }

    #[test]
    fn abort_flag_unblocks_a_parked_sender() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let (tx, _rx) = bounded(1);
        tx.send(0).unwrap();
        let abort = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&abort);
        let t = std::thread::spawn(move || tx.send_batch_abortable([1, 2, 3], &flag));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !t.is_finished(),
            "sender must be parked on the full channel"
        );
        abort.store(true, Ordering::Release);
        let start = std::time::Instant::now();
        t.join().unwrap().unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "abort must unblock the sender promptly"
        );
    }

    #[test]
    fn send_batch_reports_unsent_count_on_disconnect() {
        use super::channel::SendError;
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send_batch([1, 2, 3]), Err(SendError(3)));

        // Partial: two fit before the receiver disappears mid-park.
        let (tx, rx) = bounded(2);
        let t = std::thread::spawn(move || tx.send_batch([1, 2, 3, 4, 5]));
        std::thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(3)));
    }
}
