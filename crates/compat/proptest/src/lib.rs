//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `arg in
//!   strategy` bindings, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`
//!   and `prop_assume!`;
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples (up to arity 8) and [`strategy::Just`];
//! * [`collection::vec`] with `Range`/`RangeInclusive`/fixed sizes;
//! * [`option::of`] generating `Some`/`None` with equal probability.
//!
//! Cases are generated from a seed derived deterministically from the test
//! path, so failures reproduce across runs. There is **no shrinking**: a
//! failing case reports its case index and seed instead of a minimised
//! input — sufficient for CI signal, much smaller than real proptest.

#![forbid(unsafe_code)]

pub mod strategy;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Optional-value strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Option`s of values drawn from an inner
    /// strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(value)` and `None` with equal probability (real
    /// proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.gen_bool(0.5).then(|| self.inner.generate(rng))
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Per-test configuration (subset of proptest's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type the generated test bodies return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic 64-bit seed from a test path (FNV-1a).
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// RNG for one case: the test seed perturbed by the case index.
    pub fn rng_for(seed: u64, case: u32) -> TestRng {
        TestRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// so the runner can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Declares property tests: see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed =
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut executed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while executed < config.cases {
                assert!(
                    rejected < config.cases.saturating_mul(64).max(1024),
                    "proptest {}: too many rejected cases ({rejected})",
                    stringify!($name),
                );
                let mut rng = $crate::test_runner::rng_for(seed, case);
                case += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let result: $crate::test_runner::TestCaseResult =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match result {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => rejected += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest {} failed at case {} (seed {:#x}): {}",
                        stringify!($name),
                        case - 1,
                        seed,
                        msg
                    ),
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1u32..10, y in 0.25f64..0.75) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u32..5, 10u64..20),
            doubled in (1usize..50).prop_map(|n| n * 2),
        ) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn vectors_have_requested_sizes(v in prop::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for item in v {
                prop_assert!(item < 100);
            }
        }

        #[test]
        fn assume_skips_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn seeds_are_stable() {
        let a = crate::test_runner::seed_for("mod::test");
        let b = crate::test_runner::seed_for("mod::test");
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::seed_for("mod::other"));
    }
}
