//! The [`Strategy`] trait and primitive strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a value from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
