//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — with a simple two-phase timer:
//! a short calibration run sizes the iteration count, then a measurement
//! run reports mean wall-clock time per iteration. No statistics, plots or
//! regression baselines; results print as `name … time: <mean>` lines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement run.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Wall-clock budget for calibration.
const TARGET_CALIBRATE: Duration = Duration::from_millis(50);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Drives the timed closure of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find how many iterations fit the calibration budget.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_CALIBRATE || n >= 1 << 30 {
                // Scale up to the measurement budget.
                let per_iter = elapsed.as_secs_f64() / n as f64;
                let measure_n =
                    ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
                let start = Instant::now();
                for _ in 0..measure_n {
                    black_box(routine());
                }
                self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / measure_n as f64;
                return;
            }
            n = n.saturating_mul(4);
        }
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, mean_ns: f64) {
    println!("{name:<60} time: {}", human(mean_ns));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes runs by time, so
    /// the sample count is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), b.mean_ns);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.mean_ns);
        self
    }

    /// Ends the group (no-op; print-as-you-go).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, b.mean_ns);
        self
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns > 0.0 && b.mean_ns < 1e6);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 20).label, "solve/20");
        assert_eq!(BenchmarkId::from_parameter("(6:13:3)").label, "(6:13:3)");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter(1), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("x", 2), &2, |b, &x| b.iter(|| x * 2));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }
}
