//! Offline stand-in for `parking_lot`.
//!
//! Provides the poison-free [`Mutex`] and [`RwLock`] APIs the runtime
//! crate uses, backed by their `std::sync` counterparts. Lock poisoning is
//! transparently ignored (matching parking_lot semantics: a panicking
//! holder does not poison the lock).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons: if a
    /// previous holder panicked, the data is handed out as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }
}
