//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *small slice* of the rand 0.8 API it actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, fast, and fully deterministic for a fixed
//! seed, which is all the simulator and workloads require. It is **not**
//! the same stream as upstream `StdRng`, and it is not cryptographically
//! secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random-number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the stand-in
/// for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f32 range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Uniform integer in `[0, bound)` by rejection-free widening multiply
/// (Lemire's method), unbiased for all bounds.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return u64::sample_standard(rng) as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64. Deterministic
    /// per seed; statistically strong for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_are_inclusive_exclusive_as_declared() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let x = rng.gen_range(3u32..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(3u32..=7);
            assert!((3..=7).contains(&y));
            let z = rng.gen_range(-0.0f64..2.0);
            assert!((0.0..2.0).contains(&z));
        }
        // Inclusive upper bound is actually reachable.
        let mut saw_hi = false;
        for _ in 0..200 {
            saw_hi |= rng.gen_range(0u32..=1) == 1;
        }
        assert!(saw_hi);
    }

    #[test]
    fn singleton_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(5usize..=5), 5);
    }
}
