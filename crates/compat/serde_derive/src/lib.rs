//! Offline no-op stand-in for `serde_derive`.
//!
//! The build environment cannot reach crates.io, and nothing in this
//! workspace actually serialises at runtime — the `#[derive(Serialize,
//! Deserialize)]` annotations across the crates exist so downstream users
//! of the real serde can swap it in. These derives therefore accept the
//! annotated item (including `#[serde(...)]` helper attributes) and expand
//! to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
