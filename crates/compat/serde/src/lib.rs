//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op [`serde_derive`] macros so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` compile without
//! network access. See `crates/compat/serde_derive` for the rationale.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
